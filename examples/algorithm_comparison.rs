//! Compare every indexing technique on the same workload and ask the
//! decision tree which progressive index fits the scenario.
//!
//! Runs a zoom-in exploration over skewed data — the situation where the
//! trade-offs between full scans, full indexes, cracking and progressive
//! indexing are most visible — and prints a Table-2-style summary.
//!
//! ```bash
//! cargo run --release --example algorithm_comparison
//! ```

use pi_experiments::metrics::Metrics;
use pi_experiments::registry::AlgorithmId;
use pi_experiments::report::{fmt_seconds, fmt_variance, Table};
use pi_experiments::runner::run_workload;
use pi_experiments::scale::{measure_scan_seconds, Scale};
use pi_experiments::setup::Workload;
use progressive_indexes::index::cost_model::CostConstants;
use progressive_indexes::index::decision::{recommend, DataDistribution, QueryShape, Scenario};
use progressive_indexes::workloads::{Distribution, Pattern};

fn main() {
    let scale = Scale {
        column_size: 500_000,
        query_count: 300,
    };
    let workload = Workload::synthetic(Distribution::Skewed, Pattern::ZoomIn, scale, false);
    let constants = CostConstants::calibrate();
    let scan_seconds = measure_scan_seconds(&workload.column, 3);

    println!(
        "workload: {} — {} rows, {} zoom-in range queries over skewed data\n",
        workload.name,
        workload.column.len(),
        workload.queries.len()
    );

    let mut table = Table::new([
        "index",
        "first_query_s",
        "payoff_query",
        "convergence_query",
        "robustness_var",
        "cumulative_s",
    ]);
    for algorithm in AlgorithmId::ALL {
        let mut index = algorithm.build_with_default_budget(workload.column.clone(), constants);
        let run = run_workload(index.as_mut(), &workload.queries);
        let metrics = Metrics::from_run(&run, scan_seconds);
        table.push_row([
            algorithm.label().to_string(),
            fmt_seconds(metrics.first_query_seconds),
            metrics.payoff_label(),
            metrics.convergence_label(),
            fmt_variance(metrics.robustness_variance),
            fmt_seconds(metrics.cumulative_seconds),
        ]);
    }
    print!("{}", table.to_aligned_string());

    let scenario = Scenario {
        query_shape: QueryShape::Range,
        distribution: DataDistribution::Skewed,
        extra_memory_allowed: true,
    };
    println!(
        "\ndecision tree (Figure 11) recommends: {} for range queries over skewed data",
        recommend(scenario)
    );
}
