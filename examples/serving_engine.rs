//! Serve a multi-column table from concurrent clients through the full
//! stack: closed-loop clients → `pi-sched` server (bounded queue, batch
//! coalescing, backpressure) → engine executor → persistent shard-affine
//! worker pool → range shards.
//!
//! Builds a two-column table (uniform and skewed data), lets the Figure-11
//! decision tree pick each column's algorithm, then drives eight
//! closed-loop clients — one Figure-6 pattern each — against the server
//! while the pool's idle cycles converge the shards in the background.
//!
//! ```bash
//! cargo run --release --example serving_engine
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use progressive_indexes::engine::{
    ColumnSpec, Executor, ExecutorConfig, Table, TableQuery, TableServer,
};
use progressive_indexes::index::budget::BudgetPolicy;
use progressive_indexes::sched::{ServerConfig, SubmitError};
use progressive_indexes::workloads::closed_loop::{self, BatchOutcome};
use progressive_indexes::workloads::multi_client::{self, MultiClientSpec, PatternAssignment};
use progressive_indexes::workloads::{data, Distribution, WorkloadSpec};

const ROWS: usize = 500_000;
const SHARDS: usize = 8;
const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 200;

fn main() {
    let uniform = data::generate(Distribution::UniformRandom, ROWS, 1);
    let skewed = data::generate(Distribution::Skewed, ROWS, 2);

    let table = Arc::new(
        Table::builder()
            .column(
                ColumnSpec::new("uniform", uniform)
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .column(
                ColumnSpec::new("skewed", skewed)
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .build(),
    );

    println!("table: {ROWS} rows x 2 columns, {SHARDS} shards each");
    for column in table.columns() {
        println!(
            "  column {:>8}: decision tree chose {}",
            column.name(),
            column.algorithm()
        );
    }

    let executor = Arc::new(Executor::with_config(
        Arc::clone(&table),
        ExecutorConfig {
            maintenance_steps: 16,
            background_maintenance: true,
            ..ExecutorConfig::default()
        },
    ));
    let server = Arc::new(TableServer::new(
        Arc::clone(&executor),
        ServerConfig {
            queue_capacity: 64,
            max_coalesced_queries: 128,
            ..ServerConfig::default()
        },
    ));

    let streams = multi_client::generate(&MultiClientSpec {
        clients: CLIENTS,
        base: WorkloadSpec::range(ROWS as u64, QUERIES_PER_CLIENT),
        assignment: PatternAssignment::AllPatterns,
    });

    // Closed-loop clients: try_submit first (observing backpressure),
    // fall back to the blocking submit when the queue is full.
    let start = Instant::now();
    let report = closed_loop::drive(&streams, 20, |client, batch| {
        let column = if client % 2 == 0 { "uniform" } else { "skewed" };
        let queries: Vec<TableQuery> = batch
            .iter()
            .map(|q| TableQuery::new(column, q.low, q.high))
            .collect();
        let ticket = match server.try_submit(queries) {
            Ok(ticket) => ticket,
            Err(rejected) => {
                assert_eq!(
                    rejected.error,
                    SubmitError::QueueFull,
                    "server not shut down"
                );
                // Backpressure observed; this client waits its turn. The
                // refused batch comes back in the error, ready to resubmit.
                server.submit(rejected.requests).expect("server serving")
            }
        };
        ticket.wait().expect("known column");
        BatchOutcome::Served
    });
    let elapsed = start.elapsed();
    let stats = server.stats();
    println!(
        "\nserved {} queries from {CLIENTS} clients in {elapsed:.2?} ({:.0} queries/s)",
        report.served,
        report.queries_per_second()
    );
    println!(
        "  server: {} submissions accepted, {} rejected by backpressure, \
         {} engine batches after coalescing",
        stats.accepted, stats.rejected, stats.executed_batches
    );

    for (name, status) in table.status() {
        println!(
            "  column {name:>8}: phase {:>13}, {:>5.1}% indexed, converged: {}",
            status.phase.to_string(),
            status.fraction_indexed * 100.0,
            status.converged
        );
    }

    // No client traffic any more: idle cycles finish the convergence.
    print!("\nwaiting for background maintenance to converge the table");
    std::io::Write::flush(&mut std::io::stdout()).expect("stdout flush");
    let wait = Instant::now();
    while !table.is_converged() && wait.elapsed() < Duration::from_secs(600) {
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(" — done in {:.2?}", wait.elapsed());
    let pool = executor.pool_stats();
    println!(
        "  pool: {} jobs executed ({} stolen, {} caller-helped), {} idle maintenance steps",
        pool.total_executed(),
        pool.stolen.iter().sum::<u64>(),
        pool.helped,
        pool.idle_work
    );
    for (name, status) in table.status() {
        println!(
            "  column {name:>8}: phase {:>13}, converged: {}",
            status.phase.to_string(),
            status.converged
        );
    }
    server.shutdown();
}
