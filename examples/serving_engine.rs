//! Serve a multi-column table from concurrent clients with `pi-engine`.
//!
//! Builds a two-column table (uniform and skewed data), lets the Figure-11
//! decision tree pick each column's algorithm from the estimated
//! distribution, then serves eight concurrent clients — one Figure-6
//! pattern each — while printing per-column convergence as the shards
//! refine themselves as a side effect of the traffic.
//!
//! ```bash
//! cargo run --release --example serving_engine
//! ```

use std::sync::Arc;
use std::time::Instant;

use progressive_indexes::engine::{ColumnSpec, Executor, ExecutorConfig, Table, TableQuery};
use progressive_indexes::index::budget::BudgetPolicy;
use progressive_indexes::workloads::multi_client::{self, MultiClientSpec, PatternAssignment};
use progressive_indexes::workloads::{data, Distribution, WorkloadSpec};

const ROWS: usize = 500_000;
const SHARDS: usize = 8;
const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 200;

fn main() {
    let uniform = data::generate(Distribution::UniformRandom, ROWS, 1);
    let skewed = data::generate(Distribution::Skewed, ROWS, 2);

    let table = Arc::new(
        Table::builder()
            .column(
                ColumnSpec::new("uniform", uniform)
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .column(
                ColumnSpec::new("skewed", skewed)
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .build(),
    );

    println!("table: {ROWS} rows x 2 columns, {SHARDS} shards each");
    for column in table.columns() {
        println!(
            "  column {:>8}: decision tree chose {}",
            column.name(),
            column.algorithm()
        );
    }

    let executor = Arc::new(Executor::with_config(
        Arc::clone(&table),
        ExecutorConfig {
            worker_threads: SHARDS,
            maintenance_steps: 16,
        },
    ));

    let streams = multi_client::generate(&MultiClientSpec {
        clients: CLIENTS,
        base: WorkloadSpec::range(ROWS as u64, QUERIES_PER_CLIENT),
        assignment: PatternAssignment::AllPatterns,
    });

    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in &streams {
            let executor = Arc::clone(&executor);
            scope.spawn(move || {
                for chunk in stream.queries.chunks(20) {
                    let column = if stream.client % 2 == 0 {
                        "uniform"
                    } else {
                        "skewed"
                    };
                    let batch: Vec<TableQuery> = chunk
                        .iter()
                        .map(|q| TableQuery::new(column, q.low, q.high))
                        .collect();
                    executor.execute_batch(&batch).expect("known column");
                }
            });
        }
    });
    let served = CLIENTS * QUERIES_PER_CLIENT;
    let elapsed = start.elapsed();
    println!(
        "\nserved {served} queries from {CLIENTS} clients in {elapsed:.2?} \
         ({:.0} queries/s)",
        served as f64 / elapsed.as_secs_f64()
    );

    for (name, status) in table.status() {
        println!(
            "  column {name:>8}: phase {:>13}, {:>5.1}% indexed, converged: {}",
            status.phase.to_string(),
            status.fraction_indexed * 100.0,
            status.converged
        );
    }

    let steps = executor.drive_to_convergence(usize::MAX);
    println!("\nmaintenance spent {steps} budgeted steps to finish convergence");
    for (name, status) in table.status() {
        println!(
            "  column {name:>8}: phase {:>13}, converged: {}",
            status.phase.to_string(),
            status.converged
        );
    }
}
