//! Durability end-to-end: write-ahead log a mutation stream against a
//! sharded table, checkpoint, "crash", recover from disk and verify the
//! recovered table answers exactly like the pre-crash one.
//!
//! ```bash
//! cargo run --release --example durability
//! ```

use std::sync::Arc;
use std::time::Instant;

use progressive_indexes::durable::snapshot::DirStore;
use progressive_indexes::durable::wal::{FileWal, FsyncPolicy};
use progressive_indexes::engine::{ColumnSpec, DurabilityConfig, DurableTable, Table};
use progressive_indexes::index::mutation::Mutation;
use progressive_indexes::obs::MetricsRegistry;
use progressive_indexes::storage::scan::scan_range_sum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Everything durable lives under one directory: the log and the
    // snapshot files. A real deployment would point this at persistent
    // storage; the example uses a scratch dir it wipes first.
    let dir = std::env::temp_dir().join(format!("pi-durability-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let wal_path = dir.join("table.wal");

    let n = 200_000u64;
    let base: Vec<u64> = (0..n).map(|i| (i * 37) % n).collect();
    let mut oracle = base.clone();

    // Build the table and wrap it durably: group commit every 8 records,
    // checkpoint once the log passes 1 MiB.
    let registry = Arc::new(MetricsRegistry::new());
    let durable = Table::builder()
        .column(ColumnSpec::new("ra", base).with_shards(4))
        .metrics(Arc::clone(&registry))
        .durability(DurabilityConfig {
            fsync: FsyncPolicy::EveryN(8),
            checkpoint_wal_bytes: 1 << 20,
            ..DurabilityConfig::default()
        })
        .build_durable(
            Box::new(FileWal::open(&wal_path)?),
            Box::new(DirStore::open(&dir)?),
        )?;

    // A write burst: inserts, deletes and updates, logged before applied.
    println!("applying 50 durable mutation batches of 200 ops each...");
    let started = Instant::now();
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _ in 0..50 {
        let batch: Vec<Mutation> = (0..200)
            .map(|_| match next() % 3 {
                0 => Mutation::Insert(next() % n),
                1 => Mutation::Delete(next() % n),
                _ => Mutation::Update {
                    old: next() % n,
                    new: next() % n,
                },
            })
            .collect();
        let flags = durable.apply_mutations("ra", &batch)?;
        for (m, applied) in batch.iter().zip(&flags) {
            if *applied {
                match *m {
                    Mutation::Insert(v) => oracle.push(v),
                    Mutation::Delete(v) => {
                        let at = oracle.iter().position(|&x| x == v).unwrap();
                        oracle.swap_remove(at);
                    }
                    Mutation::Update { old, new } => {
                        let at = oracle.iter().position(|&x| x == old).unwrap();
                        oracle[at] = new;
                    }
                }
            }
        }
    }
    println!("  done in {:?}", started.elapsed());

    // Take an explicit checkpoint mid-stream, then a few more batches so
    // recovery has a WAL tail to replay.
    durable.checkpoint()?;
    for _ in 0..5 {
        let batch: Vec<Mutation> = (0..200).map(|_| Mutation::Insert(next() % n)).collect();
        durable.apply_mutations("ra", &batch)?;
        for m in &batch {
            if let Mutation::Insert(v) = m {
                oracle.push(*v);
            }
        }
    }
    let pre_crash = durable.table().query("ra", 1_000, 150_000).unwrap();
    println!(
        "pre-crash answer  : sum={} count={} ({} live rows)",
        pre_crash.sum,
        pre_crash.count,
        durable.table().column("ra").unwrap().live_rows()
    );

    // "Crash": flush what the fsync policy buffered, then drop every
    // in-memory structure. Only the files under `dir` survive.
    durable.flush()?;
    drop(durable);

    // Recovery: newest valid snapshot + WAL-tail replay.
    let started = Instant::now();
    let (recovered, report) = DurableTable::recover(
        Box::new(FileWal::open(&wal_path)?),
        Box::new(DirStore::open(&dir)?),
        DurabilityConfig::default(),
        Some(&registry),
    )?;
    println!(
        "recovered from snapshot {} in {:?}: {} WAL records replayed, tail {:?}",
        report.snapshot_id,
        started.elapsed(),
        report.replayed_records,
        report.tail
    );

    let post_crash = recovered.table().query("ra", 1_000, 150_000).unwrap();
    println!(
        "post-crash answer : sum={} count={}",
        post_crash.sum, post_crash.count
    );
    assert_eq!(
        (pre_crash.sum, pre_crash.count),
        (post_crash.sum, post_crash.count)
    );

    // And both must equal a fresh scan of the oracle multiset.
    let expected = scan_range_sum(&oracle, 1_000, 150_000);
    assert_eq!(
        (post_crash.sum, post_crash.count),
        (expected.sum, expected.count)
    );
    println!("recovered state matches the in-memory oracle exactly");

    // The wal.* namespace shows what durability cost.
    let snapshot = registry.snapshot();
    for name in ["wal.appends", "wal.bytes", "wal.fsyncs", "wal.checkpoints"] {
        if let Some(v) = snapshot.counter(name) {
            println!("  {name:<16} {v}");
        }
    }
    if let Some(ms) = snapshot.gauge("wal.recovery_ms") {
        println!("  wal.recovery_ms  {ms:.3}");
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
