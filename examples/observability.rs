//! Live convergence / latency dashboard over a skewed-string serving run.
//!
//! Builds a `TypedTable<String>` whose rows share a hot 10-byte prefix
//! (the tie-break-heavy workload), wires one `MetricsRegistry` through
//! the whole stack — table shards, executor, worker pool — and drives
//! closed-loop clients against it in rounds, printing a dashboard line
//! per round straight from `MetricsSnapshot`: per-shard ρ (fraction
//! indexed), per-phase latencies, tie-break pressure, and the cost
//! model's prediction error. Ends by exporting the snapshot as JSON
//! (checked against the schema validator) and Prometheus text.
//!
//! ```bash
//! cargo run --release --example observability
//! ```
//!
//! With `--no-default-features` the clocks are compiled out: counters,
//! gauges and size histograms still read, all `*_ns` histograms stay
//! empty.

use std::sync::Arc;
use std::time::Instant;

use progressive_indexes::engine::typed::{TypedColumnSpec, TypedExecutor, TypedQuery, TypedTable};
use progressive_indexes::engine::ExecutorConfig;
use progressive_indexes::index::budget::BudgetPolicy;
use progressive_indexes::obs::{validate_snapshot_json, MetricsRegistry, MetricsSnapshot};
use progressive_indexes::workloads::closed_loop::{self, BatchOutcome};
use progressive_indexes::workloads::{domains, Distribution};

const ROWS: usize = 300_000;
const SHARDS: usize = 8;
const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 400;
const BATCH: usize = 8;
const ROUNDS: usize = 10;

/// A nanosecond reading as a human-friendly duration.
fn ns(v: u64) -> String {
    format!("{:.1?}", std::time::Duration::from_nanos(v))
}

/// Mean of the per-shard ρ gauges `engine.rho.s.*`.
fn mean_rho(snap: &MetricsSnapshot) -> f64 {
    let (mut sum, mut n) = (0.0, 0);
    for (_, rho) in snap.gauges_with_prefix("engine.rho.s.") {
        sum += rho;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn main() {
    // One registry for the whole stack: the table's shards feed
    // `engine.rho.*` / `core.*`, the executor feeds `executor.*`, and
    // the worker pool it spawns feeds `sched.pool.*`.
    let registry = Arc::new(MetricsRegistry::new());
    let keys = domains::string_data(Distribution::Skewed, ROWS, 7);
    let table = Arc::new(
        TypedTable::builder()
            .metrics(Arc::clone(&registry))
            .column(
                TypedColumnSpec::new("s", keys)
                    // A small per-query budget and foreground-only
                    // maintenance keep refinement query-driven, so the
                    // dashboard shows ρ̄ actually climbing round by round
                    // instead of background idle cycles finishing the
                    // index before the first line prints.
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.002)),
            )
            .build(),
    );
    let executor = Arc::new(TypedExecutor::with_metrics(
        Arc::clone(&table),
        ExecutorConfig {
            maintenance_steps: 0,
            background_maintenance: false,
            ..ExecutorConfig::default()
        },
        Arc::clone(&registry),
    ));
    println!(
        "table: {ROWS} skewed strings (hot shared prefix), {SHARDS} shards, \
         {CLIENTS} closed-loop clients x {QUERIES_PER_CLIENT} queries"
    );

    let streams: Vec<Vec<(String, String)>> = (0..CLIENTS)
        .map(|c| domains::string_ranges(Distribution::Skewed, QUERIES_PER_CLIENT, 100 + c as u64))
        .collect();

    // Serve in rounds, printing one dashboard line per round — the
    // convergence trace: ρ̄ climbs, scan latencies fall, tie-break hits
    // accumulate as boundary queries land inside the hot prefix.
    println!("\n round    ρ̄      q/s   tie_hits  scan p95  batch p99");
    let per_round = QUERIES_PER_CLIENT / ROUNDS;
    let start = Instant::now();
    for round in 0..ROUNDS {
        let window = round * per_round..(round + 1) * per_round;
        let items: Vec<(usize, &[(String, String)])> = streams
            .iter()
            .enumerate()
            .map(|(client, stream)| (client, &stream[window.clone()]))
            .collect();
        let report = closed_loop::drive_items(&items, BATCH, |_client, batch| {
            let queries: Vec<TypedQuery<String>> = batch
                .iter()
                .map(|(low, high)| TypedQuery::new("s", low.clone(), high.clone()))
                .collect();
            executor.execute_batch(&queries).expect("known column");
            BatchOutcome::Served
        });
        let snap = registry.snapshot();
        let scan = snap.histogram("executor.phase.scan_ns");
        println!(
            " {:>5}  {:>5.3}  {:>7.0}  {:>8}  {:>8}  {:>9}",
            round + 1,
            mean_rho(&snap),
            report.queries_per_second(),
            snap.counter("engine.tie_break_hits").unwrap_or(0),
            ns(scan.map(|h| h.p95()).unwrap_or(0)),
            format!("{:.1?}", report.latency.p99),
        );
    }
    println!(" serving took {:.2?}", start.elapsed());

    // No more client traffic: finish refinement in the foreground and
    // watch ρ̄ reach 1.0.
    while !table.inner().is_converged() {
        executor.drive_to_convergence(20_000);
        println!(" converging: ρ̄ = {:.3}", mean_rho(&registry.snapshot()));
    }

    let snap = registry.snapshot();
    println!("\nfinal snapshot:");
    print!("  ρ per shard:");
    for (_, rho) in snap.gauges_with_prefix("engine.rho.s.") {
        print!(" {rho:.2}");
    }
    println!();
    println!(
        "  executor: {} batches / {} queries, {} digest-cache hits, {} shards reopened",
        snap.counter("executor.batches").unwrap_or(0),
        snap.counter("executor.queries").unwrap_or(0),
        snap.counter("executor.digest_hits").unwrap_or(0),
        snap.counter("executor.shards_reopened").unwrap_or(0),
    );
    println!(
        "  engine:   {} string tie-break hits at code boundaries",
        snap.counter("engine.tie_break_hits").unwrap_or(0)
    );
    println!(
        "  core:     {} refinement steps, {} merge steps, {} bytes moved (δ·N per query)",
        snap.counter("core.s.refine_steps").unwrap_or(0),
        snap.counter("core.s.merge_steps").unwrap_or(0),
        snap.counter("core.s.bytes_moved").unwrap_or(0),
    );
    println!(
        "  pool:     {} jobs, {} steals, {} caller-helped, {} idle maintenance cycles",
        snap.counter("sched.pool.jobs").unwrap_or(0),
        snap.counter("sched.pool.steals").unwrap_or(0),
        snap.counter("sched.pool.helped").unwrap_or(0),
        snap.counter("sched.pool.idle_cycles").unwrap_or(0),
    );
    println!("  phase timings (count / p50 / p95 / p99):");
    for phase in ["decompose", "scan", "merge", "maintain"] {
        if let Some(h) = snap.histogram(&format!("executor.phase.{phase}_ns")) {
            println!(
                "    {:>9}: {:>6} / {:>8} / {:>8} / {:>8}",
                phase,
                h.count,
                ns(h.p50()),
                ns(h.p95()),
                ns(h.p99()),
            );
        }
    }
    if let Some(err) = snap.histogram("core.s.cost_error_pm") {
        println!(
            "  cost model: |predicted − actual| / budget = {:.1}‰ mean, {}‰ p95 ({} samples)",
            err.mean(),
            err.p95(),
            err.count,
        );
    }

    // Exports: the JSON document must satisfy the CI schema validator,
    // and the same snapshot renders as Prometheus exposition text.
    let json = snap.to_json();
    validate_snapshot_json(&json).expect("snapshot JSON matches the schema");
    println!(
        "\nsnapshot exports: {} bytes of schema-valid JSON, {} lines of Prometheus text",
        json.len(),
        snap.to_prometheus().lines().count()
    );
    for line in snap
        .to_prometheus()
        .lines()
        .filter(|l| l.starts_with("engine_rho_s_"))
    {
        println!("  {line}");
    }
}
