//! Interactive data exploration: the paper's motivating scenario.
//!
//! A data scientist loads a (SkyServer-like) data set and immediately
//! starts issuing exploratory range queries — dwelling on a region,
//! drifting, then jumping elsewhere. Nothing is known about the workload
//! up front, so building a full index first would block the first answer,
//! while never indexing makes every answer a full scan.
//!
//! The example runs the same exploration session twice — once with plain
//! full scans and once with a progressive index under an adaptive budget —
//! and reports how response times evolve relative to each other.
//!
//! ```bash
//! cargo run --release --example interactive_exploration
//! ```

use std::sync::Arc;
use std::time::Instant;

use progressive_indexes::index::budget::BudgetPolicy;
use progressive_indexes::index::cost_model::{CostConstants, CostModel};
use progressive_indexes::index::{ProgressiveRadixsortMsd, RangeIndex};
use progressive_indexes::storage::{scan, Column};
use progressive_indexes::workloads::skyserver::{self, SkyServerConfig};

fn main() {
    // A scaled-down SkyServer-like session: clustered data, dwell-drift-jump
    // query log.
    let config = SkyServerConfig::scaled(2_000_000, 500);
    let workload = skyserver::generate(config);
    let column = Arc::new(Column::from_vec(workload.data));
    let queries = workload.queries;

    let constants = CostConstants::calibrate();
    let model = CostModel::new(constants, column.len());
    let policy = BudgetPolicy::Adaptive(0.2 * model.t_scan());
    let mut index = ProgressiveRadixsortMsd::with_constants(Arc::clone(&column), policy, constants);

    let mut scan_total = 0.0f64;
    let mut progressive_total = 0.0f64;
    let mut converged_at: Option<usize> = None;

    println!(
        "exploration session: {} queries over {} rows",
        queries.len(),
        column.len()
    );
    println!(
        "{:<8} {:>16} {:>16} {:>10}",
        "query", "full scan (µs)", "progressive (µs)", "phase"
    );

    for (i, q) in queries.iter().enumerate() {
        let start = Instant::now();
        let scan_answer = scan::scan_range_sum(column.data(), q.low, q.high);
        let scan_micros = start.elapsed().as_secs_f64() * 1e6;
        scan_total += scan_micros;

        let start = Instant::now();
        let progressive_answer = index.query(q.low, q.high);
        let progressive_micros = start.elapsed().as_secs_f64() * 1e6;
        progressive_total += progressive_micros;

        assert_eq!(
            scan_answer.sum, progressive_answer.sum,
            "answers must agree"
        );
        if converged_at.is_none() && index.is_converged() {
            converged_at = Some(i + 1);
        }
        if i < 5 || (i + 1) % 100 == 0 {
            println!(
                "{:<8} {:>16.0} {:>16.0} {:>10}",
                i + 1,
                scan_micros,
                progressive_micros,
                progressive_answer.phase.label()
            );
        }
    }

    println!(
        "\ncumulative full-scan time:    {:>10.1} ms",
        scan_total / 1e3
    );
    println!(
        "cumulative progressive time:  {:>10.1} ms",
        progressive_total / 1e3
    );
    match converged_at {
        Some(q) => println!(
            "progressive index converged after query {q}; every later query is an index lookup."
        ),
        None => println!("progressive index had not converged by the end of the session."),
    }
    println!(
        "the per-query overhead before convergence stayed within the 1.2x-scan budget, so the session never stalled — the paper's interactivity argument."
    );
}
