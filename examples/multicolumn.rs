//! Multi-column queries over progressive indexes: conjunctive
//! predicates planned across heterogeneous columns, plus grouped
//! aggregates from sub-shard digest trees.
//!
//! Builds a three-column table (u64 ids, f64 measurements, strings with
//! a hot shared prefix), runs a skewed-selectivity conjunction with the
//! planner on and off, mutates some rows, and answers a `GROUP BY
//! bucket` aggregate twice — the second time straight from the
//! mutation-stamped aggregate cache.
//!
//! ```bash
//! cargo run --release --example multicolumn
//! ```

use std::sync::Arc;

use progressive_indexes::engine::{
    ErasedColumn, ErasedKey, GroupedQuery, MultiColumnSpec, MultiExecutor, MultiTable, PlanMode,
    Predicate, RowMutation,
};
use progressive_indexes::obs::MetricsRegistry;
use progressive_indexes::workloads::multicol::hetero_rows;
use progressive_indexes::workloads::Distribution;

const ROWS: usize = 200_000;

fn main() {
    let (ids, temps, names) = hetero_rows(Distribution::Skewed, ROWS, 1_000.0, 7);
    let table = Arc::new(
        MultiTable::builder()
            .column(MultiColumnSpec::new("id", ErasedColumn::U64(ids)).with_shards(8))
            .column(MultiColumnSpec::new("temp", ErasedColumn::F64(temps)).with_shards(8))
            .column(MultiColumnSpec::new("name", ErasedColumn::Str(names)).with_shards(8))
            .build(),
    );
    println!("table: {ROWS} rows x {} columns", table.names().len());

    // A conjunction with wildly skewed selectivities: the id predicate
    // matches ~90% of the rows, the temp predicate ~1%. The planner
    // drives the selective column; the baseline drives the first one.
    let registry = Arc::new(MetricsRegistry::new());
    let executor = MultiExecutor::with_metrics(
        Arc::clone(&table),
        Default::default(),
        Arc::clone(&registry),
    );
    let predicates = [
        Predicate::between_u64("id", 0, (ROWS as u64 * 9) / 10),
        Predicate::new("temp", ErasedKey::F64(-10.0), ErasedKey::F64(10.0)),
        Predicate::new(
            "name",
            ErasedKey::Str("a".into()),
            ErasedKey::Str("zzzzzzzzzzzz".into()),
        ),
    ];
    let plan = executor.plan(&predicates).unwrap();
    for stats in &plan.stats {
        println!(
            "  {:>5}: selectivity ~{:>5.1}%  rho {:.2}  score {:.3}",
            stats.column,
            stats.selectivity * 100.0,
            stats.rho,
            stats.score()
        );
    }
    println!(
        "planner drives {:?} (baseline would drive {:?})",
        predicates[plan.driving].column, predicates[0].column
    );

    let answer = executor.execute(&predicates).unwrap();
    println!(
        "conjunction: {} rows match; SUM(id) = {:?}, SUM(temp) = {:?} (gated off)",
        answer.count, answer.sums[0], answer.sums[1]
    );
    let baseline = MultiExecutor::new(Arc::clone(&table)).with_mode(PlanMode::FirstPredicate);
    assert_eq!(baseline.execute(&predicates).unwrap().count, answer.count);
    println!("baseline (drive-first-predicate) agrees: the plan moves cost, never answers");

    // Grouped aggregates from sub-shard digest trees, cached per shard.
    let grouped = GroupedQuery::new("id", ErasedKey::U64(0), ErasedKey::U64(u64::MAX), 25_000);
    let groups = executor.grouped(&grouped).unwrap();
    println!("\nGROUP BY bucket(25k) over id: {} groups", groups.len());
    for g in groups.iter().take(4) {
        println!(
            "  bucket {:>2}: count {:>6}  min {:?}  max {:?}",
            g.bucket, g.count, g.min, g.max
        );
    }

    // Mutations invalidate exactly the touched shards' cached trees.
    executor.apply_rows(&[
        RowMutation::Delete(0),
        RowMutation::Insert(vec![
            ErasedKey::U64(123),
            ErasedKey::F64(0.5),
            ErasedKey::Str("freshly-inserted".into()),
        ]),
    ]);
    let after = executor.grouped(&grouped).unwrap();
    println!(
        "after 2 row mutations: first bucket count {} -> {}",
        groups[0].count, after[0].count
    );
    let snapshot = registry.snapshot();
    println!(
        "planner metrics: conjunctions={} survivors_validated={} agg cache hits={} invalidations={}",
        snapshot.counter("planner.conjunctions").unwrap_or(0),
        snapshot.counter("planner.survivors_validated").unwrap_or(0),
        snapshot.counter("planner.agg.cache_hits").unwrap_or(0),
        snapshot.counter("planner.agg.cache_invalidations").unwrap_or(0),
    );
}
