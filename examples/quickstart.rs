//! Quickstart: build a progressive index over a column and watch it
//! converge while answering queries.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Instant;

use progressive_indexes::index::budget::BudgetPolicy;
use progressive_indexes::index::cost_model::CostConstants;
use progressive_indexes::index::{ProgressiveQuicksort, RangeIndex};
use progressive_indexes::storage::Column;
use progressive_indexes::workloads::data;

fn main() {
    // A column of one million uniformly distributed integers — think of it
    // as a freshly loaded attribute a data scientist wants to explore.
    let n = 1_000_000;
    let column = Arc::new(Column::from_vec(data::uniform_random(n, 42)));

    // Measure the hardware constants once (the paper does this at start-up)
    // and give every query an indexing budget of 20% of a full scan.
    let constants = CostConstants::calibrate();
    let model = progressive_indexes::index::cost_model::CostModel::new(constants, n);
    let policy = BudgetPolicy::Adaptive(0.2 * model.t_scan());
    let mut index = ProgressiveQuicksort::with_constants(Arc::clone(&column), policy, constants);

    println!("progressive quicksort over {n} rows, budget = 0.2 x scan cost");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>12}",
        "query", "time (µs)", "rows", "phase", "converged"
    );

    // The same analytical query, repeated: SELECT SUM(a) WHERE a BETWEEN ..
    let (low, high) = (250_000, 350_000);
    let mut query_number = 0u32;
    loop {
        query_number += 1;
        let start = Instant::now();
        let result = index.query(low, high);
        let elapsed = start.elapsed().as_micros();
        if query_number <= 10 || query_number.is_multiple_of(25) || index.is_converged() {
            println!(
                "{:<8} {:>12} {:>12} {:>14} {:>12}",
                query_number,
                elapsed,
                result.count,
                result.phase.label(),
                index.is_converged()
            );
        }
        if index.is_converged() {
            break;
        }
        if query_number > 10_000 {
            println!("did not converge within 10k queries (unexpected)");
            break;
        }
    }

    println!(
        "\nconverged after {query_number} queries; subsequent queries are answered from the B+-tree."
    );
}
