//! Offline shim for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the subset of the `criterion 0.5` API this workspace's
//! benches use — `criterion_group!`/`criterion_main!`, [`Criterion`],
//! benchmark groups, [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BenchmarkId`] and [`black_box`] — and reports mean wall-clock time
//! per iteration to stdout. No statistics, plots or baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; only a marker in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (batch of one).
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id labelled `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    elapsed: Duration,
    fastest: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, called repeatedly until the sample count or the
    /// measurement-time budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        let wall = Instant::now();
        let mut fastest = Duration::MAX;
        let mut iterations = 0u64;
        while iterations < self.samples as u64 && wall.elapsed() < self.measurement_time {
            let start = Instant::now();
            black_box(routine());
            fastest = fastest.min(start.elapsed());
            iterations += 1;
        }
        self.elapsed = wall.elapsed();
        self.fastest = fastest.min(self.elapsed);
        self.iterations = iterations.max(1);
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut timed = Duration::ZERO;
        let mut fastest = Duration::MAX;
        let mut iterations = 0u64;
        let wall = Instant::now();
        while iterations < self.samples as u64 && wall.elapsed() < self.measurement_time {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let sample = start.elapsed();
            timed += sample;
            fastest = fastest.min(sample);
            iterations += 1;
        }
        self.elapsed = timed;
        self.fastest = fastest.min(self.elapsed);
        self.iterations = iterations.max(1);
    }
}

fn scale(per_iter: f64) -> (f64, &'static str) {
    if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    }
}

fn report(path: &str, elapsed: Duration, fastest: Duration, iterations: u64) {
    let per_iter = elapsed.as_secs_f64() / iterations as f64;
    let (value, unit) = scale(per_iter);
    let (min_value, min_unit) = scale(fastest.as_secs_f64());
    println!(
        "{path:<60} time: {value:>10.3} {unit}/iter \
         (min {min_value:.3} {min_unit}, {iterations} iterations)"
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.criterion.run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one benchmark of the group with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.criterion
            .run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Declares a throughput hint; ignored by this shim.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Throughput hints, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement, exposed through [`Criterion::results`] so
/// bench binaries can emit machine-readable reports (the real criterion
/// writes `target/criterion/**/estimates.json`; this shim hands the
/// numbers back in-process instead).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark path, e.g. `group/function/parameter`.
    pub id: String,
    /// Mean wall-clock seconds per iteration.
    pub seconds_per_iter: f64,
    /// Fastest single iteration — the noise-robust estimator (the real
    /// criterion reports `[min typical max]`; on a loaded host the min
    /// tracks the routine's cost, the mean tracks the host's).
    pub min_seconds_per_iter: f64,
    /// Iterations measured.
    pub iterations: u64,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
    results: std::cell::RefCell<Vec<BenchResult>>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(200),
            results: std::cell::RefCell::new(Vec::new()),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement-time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time (the shim warms up with a single call).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.to_string(), f);
        self
    }

    /// Every measurement this driver has completed so far, in run order.
    pub fn results(&self) -> Vec<BenchResult> {
        self.results.borrow().clone()
    }

    /// Records an externally measured result, printing it like a run
    /// benchmark. Benches use this for *paired* designs — alternating
    /// configurations within one sampling loop so that machine-speed
    /// drift hits every configuration equally — which `Bencher`'s
    /// one-configuration-at-a-time loop cannot express.
    pub fn record_result(&self, result: BenchResult) {
        report(
            &result.id,
            Duration::from_secs_f64(result.seconds_per_iter * result.iterations as f64),
            Duration::from_secs_f64(result.min_seconds_per_iter),
            result.iterations,
        );
        self.results.borrow_mut().push(result);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, path: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            elapsed: Duration::ZERO,
            fastest: Duration::MAX,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations == 0 {
            // The routine never called iter(); nothing to report.
            println!("{path:<60} (no measurement)");
        } else {
            report(path, bencher.elapsed, bencher.fastest, bencher.iterations);
            self.results.borrow_mut().push(BenchResult {
                id: path.to_string(),
                seconds_per_iter: bencher.elapsed.as_secs_f64() / bencher.iterations as f64,
                min_seconds_per_iter: bencher.fastest.as_secs_f64(),
                iterations: bencher.iterations,
            });
        }
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function(BenchmarkId::new("iter", 1), |b| b.iter(|| 2 + 2));
        group.bench_function("plain", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        targets = sample_bench
    );

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn results_are_recorded_per_benchmark() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        sample_bench(&mut c);
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "shim/iter/1");
        assert_eq!(results[1].id, "shim/plain");
        for r in &results {
            assert!(r.iterations > 0, "{r:?}");
            assert!(r.seconds_per_iter >= 0.0, "{r:?}");
            assert!(
                r.min_seconds_per_iter <= r.seconds_per_iter,
                "min above mean: {r:?}"
            );
        }
    }
}
