//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Provides the subset of the `proptest 1` API this workspace uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), [`Strategy`] implementations for integer ranges and tuples,
//! [`collection::vec`], [`any`], and the `prop_assert*` macros.
//!
//! Each test runs `ProptestConfig::cases` iterations with a deterministic
//! per-case RNG. There is **no shrinking**: a failing case reports the
//! plain assertion message, and the deterministic seeding makes reruns
//! reproduce it exactly.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies; deterministic per (property, case).
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case number `case` of a property.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(0xC0FF_EE00_0000_0000 ^ case))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of an associated type, mirroring
/// `proptest::strategy::Strategy` (minus shrinking).
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u64, u32, usize);

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Length specifications accepted by [`vec()`].
    pub trait IntoSizeRange {
        /// Returns the inclusive `(min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    /// Strategy generating vectors whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` site needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the real crate's `prelude::prop` module re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs the body of one property over `config.cases` deterministic cases.
/// Used by the expansion of [`proptest!`]; not part of the public API shape
/// of the real crate.
pub fn run_cases(config: &ProptestConfig, mut case: impl FnMut(&mut TestRng)) {
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(i as u64);
        case(&mut rng);
    }
}

/// Property-based tests over generated inputs; mirrors `proptest::proptest!`
/// without shrinking.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(&config, |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), rng);)+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assertion inside a property; maps to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property; maps to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property; maps to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, Vec<u64>)> {
        (0..10u64, prop::collection::vec(0..100u64, 1..5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments must be accepted in front of the test attribute.
        #[test]
        fn generated_values_respect_bounds((x, v) in pair(), y in 5..8usize) {
            prop_assert!(x < 10);
            prop_assert!((5..8).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 5);
            for &e in &v {
                prop_assert!(e < 100, "element {} out of range", e);
            }
        }

        #[test]
        fn mut_bindings_work(mut v in prop::collection::vec(0..50u64, 0..10)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn any_is_supported(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = 0..1_000u64;
        let a: Vec<u64> = (0..5)
            .map(|i| s.generate(&mut TestRng::for_case(i)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|i| s.generate(&mut TestRng::for_case(i)))
            .collect();
        assert_eq!(a, b);
    }
}
