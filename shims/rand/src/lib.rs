//! Offline shim for the `rand` crate (see `shims/README.md`).
//!
//! Implements the subset of the `rand 0.8` API this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! are **not** identical to the real crate's output.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types the [`Rng::gen`] method can produce ("standard distribution").
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one uniformly distributed value.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    assert!(span > 0, "cannot sample empty range");
    // Multiply-shift reduction (Lemire, without the rejection step): maps
    // a 64-bit draw onto [0, span) with bias well below test sensitivity.
    ((rng.next_u64() as u128) * span) >> 64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + sample_span(rng, span) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + sample_span(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u64, u32, usize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a uniformly distributed value from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256\*\* seeded via SplitMix64.
    ///
    /// Deterministic per seed; statistically strong enough for workload
    /// generation and stochastic cracking, which is all the workspace asks
    /// of it.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn f64_standard_lies_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(5..5u64);
    }
}
