//! # progressive-indexes — facade crate
//!
//! Re-exports the whole Progressive Indexing workspace behind a single
//! dependency, so downstream users can write `progressive_indexes::...`
//! without tracking the individual member crates:
//!
//! * [`storage`] — columns, predicated scans, static B+-tree
//!   ([`pi_storage`]).
//! * [`index`] — the four progressive indexing algorithms, cost models,
//!   indexing budgets and the decision tree ([`pi_core`]).
//! * [`cracking`] — adaptive-indexing baselines: database cracking and its
//!   variants, plus full-scan / full-index references ([`pi_cracking`]).
//! * [`workloads`] — synthetic data and query-pattern generators, including
//!   the SkyServer-like workload and multi-client streams
//!   ([`pi_workloads`]).
//! * [`engine`] — the sharded, concurrent query-serving engine: multi-column
//!   tables, range shards, batched parallel execution ([`pi_engine`]).
//! * [`sched`] — the persistent runtime underneath: shard-affine
//!   work-stealing worker pool and the async-style serving front-end with
//!   bounded queue, coalescing and backpressure ([`pi_sched`]).
//! * [`experiments`] — the harness reproducing the paper's figures and
//!   tables ([`pi_experiments`]).
//! * [`obs`] — in-tree observability: sharded counters, log-bucketed
//!   latency histograms, the metrics registry and its JSON / Prometheus
//!   exports ([`pi_obs`]).
//! * [`durable`] — write-ahead logging, column snapshots and crash
//!   recovery for the engine's tables ([`pi_durable`]).
//!
//! See the repository README for a quickstart and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction map.

#![warn(missing_docs)]

pub use pi_core as index;
pub use pi_cracking as cracking;
pub use pi_durable as durable;
pub use pi_engine as engine;
pub use pi_experiments as experiments;
pub use pi_obs as obs;
pub use pi_sched as sched;
pub use pi_storage as storage;
pub use pi_workloads as workloads;

pub use pi_core::prelude::*;
