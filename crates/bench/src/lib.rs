//! # pi-bench — Criterion benchmarks
//!
//! The benchmark targets live in `benches/`; this library only hosts the
//! small helpers they share (sized-down workloads and index construction)
//! so each bench file stays focused on what it measures.
//!
//! Benchmarks are *shape* reproductions of the paper's experiments: they
//! use laptop-scale columns (10^5–10^6 elements) so `cargo bench`
//! completes in minutes, while preserving the relative comparisons the
//! paper reports (who wins, and roughly by how much).
//!
//! | Paper artefact | Bench target |
//! |---|---|
//! | substrate micro-benchmarks | `substrates` |
//! | Figures 5 & 6 (workload generation) | `workload_generation` |
//! | Figure 7 (δ impact) | `fig7_delta_impact` |
//! | Figures 8 & 9 (budget modes) | `fig8_fig9_budgets` |
//! | Table 2 / Figure 10 (SkyServer comparison) | `table2_fig10_skyserver` |
//! | Tables 3–5 (synthetic grid) | `tables3_4_5_synthetic` |
//! | serving-engine scaling (not in the paper) | `engine_throughput` — writes `BENCH_engine.json`; `PI_BENCH_SMOKE=1` for the CI smoke iteration |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::Arc;

use pi_core::budget::BudgetPolicy;
use pi_core::cost_model::CostConstants;
use pi_experiments::{AlgorithmId, Scale, Workload};
use pi_storage::Column;
use pi_workloads::{Distribution, Pattern, RangeQuery};

/// Default benchmark scale: large enough that indexing work dominates
/// fixed overheads, small enough that a full Criterion run stays fast.
pub const BENCH_SCALE: Scale = Scale {
    column_size: 100_000,
    query_count: 100,
};

/// A prepared benchmark workload: column plus query log.
pub struct BenchWorkload {
    /// The data column.
    pub column: Arc<Column>,
    /// The query log.
    pub queries: Vec<RangeQuery>,
}

/// The SkyServer-substitute workload at benchmark scale.
pub fn skyserver_workload() -> BenchWorkload {
    let w = Workload::skyserver(BENCH_SCALE);
    BenchWorkload {
        column: w.column,
        queries: w.queries,
    }
}

/// A synthetic workload at benchmark scale.
pub fn synthetic_workload(distribution: Distribution, pattern: Pattern) -> BenchWorkload {
    let w = Workload::synthetic(distribution, pattern, BENCH_SCALE, false);
    BenchWorkload {
        column: w.column,
        queries: w.queries,
    }
}

/// Runs the whole query log of `workload` against a freshly built index,
/// returning a checksum so the optimiser cannot discard the work.
pub fn run_full_workload(
    algorithm: AlgorithmId,
    workload: &BenchWorkload,
    policy: BudgetPolicy,
) -> u128 {
    let mut index = algorithm.build(
        Arc::clone(&workload.column),
        policy,
        CostConstants::synthetic(),
    );
    let mut checksum = 0u128;
    for q in &workload.queries {
        checksum = checksum.wrapping_add(index.query(q.low, q.high).sum);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_checksums_across_algorithms() {
        let workload = synthetic_workload(Distribution::UniformRandom, Pattern::Random);
        let policy = BudgetPolicy::FixedDelta(0.25);
        let reference = run_full_workload(AlgorithmId::FullScan, &workload, policy);
        for algorithm in [
            AlgorithmId::ProgressiveQuicksort,
            AlgorithmId::StandardCracking,
            AlgorithmId::FullIndex,
        ] {
            assert_eq!(
                run_full_workload(algorithm, &workload, policy),
                reference,
                "{algorithm}"
            );
        }
    }

    #[test]
    fn bench_workloads_have_expected_scale() {
        let w = skyserver_workload();
        assert_eq!(w.column.len(), BENCH_SCALE.column_size);
        assert_eq!(w.queries.len(), BENCH_SCALE.query_count);
    }
}
