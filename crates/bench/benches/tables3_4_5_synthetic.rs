//! Tables 3–5 as a benchmark: the synthetic workload grid — uniform and
//! skewed data crossed with representative query patterns — for the four
//! progressive algorithms and adaptive adaptive indexing. The relative
//! group timings reproduce the cumulative-time comparisons of Table 4;
//! the per-run statistics Criterion reports cover first-query cost and
//! variance at benchmark scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pi_bench::{run_full_workload, synthetic_workload};
use pi_core::budget::BudgetPolicy;
use pi_experiments::AlgorithmId;
use pi_workloads::{Distribution, Pattern};

const ALGORITHMS: [AlgorithmId; 5] = [
    AlgorithmId::ProgressiveQuicksort,
    AlgorithmId::ProgressiveBucketsort,
    AlgorithmId::ProgressiveRadixsortLsd,
    AlgorithmId::ProgressiveRadixsortMsd,
    AlgorithmId::AdaptiveAdaptive,
];

// A representative subset of the paper's eight patterns keeps the bench
// run short while covering the sequential, random, skewed and zooming
// behaviours that differentiate the algorithms.
const PATTERNS: [Pattern; 4] = [
    Pattern::SeqOver,
    Pattern::Random,
    Pattern::Skew,
    Pattern::ZoomIn,
];

fn bench_block(c: &mut Criterion, name: &str, distribution: Distribution) {
    let mut group = c.benchmark_group(format!("tables3_4_5_{name}"));
    for pattern in PATTERNS {
        let workload = synthetic_workload(distribution, pattern);
        for algorithm in ALGORITHMS {
            group.bench_function(BenchmarkId::new(pattern.label(), algorithm.label()), |b| {
                b.iter(|| {
                    black_box(run_full_workload(
                        algorithm,
                        &workload,
                        BudgetPolicy::FixedDelta(0.25),
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_uniform(c: &mut Criterion) {
    bench_block(c, "uniform", Distribution::UniformRandom);
}

fn bench_skewed(c: &mut Criterion) {
    bench_block(c, "skewed", Distribution::Skewed);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_secs(1)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_uniform, bench_skewed
);
criterion_main!(benches);
