//! Serving-engine throughput: queries/second as a function of shard count
//! (1, 2, 4, 8) and per-query indexing budget δ. The scaling baseline for
//! future serving-layer PRs (async serving, caching, multi-backend).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pi_bench::BENCH_SCALE;
use pi_core::budget::BudgetPolicy;
use pi_engine::{ColumnSpec, Executor, ExecutorConfig, Table, TableQuery};
use pi_workloads::multi_client::{self, MultiClientSpec, PatternAssignment};
use pi_workloads::{data, Distribution, WorkloadSpec};

const CLIENT_THREADS: usize = 4;
const QUERIES_PER_CLIENT: usize = 50;

fn build_executor(rows: usize, shards: usize, delta: f64) -> Executor {
    let values = data::generate(Distribution::UniformRandom, rows, 31);
    let table = Arc::new(
        Table::builder()
            .column(
                ColumnSpec::new("a", values)
                    .with_shards(shards)
                    .with_policy(BudgetPolicy::FixedDelta(delta)),
            )
            .build(),
    );
    Executor::with_config(
        table,
        ExecutorConfig {
            worker_threads: shards.min(8),
            maintenance_steps: 2,
        },
    )
}

/// Runs `CLIENT_THREADS` concurrent clients, each submitting its stream in
/// batches of ten; returns the total number of queries served.
fn serve(executor: &Executor, rows: usize) -> usize {
    let streams = multi_client::generate(&MultiClientSpec {
        clients: CLIENT_THREADS,
        base: WorkloadSpec::range(rows as u64, QUERIES_PER_CLIENT),
        assignment: PatternAssignment::AllPatterns,
    });
    std::thread::scope(|scope| {
        for stream in &streams {
            scope.spawn(move || {
                for chunk in stream.queries.chunks(10) {
                    let batch: Vec<TableQuery> = chunk
                        .iter()
                        .map(|q| TableQuery::new("a", q.low, q.high))
                        .collect();
                    black_box(executor.execute_batch(&batch).expect("known column"));
                }
            });
        }
    });
    CLIENT_THREADS * QUERIES_PER_CLIENT
}

fn bench_shard_scaling(c: &mut Criterion) {
    let rows = BENCH_SCALE.column_size;
    let mut group = c.benchmark_group("engine_throughput/shards");
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("serve", shards), |b| {
            // A fresh table per measurement so every sample pays the same
            // mix of indexing work (cold start → refinement).
            b.iter_batched(
                || build_executor(rows, shards, 0.25),
                |executor| serve(&executor, rows),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_budget_impact(c: &mut Criterion) {
    let rows = BENCH_SCALE.column_size;
    let mut group = c.benchmark_group("engine_throughput/delta");
    for delta in [0.1f64, 0.25, 0.5, 1.0] {
        group.bench_function(BenchmarkId::new("serve_4_shards", delta), |b| {
            b.iter_batched(
                || build_executor(rows, 4, delta),
                |executor| serve(&executor, rows),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_converged_serving(c: &mut Criterion) {
    let rows = BENCH_SCALE.column_size;
    let mut group = c.benchmark_group("engine_throughput/converged");
    for shards in [1usize, 4] {
        let executor = build_executor(rows, shards, 1.0);
        executor.drive_to_convergence(usize::MAX);
        group.bench_function(BenchmarkId::new("serve", shards), |b| {
            b.iter(|| serve(&executor, rows))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_secs(1)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_shard_scaling, bench_budget_impact, bench_converged_serving
);
criterion_main!(benches);
