//! Serving-engine throughput: queries/second as a function of shard count
//! (1, 2, 4, 8) and per-query indexing budget δ, plus the full
//! server-front-end stack. The scaling baseline for serving-layer PRs.
//!
//! Every group compares configurations against each other, so the
//! measurement design is **paired**: each sampling round times every
//! configuration back to back (fresh state per time, round-robin) instead
//! of giving each configuration its own multi-second window. On a host
//! whose effective speed drifts, per-configuration windows turn the
//! comparison into a lottery over *when* a configuration was measured;
//! pairing cancels the drift out. Per configuration the JSON reports the
//! median round (the fair cross-configuration estimator under pairing)
//! plus the fastest round.
//!
//! Besides the human-readable report, a full run writes the numbers to
//! `BENCH_engine.json` at the repository root so the perf trajectory is
//! tracked across PRs. Setting `PI_BENCH_SMOKE=1` runs a sized-down
//! iteration (CI smoke: the bench target cannot bitrot) without touching
//! the committed JSON.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, BenchResult, Criterion};

use pi_bench::BENCH_SCALE;
use pi_core::budget::BudgetPolicy;
use pi_core::mutation::Mutation;
use pi_durable::snapshot::{DirStore, MemStore};
use pi_durable::wal::{FileWal, FsyncPolicy, MemWalHandle};
use pi_engine::typed::{TableKey, TypedColumnSpec, TypedExecutor, TypedQuery, TypedTable};
use pi_engine::{ColumnSpec, Executor, ExecutorConfig, Table, TableQuery, TableServer};
use pi_engine::{DurabilityConfig, DurableTable};
use pi_engine::{
    ErasedColumn, ErasedKey, GroupedQuery, MultiColumnSpec, MultiExecutor, MultiTable, PlanMode,
    Predicate,
};
use pi_obs::MetricsRegistry;
use pi_sched::ServerConfig;
use pi_workloads::closed_loop::{self, BatchOutcome, LatencyPercentiles};
use pi_workloads::domains;
use pi_workloads::mixed::{self, MixedOp, MixedSpec, WriteOp};
use pi_workloads::multi_client::{self, MultiClientSpec, PatternAssignment};
use pi_workloads::multicol;
use pi_workloads::{data, Distribution, WorkloadSpec};

const CLIENT_THREADS: usize = 4;
const QUERIES_PER_CLIENT: usize = 150;

/// Per-run sizing: the default bench scale, or a CI smoke iteration.
#[derive(Clone, Copy)]
struct BenchParams {
    rows: usize,
    queries_per_client: usize,
    /// Paired sampling rounds per group.
    rounds: usize,
    smoke: bool,
}

impl BenchParams {
    fn from_env() -> Self {
        if std::env::var_os("PI_BENCH_SMOKE").is_some() {
            BenchParams {
                rows: 20_000,
                queries_per_client: 10,
                rounds: 1,
                smoke: true,
            }
        } else {
            BenchParams {
                rows: BENCH_SCALE.column_size,
                queries_per_client: QUERIES_PER_CLIENT,
                rounds: 50,
                smoke: false,
            }
        }
    }

    fn queries_per_run(&self) -> usize {
        CLIENT_THREADS * self.queries_per_client
    }
}

fn build_executor(params: BenchParams, shards: usize, delta: f64) -> Executor {
    let values = data::generate(Distribution::UniformRandom, params.rows, 31);
    let table = Arc::new(
        Table::builder()
            .column(
                ColumnSpec::new("a", values)
                    .with_shards(shards)
                    .with_policy(BudgetPolicy::FixedDelta(delta)),
            )
            .build(),
    );
    Executor::with_config(
        table,
        ExecutorConfig {
            maintenance_steps: 2,
            ..ExecutorConfig::default()
        },
    )
}

/// The `CLIENT_THREADS` per-client query streams — deterministic, so they
/// are generated once per group, outside the timed serves.
fn client_streams(params: BenchParams) -> Vec<multi_client::ClientStream> {
    multi_client::generate(&MultiClientSpec {
        clients: CLIENT_THREADS,
        base: WorkloadSpec::range(params.rows as u64, params.queries_per_client),
        assignment: PatternAssignment::AllPatterns,
    })
}

/// Runs `CLIENT_THREADS` concurrent closed-loop clients, each submitting
/// its stream in batches of ten; returns the closed-loop report (served
/// count, throughput, per-batch latency percentiles).
fn serve(
    executor: &Executor,
    streams: &[multi_client::ClientStream],
) -> closed_loop::ClosedLoopReport {
    closed_loop::drive(streams, 10, |_client, chunk| {
        let batch: Vec<TableQuery> = chunk
            .iter()
            .map(|q| TableQuery::new("a", q.low, q.high))
            .collect();
        black_box(executor.execute_batch(&batch).expect("known column"));
        BatchOutcome::Served
    })
}

/// Like [`serve`], but through the `pi-sched` server front-end (bounded
/// queue, coalescing across clients).
fn serve_via_server(
    server: &TableServer,
    streams: &[multi_client::ClientStream],
) -> closed_loop::ClosedLoopReport {
    closed_loop::drive(streams, 10, |_client, chunk| {
        let batch: Vec<TableQuery> = chunk
            .iter()
            .map(|q| TableQuery::new("a", q.low, q.high))
            .collect();
        black_box(
            server
                .submit(batch)
                .expect("server accepting")
                .wait()
                .expect("known column"),
        );
        BatchOutcome::Served
    })
}

/// Sample accumulator for one configuration of a paired group. The
/// headline estimator is the **median** round: with pairing, every
/// configuration sees the same host conditions each round, so medians
/// compare configurations fairly, while a min-vs-min comparison rewards
/// whichever configuration had the single luckiest round (an
/// extreme-value statistic) and mean-vs-mean is dominated by the slowest
/// rounds.
struct Paired {
    id: String,
    samples: Vec<f64>,
    /// Per-round batch-latency percentiles; the JSON reports the median
    /// round's percentile for each of p50/p95/p99 (the same fair
    /// cross-configuration estimator as the throughput median).
    latencies: Vec<LatencyPercentiles>,
}

/// Median of each percentile across rounds, in microseconds.
#[derive(Clone, Copy, Default)]
struct LatencySummary {
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Median of a sample set (0.0 when empty).
fn median(mut samples: Vec<f64>) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

impl Paired {
    fn new(id: String) -> Self {
        Paired {
            id,
            samples: Vec::new(),
            latencies: Vec::new(),
        }
    }

    fn add(&mut self, seconds: f64, latency: LatencyPercentiles) {
        self.samples.push(seconds);
        self.latencies.push(latency);
    }

    fn record(self, c: &Criterion, latency_out: &mut Vec<(String, LatencySummary)>) {
        let summary = LatencySummary {
            p50_us: median(
                self.latencies
                    .iter()
                    .map(|l| l.p50.as_secs_f64() * 1e6)
                    .collect(),
            ),
            p95_us: median(
                self.latencies
                    .iter()
                    .map(|l| l.p95.as_secs_f64() * 1e6)
                    .collect(),
            ),
            p99_us: median(
                self.latencies
                    .iter()
                    .map(|l| l.p99.as_secs_f64() * 1e6)
                    .collect(),
            ),
        };
        latency_out.push((self.id.clone(), summary));
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        c.record_result(BenchResult {
            iterations: self.samples.len() as u64,
            id: self.id,
            seconds_per_iter: median(self.samples),
            min_seconds_per_iter: min,
        });
    }
}

/// Paired measurement of one group: every round visits all
/// configurations back to back. `routine(config_index)` runs one sample
/// and returns the measured serve time — setup (table build) stays
/// outside the measurement, like `iter_batched`.
fn paired_rounds<F>(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    ids: Vec<String>,
    rounds: usize,
    mut routine: F,
) where
    F: FnMut(usize) -> (std::time::Duration, LatencyPercentiles),
{
    let mut acc: Vec<Paired> = ids.into_iter().map(Paired::new).collect();
    let n = acc.len();
    for round in 0..rounds {
        // Ping-pong the visit order so a drift trend within one round
        // penalises the first and last configuration alternately.
        for k in 0..n {
            let i = if round % 2 == 0 { k } else { n - 1 - k };
            let (elapsed, latency) = routine(i);
            acc[i].add(elapsed.as_secs_f64(), latency);
        }
    }
    for slot in acc {
        slot.record(c, latency_out);
    }
}

fn bench_shard_scaling(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    const SHARDS: [usize; 4] = [1, 2, 4, 8];
    let ids = SHARDS
        .iter()
        .map(|s| format!("engine_throughput/shards/serve/{s}"))
        .collect();
    let streams = client_streams(params);
    // A fresh table per measurement so every sample pays the same mix of
    // indexing work (cold start → refinement).
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let executor = build_executor(params, SHARDS[i], 0.25);
        let start = Instant::now();
        let report = black_box(serve(&executor, &streams));
        (start.elapsed(), report.latency)
    });
}

fn bench_budget_impact(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    const DELTAS: [f64; 4] = [0.1, 0.25, 0.5, 1.0];
    let ids = DELTAS
        .iter()
        .map(|d| format!("engine_throughput/delta/serve_4_shards/{d}"))
        .collect();
    let streams = client_streams(params);
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let executor = build_executor(params, 4, DELTAS[i]);
        let start = Instant::now();
        let report = black_box(serve(&executor, &streams));
        (start.elapsed(), report.latency)
    });
}

fn bench_converged_serving(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    const SHARDS: [usize; 2] = [1, 4];
    let executors: Vec<Executor> = SHARDS
        .iter()
        .map(|&shards| {
            let executor = build_executor(params, shards, 1.0);
            executor.drive_to_convergence(usize::MAX);
            executor
        })
        .collect();
    let ids = SHARDS
        .iter()
        .map(|s| format!("engine_throughput/converged/serve/{s}"))
        .collect();
    let streams = client_streams(params);
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let start = Instant::now();
        let report = black_box(serve(&executors[i], &streams));
        (start.elapsed(), report.latency)
    });
}

fn bench_server_front_end(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    const SHARDS: [usize; 2] = [1, 8];
    let streams = client_streams(params);
    let ids = SHARDS
        .iter()
        .map(|s| format!("engine_throughput/server/serve/{s}"))
        .collect();
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let server = TableServer::new(
            Arc::new(build_executor(params, SHARDS[i], 0.25)),
            ServerConfig::default(),
        );
        let start = Instant::now();
        let report = black_box(serve_via_server(&server, &streams));
        let elapsed = start.elapsed();
        server.shutdown();
        (elapsed, report.latency)
    });
}

/// Mixed read/write serving: a single serial client per write fraction,
/// interleaving mutation batches with query batches on a 4-shard table —
/// the serving-side cost of mutation support. Unlike the other groups
/// (4 concurrent closed-loop clients), this group is single-threaded and
/// its stream contains writes, so its JSON `queries_per_second` field is
/// really **operations/second (reads + writes)**; compare mixed entries
/// only against each other across PRs, not against the other groups.
fn bench_mixed_workload(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    const WRITE_FRACTIONS: [f64; 3] = [0.0, 0.1, 0.3];
    let ids = WRITE_FRACTIONS
        .iter()
        .map(|w| format!("engine_throughput/mixed/serve_4_shards/{w}"))
        .collect();
    let ops: Vec<Vec<MixedOp>> = WRITE_FRACTIONS
        .iter()
        .map(|&w| {
            mixed::generate(
                &MixedSpec::new(params.rows as u64, params.queries_per_run(), w)
                    .with_seed(97)
                    .with_insert_domain(params.rows as u64 * 2),
            )
        })
        .collect();
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let executor = build_executor(params, 4, 0.25);
        let mut latencies = Vec::new();
        let start = Instant::now();
        // Submit in batches of ten ops, writes and reads separated per
        // batch (the engine takes homogeneous batches).
        for chunk in ops[i].chunks(10) {
            let submitted = Instant::now();
            let mut queries = Vec::new();
            let mut writes = Vec::new();
            for op in chunk {
                match *op {
                    MixedOp::Read(q) => queries.push(TableQuery::new("a", q.low, q.high)),
                    MixedOp::Write(w) => writes.push(match w {
                        WriteOp::Insert(v) => Mutation::Insert(v),
                        WriteOp::Delete(v) => Mutation::Delete(v),
                        WriteOp::Update { old, new } => Mutation::Update { old, new },
                    }),
                }
            }
            if !writes.is_empty() {
                black_box(
                    executor
                        .apply_mutations("a", &writes)
                        .expect("known column"),
                );
            }
            if !queries.is_empty() {
                black_box(executor.execute_batch(&queries).expect("known column"));
            }
            latencies.push(submitted.elapsed());
        }
        (start.elapsed(), LatencyPercentiles::from_samples(latencies))
    });
}

/// Durability overhead: the `mixed` group's 0.3-write-fraction stream,
/// served once without a log and once per fsync policy with every
/// mutation batch write-ahead logged to a file (`FileWal` + `DirStore`
/// in a scratch directory). Same single-client ops/s semantics as
/// `mixed` — compare `durability` entries against each other and
/// against `mixed/0.3`; the `off` configuration doubles as the
/// no-regression guard for tables built without durability. Checkpoint
/// thresholds are parked high so the rounds measure steady-state WAL
/// overhead, not checkpoint placement.
fn bench_durability_overhead(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    const CONFIGS: [(&str, Option<FsyncPolicy>); 4] = [
        ("off", None),
        ("always", Some(FsyncPolicy::Always)),
        ("every32", Some(FsyncPolicy::EveryN(32))),
        (
            "interval2ms",
            Some(FsyncPolicy::Interval(Duration::from_millis(2))),
        ),
    ];
    let ids = CONFIGS
        .iter()
        .map(|(name, _)| format!("engine_throughput/durability/serve_4_shards/{name}"))
        .collect();
    let ops = mixed::generate(
        &MixedSpec::new(params.rows as u64, params.queries_per_run(), 0.3)
            .with_seed(97)
            .with_insert_domain(params.rows as u64 * 2),
    );
    let dir = std::env::temp_dir().join(format!("pi-bench-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let values = data::generate(Distribution::UniformRandom, params.rows, 31);
        let spec = ColumnSpec::new("a", values)
            .with_shards(4)
            .with_policy(BudgetPolicy::FixedDelta(0.25));
        let config = ExecutorConfig {
            maintenance_steps: 2,
            ..ExecutorConfig::default()
        };
        let executor = match CONFIGS[i].1 {
            None => Executor::with_config(Arc::new(Table::builder().column(spec).build()), config),
            Some(fsync) => {
                let durable = Table::builder()
                    .column(spec)
                    .durability(DurabilityConfig {
                        fsync,
                        checkpoint_wal_bytes: u64::MAX,
                        checkpoint_after_merges: u64::MAX,
                        ..DurabilityConfig::default()
                    })
                    .build_durable(
                        Box::new(FileWal::open(dir.join("bench.wal")).expect("wal file")),
                        Box::new(DirStore::open(&dir).expect("snapshot dir")),
                    )
                    .expect("durable build");
                Executor::with_durability(Arc::new(durable), config, None)
            }
        };
        let mut latencies = Vec::new();
        let start = Instant::now();
        for chunk in ops.chunks(10) {
            let submitted = Instant::now();
            let mut queries = Vec::new();
            let mut writes = Vec::new();
            for op in chunk {
                match *op {
                    MixedOp::Read(q) => queries.push(TableQuery::new("a", q.low, q.high)),
                    MixedOp::Write(w) => writes.push(match w {
                        WriteOp::Insert(v) => Mutation::Insert(v),
                        WriteOp::Delete(v) => Mutation::Delete(v),
                        WriteOp::Update { old, new } => Mutation::Update { old, new },
                    }),
                }
            }
            if !writes.is_empty() {
                black_box(
                    executor
                        .apply_mutations("a", &writes)
                        .expect("known column"),
                );
            }
            if !queries.is_empty() {
                black_box(executor.execute_batch(&queries).expect("known column"));
            }
            latencies.push(submitted.elapsed());
        }
        (start.elapsed(), LatencyPercentiles::from_samples(latencies))
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery time as a function of WAL-tail length: N mutation batches
/// are logged past the last checkpoint (in-memory log + store, so the
/// rounds measure replay work, not disk), then `DurableTable::recover`
/// is timed cold. `queries_per_second` is meaningless for this group —
/// read `median_seconds_per_iter` (recovery wall time) instead.
fn bench_recovery_time(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    const TAIL_BATCHES: [usize; 3] = [8, 64, 256];
    let batches = if params.smoke {
        [1, 2, 4]
    } else {
        TAIL_BATCHES
    };
    let ids = batches
        .iter()
        .map(|n| format!("engine_throughput/recovery/replay_batches/{n}"))
        .collect();
    let rows = if params.smoke { params.rows } else { 100_000 };
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let values = data::generate(Distribution::UniformRandom, rows, 31);
        let wal = MemWalHandle::new();
        let store = MemStore::new();
        let durable = Table::builder()
            .column(
                ColumnSpec::new("a", values)
                    .with_shards(4)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .durability(DurabilityConfig {
                fsync: FsyncPolicy::Always,
                checkpoint_wal_bytes: u64::MAX,
                checkpoint_after_merges: u64::MAX,
                ..DurabilityConfig::default()
            })
            .build_durable(Box::new(wal.storage()), Box::new(store.clone()))
            .expect("durable build");
        let mut seed = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..batches[i] {
            let batch: Vec<Mutation> = (0..50)
                .map(|_| {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    Mutation::Insert(seed % rows as u64)
                })
                .collect();
            durable.apply_mutations("a", &batch).expect("known column");
        }
        drop(durable);
        let start = Instant::now();
        let (_recovered, report) = black_box(
            DurableTable::recover(
                Box::new(wal.storage()),
                Box::new(store.clone()),
                DurabilityConfig::default(),
                None,
            )
            .expect("recovery"),
        );
        let elapsed = start.elapsed();
        assert_eq!(report.replayed_records, batches[i] as u64);
        (elapsed, LatencyPercentiles::from_samples(vec![elapsed]))
    });
}

/// Builds a typed executor over a fresh 4-shard column of `keys`.
fn build_typed_executor<K: TableKey>(keys: Vec<K>) -> TypedExecutor<K> {
    let table = Arc::new(
        TypedTable::builder()
            .column(
                TypedColumnSpec::new("a", keys)
                    .with_shards(4)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .build(),
    );
    TypedExecutor::with_config(
        table,
        ExecutorConfig {
            maintenance_steps: 2,
            ..ExecutorConfig::default()
        },
    )
}

/// Serves per-client typed range streams through a [`TypedExecutor`],
/// closed-loop, in batches of ten (the typed analogue of [`serve`]).
fn serve_typed<K: TableKey>(
    executor: &TypedExecutor<K>,
    streams: &[Vec<(K, K)>],
) -> closed_loop::ClosedLoopReport {
    let items: Vec<(usize, &[(K, K)])> = streams
        .iter()
        .enumerate()
        .map(|(client, s)| (client, s.as_slice()))
        .collect();
    closed_loop::drive_items(&items, 10, |_client, chunk| {
        let batch: Vec<TypedQuery<K>> = chunk
            .iter()
            .map(|(low, high)| TypedQuery::new("a", low.clone(), high.clone()))
            .collect();
        black_box(executor.execute_batch(&batch).expect("known column"));
        BatchOutcome::Served
    })
}

/// Typed key domains: float and string columns served through the
/// order-preserving encodings and the [`TypedExecutor`] facade, uniform
/// and skewed per domain. Same closed-loop shape as the `shards`/`delta`
/// groups (4 clients, batches of ten, fresh table per sample), so
/// `queries_per_second` is comparable across groups; the skewed string
/// configuration additionally pays the exact-match tie-break path on
/// every hot-prefix boundary (90% of rows share one 10-byte prefix —
/// one *code*).
fn bench_typed_domains(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    const DISTS: [Distribution; 2] = [Distribution::UniformRandom, Distribution::Skewed];
    let half = params.rows as f64 / 2.0;

    let ids = DISTS
        .iter()
        .map(|d| format!("engine_throughput/float/serve_4_shards/{d}"))
        .collect();
    let float_streams: Vec<Vec<(f64, f64)>> = (0..CLIENT_THREADS)
        .map(|client| {
            domains::float_ranges(params.queries_per_client, half, 0.02, 71 ^ client as u64)
        })
        .collect();
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let executor = build_typed_executor(domains::float_data(DISTS[i], params.rows, half, 73));
        let start = Instant::now();
        let report = black_box(serve_typed(&executor, &float_streams));
        (start.elapsed(), report.latency)
    });

    let ids = DISTS
        .iter()
        .map(|d| format!("engine_throughput/string/serve_4_shards/{d}"))
        .collect();
    let string_streams: Vec<Vec<Vec<(String, String)>>> = DISTS
        .iter()
        .map(|&dist| {
            (0..CLIENT_THREADS)
                .map(|client| {
                    domains::string_ranges(dist, params.queries_per_client, 79 ^ client as u64)
                })
                .collect()
        })
        .collect();
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let executor = build_typed_executor(domains::string_data(DISTS[i], params.rows, 83));
        let start = Instant::now();
        let report = black_box(serve_typed(&executor, &string_streams[i]));
        (start.elapsed(), report.latency)
    });
}

/// Multi-column serving. Two sub-groups, single-client like `mixed` (so
/// `queries_per_second` is conjunctions- or grouped-queries-per-second;
/// compare `multicolumn` entries only against each other):
///
/// * `conjunctions` — the skewed-selectivity sweep: every conjunction
///   pairs a ~90%-selective predicate on column `a` with a
///   ~0.1%-selective predicate on column `b`. The `planned`
///   configuration lets the planner pick the driving column (it drives
///   `b`); `first_predicate` is the always-scan-first-column baseline
///   that drives `a` and validates ~900× the survivors. The planner
///   must beat the baseline here — that is the acceptance gate for the
///   planning layer.
/// * `grouped` — `SUM/COUNT/MIN/MAX GROUP BY bucket` over the sub-shard
///   digest trees: `fresh` rebuilds a table (and thus every per-shard
///   tree) each sample, `cached` re-serves the same queries from a
///   warmed aggregate cache whose mutation stamps are still current.
fn bench_multicolumn(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    const MODES: [(&str, PlanMode); 2] = [
        ("planned", PlanMode::Planned),
        ("first_predicate", PlanMode::FirstPredicate),
    ];
    let domain = params.rows as u64;
    let columns = multicol::u64_columns(2, params.rows, domain, 89);
    let conjunctions =
        multicol::conjunction_ranges(&[0.9, 0.001], domain, params.queries_per_client, 91);
    let build = || {
        Arc::new(
            MultiTable::builder()
                .column(
                    MultiColumnSpec::new("a", ErasedColumn::U64(columns[0].clone())).with_shards(4),
                )
                .column(
                    MultiColumnSpec::new("b", ErasedColumn::U64(columns[1].clone())).with_shards(4),
                )
                .build(),
        )
    };
    let config = ExecutorConfig {
        maintenance_steps: 2,
        ..ExecutorConfig::default()
    };
    let ids = MODES
        .iter()
        .map(|(name, _)| format!("engine_throughput/multicolumn/conjunctions/{name}"))
        .collect();
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        // Fresh table per sample: both configurations pay the same cold
        // start, and the planner's ρ input starts from the same state.
        let executor = MultiExecutor::with_config(build(), config).with_mode(MODES[i].1);
        let mut latencies = Vec::new();
        let start = Instant::now();
        for conj in &conjunctions {
            let submitted = Instant::now();
            let predicates = [
                Predicate::between_u64("a", conj[0].0, conj[0].1),
                Predicate::between_u64("b", conj[1].0, conj[1].1),
            ];
            black_box(executor.execute(&predicates).expect("known columns"));
            latencies.push(submitted.elapsed());
        }
        (start.elapsed(), LatencyPercentiles::from_samples(latencies))
    });

    const GROUPED: [&str; 2] = ["fresh", "cached"];
    let width = (domain / 64).max(1);
    let grouped_queries: Vec<GroupedQuery> =
        multicol::conjunction_ranges(&[0.5], domain, params.queries_per_client, 93)
            .into_iter()
            .map(|conj| {
                GroupedQuery::new(
                    "a",
                    ErasedKey::U64(conj[0].0),
                    ErasedKey::U64(conj[0].1),
                    width,
                )
            })
            .collect();
    let ids = GROUPED
        .iter()
        .map(|name| format!("engine_throughput/multicolumn/grouped/{name}"))
        .collect();
    let warmed = MultiExecutor::with_config(build(), config);
    for query in &grouped_queries {
        black_box(warmed.grouped(query).expect("known column"));
    }
    paired_rounds(c, latency_out, ids, params.rounds, |i| {
        let fresh;
        let executor = if GROUPED[i] == "fresh" {
            fresh = MultiExecutor::with_config(build(), config);
            &fresh
        } else {
            &warmed
        };
        let mut latencies = Vec::new();
        let start = Instant::now();
        for query in &grouped_queries {
            let submitted = Instant::now();
            black_box(executor.grouped(query).expect("known column"));
            latencies.push(submitted.elapsed());
        }
        (start.elapsed(), LatencyPercentiles::from_samples(latencies))
    });
}

/// One **instrumented** pass of the skewed-string configuration: a fresh
/// `MetricsRegistry` is wired through table, executor and pool, and the
/// engine's own convergence / phase metrics are sampled after every
/// batch. Returns the `string_skewed_convergence` JSON object embedded
/// in `BENCH_engine.json`: the ρ̄-vs-queries-served time series (how fast
/// the progressive index converges under serving load), the per-phase
/// latency breakdown (decompose / scan / merge / maintain), tie-break
/// pressure and the cost model's prediction error. Runs outside the
/// paired throughput rounds, so the instrumented sampling never skews
/// the headline numbers. Refinement is purely query-driven here (fine
/// δ, no maintenance): with the throughput groups' δ=0.25 the index
/// converges before the first sample and the series is a flat 1.0.
fn convergence_trace(params: BenchParams) -> String {
    let registry = Arc::new(MetricsRegistry::new());
    let table = Arc::new(
        TypedTable::builder()
            .metrics(Arc::clone(&registry))
            .column(
                TypedColumnSpec::new(
                    "a",
                    domains::string_data(Distribution::Skewed, params.rows, 83),
                )
                .with_shards(4)
                .with_policy(BudgetPolicy::FixedDelta(0.002)),
            )
            .build(),
    );
    let executor = TypedExecutor::with_metrics(
        table,
        ExecutorConfig {
            maintenance_steps: 0,
            background_maintenance: false,
            ..ExecutorConfig::default()
        },
        Arc::clone(&registry),
    );
    let stream = domains::string_ranges(Distribution::Skewed, params.queries_per_run(), 79);
    let mut points = Vec::new();
    for chunk in stream.chunks(10) {
        let batch: Vec<TypedQuery<String>> = chunk
            .iter()
            .map(|(low, high)| TypedQuery::new("a", low.clone(), high.clone()))
            .collect();
        black_box(executor.execute_batch(&batch).expect("known column"));
        let snap = registry.snapshot();
        let shards = snap.gauges_with_prefix("engine.rho.a.").count().max(1);
        let rho_sum: f64 = snap
            .gauges_with_prefix("engine.rho.a.")
            .map(|(_, v)| v)
            .sum();
        points.push(format!(
            "[{}, {:.4}]",
            snap.counter("executor.queries").unwrap_or(0),
            rho_sum / shards as f64
        ));
    }
    let snap = registry.snapshot();
    let phases: Vec<String> = ["decompose", "scan", "merge", "maintain"]
        .iter()
        .map(|phase| {
            let h = snap
                .histogram(&format!("executor.phase.{phase}_ns"))
                .cloned()
                .unwrap_or_default();
            format!(
                "\"{phase}\": {{\"count\": {}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
                 \"p99_us\": {:.1}}}",
                h.count,
                h.p50() as f64 / 1e3,
                h.p95() as f64 / 1e3,
                h.p99() as f64 / 1e3
            )
        })
        .collect();
    let cost_error = snap
        .histogram("core.a.cost_error_pm")
        .cloned()
        .unwrap_or_default();
    format!(
        "{{\n    \"rho_vs_queries\": [{}],\n    \"phases\": {{{}}},\n    \
         \"tie_break_hits\": {},\n    \"cost_error_pm_mean\": {:.1}\n  }}",
        points.join(", "),
        phases.join(", "),
        snap.counter("engine.tie_break_hits").unwrap_or(0),
        cost_error.mean()
    )
}

/// Per-kernel microbenchmarks for the tuned refinement kernels
/// (`pi_core::kernels`), paired tuned-vs-scalar like every other group:
///
/// * `kernel_scatter` — 8-wide unrolled two-pass scatter
///   ([`pi_core::kernels::ScatterScratch`]) vs the checked
///   `Vec<Vec<_>>`-groups reference (`scatter_scalar`).
/// * `kernel_histogram` — byte-digit counting at unroll 8 vs unroll 1,
///   plus the pooled per-chunk variant
///   ([`pi_sched::par_chunk_counts`]) the engine's distribution
///   estimator uses above the parallel-count threshold.
/// * `kernel_cycle_swap` — ska-style in-place byte-radix sort
///   (`ska_sort_by_level`) vs `slice::sort_unstable`.
/// * `kernel_refine_step` — end to end: a progressive Radixsort (LSD)
///   index driven from creation to convergence with tuned vs scalar
///   kernels (`TuningParameters::scalar`). This is the number the
///   performance model in `docs/PERFORMANCE.md` is judged by.
fn bench_kernels(
    c: &Criterion,
    latency_out: &mut Vec<(String, LatencySummary)>,
    params: BenchParams,
) {
    use pi_core::kernels::{self, ScatterScratch};
    use pi_core::{Algorithm, CostConstants, TuningParameters};
    use pi_storage::Column;

    let values = data::generate(Distribution::UniformRandom, params.rows, 57);
    let digit = |v: u64| (v >> 56) as u8;
    let no_latency = LatencyPercentiles::default;

    // Scatter: tuned unrolled two-pass vs checked scalar groups.
    {
        let ids = ["tuned", "scalar"]
            .iter()
            .map(|p| format!("engine_throughput/kernel_scatter/{p}"))
            .collect();
        let mut scratch = ScatterScratch::new();
        paired_rounds(c, latency_out, ids, params.rounds, |i| {
            let start = Instant::now();
            if i == 0 {
                let (grouped, offsets) = scratch.scatter(&values, 256, 8, &digit);
                black_box((grouped.len(), offsets[256]));
            } else {
                let (grouped, offsets) = kernels::scatter_scalar(&values, 256, &digit);
                black_box((grouped.len(), offsets[256]));
            }
            (start.elapsed(), no_latency())
        });
    }

    // Histogram: unroll 8 vs unroll 1 vs pooled per-chunk counting.
    {
        let ids = ["unroll8", "unroll1", "pooled"]
            .iter()
            .map(|p| format!("engine_throughput/kernel_histogram/{p}"))
            .collect();
        let pool = pi_sched::Pool::new(4);
        paired_rounds(c, latency_out, ids, params.rounds, |i| {
            let start = Instant::now();
            let counts = match i {
                0 => kernels::histogram(&values, 8, &digit),
                1 => kernels::histogram(&values, 1, &digit),
                _ => pi_sched::par_chunk_counts(&pool, &values, &digit),
            };
            black_box(counts[0]);
            (start.elapsed(), no_latency())
        });
    }

    // In-place byte-radix sort vs the standard comparison sort.
    {
        let ids = ["ska", "std_sort"]
            .iter()
            .map(|p| format!("engine_throughput/kernel_cycle_swap/{p}"))
            .collect();
        paired_rounds(c, latency_out, ids, params.rounds, |i| {
            let mut data = values.clone();
            let start = Instant::now();
            if i == 0 {
                let threshold = TuningParameters::default().comparison_sort_threshold;
                kernels::ska_sort_by_level(&mut data, 7, threshold);
            } else {
                data.sort_unstable();
            }
            black_box(data[0]);
            (start.elapsed(), no_latency())
        });
    }

    // End-to-end refinement: drive an LSD index to convergence.
    {
        let ids = ["tuned", "scalar"]
            .iter()
            .map(|p| format!("engine_throughput/kernel_refine_step/{p}"))
            .collect();
        let tunings = [TuningParameters::default(), TuningParameters::scalar()];
        let column = Arc::new(Column::from_vec(values.clone()));
        let point = column.min();
        paired_rounds(c, latency_out, ids, params.rounds, |i| {
            let mut index = Algorithm::RadixsortLsd.build_tuned(
                Arc::clone(&column),
                BudgetPolicy::FixedDelta(0.25),
                CostConstants::synthetic(),
                tunings[i],
            );
            // Drive through the creation phase (identical per-element
            // routing in both modes) outside the timer, then time the
            // refinement + merging phases — the passes the tuned kernels
            // rewrite. Point queries keep the answering scan down to two
            // buckets, so the measurement is dominated by the budgeted
            // indexing work.
            let mut guard = 0usize;
            while index.status().phase == pi_core::Phase::Creation {
                black_box(index.query(point, point));
                guard += 1;
                assert!(guard < 10_000, "creation did not finish");
            }
            let start = Instant::now();
            while index.status().phase == pi_core::Phase::Refinement {
                black_box(index.query(point, point));
                guard += 1;
                assert!(guard < 10_000, "refinement did not finish");
            }
            (start.elapsed(), no_latency())
        });
    }
}

/// Renders the results as `BENCH_engine.json`: queries/s per benchmark,
/// grouped the way the ids are (`shards`, `delta`, `converged`, `server`,
/// `mixed`, `float`, `string`). `queries_per_second` comes from the
/// **median** paired round
/// (see [`Paired`]); the fastest round rides along as
/// `min_seconds_per_iter`, and each entry reports the median round's
/// per-batch latency percentiles in microseconds (`p50_us`/`p95_us`/
/// `p99_us`). A separate instrumented pass contributes the
/// `string_skewed_convergence` object (see [`convergence_trace`]).
fn write_json(
    c: &Criterion,
    latency: &[(String, LatencySummary)],
    params: BenchParams,
    trace: &str,
) {
    let queries = params.queries_per_run() as f64;
    let mut entries = String::new();
    for (i, result) in c.results().iter().enumerate() {
        let qps = queries / result.seconds_per_iter;
        // `engine_throughput/<group>/serve[.../]<param>` → group + param.
        let mut parts = result.id.split('/');
        let _prefix = parts.next();
        let group = parts.next().unwrap_or("unknown");
        let param = parts.next_back().unwrap_or("?");
        let l = latency
            .iter()
            .find(|(id, _)| *id == result.id)
            .map(|&(_, l)| l)
            .unwrap_or_default();
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"group\": \"{group}\", \"param\": \"{param}\", \
             \"queries_per_second\": {qps:.1}, \
             \"median_seconds_per_iter\": {:.6}, \
             \"min_seconds_per_iter\": {:.6}, \"iterations\": {}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
            result.seconds_per_iter,
            result.min_seconds_per_iter,
            result.iterations,
            l.p50_us,
            l.p95_us,
            l.p99_us
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"rows\": {},\n  \
         \"clients\": {CLIENT_THREADS},\n  \"queries_per_client\": {},\n  \
         \"results\": [\n{entries}\n  ],\n  \
         \"string_skewed_convergence\": {trace}\n}}\n",
        params.rows, params.queries_per_client
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, json).expect("failed to write BENCH_engine.json");
    println!("\nwrote {path}");
}

fn main() {
    let params = BenchParams::from_env();
    let c = Criterion::default();
    let mut latency: Vec<(String, LatencySummary)> = Vec::new();
    bench_shard_scaling(&c, &mut latency, params);
    bench_budget_impact(&c, &mut latency, params);
    bench_converged_serving(&c, &mut latency, params);
    bench_server_front_end(&c, &mut latency, params);
    bench_mixed_workload(&c, &mut latency, params);
    bench_durability_overhead(&c, &mut latency, params);
    bench_recovery_time(&c, &mut latency, params);
    bench_typed_domains(&c, &mut latency, params);
    bench_multicolumn(&c, &mut latency, params);
    bench_kernels(&c, &mut latency, params);
    // The instrumented convergence pass runs in both modes (smoke keeps
    // the code path exercised) but only full runs persist it.
    let trace = convergence_trace(params);
    if params.smoke {
        println!("\nsmoke iteration complete ({} results)", c.results().len());
    } else {
        write_json(&c, &latency, params, &trace);
    }
}
