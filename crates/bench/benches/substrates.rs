//! Micro-benchmarks of the storage and indexing substrates: predicated vs
//! branching scans, cracking kernels, bucket appends, binary search and
//! B+-tree lookups. These are the building blocks whose costs the paper's
//! cost models (Table 1) parameterise.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pi_bench::BENCH_SCALE;
use pi_core::buckets::{BucketSet, DEFAULT_BLOCK_CAPACITY, DEFAULT_BUCKET_COUNT};
use pi_cracking::crack::crack_in_two;
use pi_storage::{scan, sorted, StaticBTree};
use pi_workloads::data;

fn bench_scans(c: &mut Criterion) {
    let n = BENCH_SCALE.column_size;
    let values = data::uniform_random(n, 1);
    let mut group = c.benchmark_group("scan");
    group.bench_function(BenchmarkId::new("predicated", n), |b| {
        b.iter(|| scan::scan_range_sum(black_box(&values), n as u64 / 4, n as u64 / 2))
    });
    group.bench_function(BenchmarkId::new("branching", n), |b| {
        b.iter(|| scan::scan_range_sum_branching(black_box(&values), n as u64 / 4, n as u64 / 2))
    });
    group.finish();
}

fn bench_crack_kernel(c: &mut Criterion) {
    let n = BENCH_SCALE.column_size;
    let values = data::uniform_random(n, 2);
    let mut group = c.benchmark_group("crack_in_two");
    group.bench_function(BenchmarkId::new("full_column", n), |b| {
        b.iter_batched(
            || values.clone(),
            |mut data| {
                let r = crack_in_two(&mut data, 0, n, n as u64 / 2);
                black_box(r.split)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_bucket_append(c: &mut Criterion) {
    let n = BENCH_SCALE.column_size;
    let values = data::uniform_random(n, 3);
    let shift = 64 - (DEFAULT_BUCKET_COUNT as u64).trailing_zeros();
    let mut group = c.benchmark_group("bucket_append");
    group.bench_function(BenchmarkId::new("radix_msd", n), |b| {
        b.iter(|| {
            let mut buckets = BucketSet::new(DEFAULT_BUCKET_COUNT, DEFAULT_BLOCK_CAPACITY);
            for &v in &values {
                // Bucket by the most significant bits of the value within
                // the 0..n domain (values fit in the low bits, so scale
                // them up first to exercise the real code path).
                let scaled = v << (64 - 17 - 1);
                buckets.push((scaled >> shift) as usize % DEFAULT_BUCKET_COUNT, v);
            }
            black_box(buckets.len())
        })
    });
    group.finish();
}

fn bench_lookup_structures(c: &mut Criterion) {
    let n = BENCH_SCALE.column_size;
    let mut sorted_values = data::uniform_random(n, 4);
    sorted_values.sort_unstable();
    let tree = StaticBTree::build_default(&sorted_values);
    let keys: Vec<u64> = (0..1_000u64).map(|i| i * (n as u64 / 1_000)).collect();

    let mut group = c.benchmark_group("point_lookup");
    group.bench_function(BenchmarkId::new("binary_search", n), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &k in &keys {
                acc += sorted::lower_bound(black_box(&sorted_values), k);
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("btree", n), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &k in &keys {
                acc += tree.lower_bound(black_box(&sorted_values), k);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_secs(1)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_scans, bench_crack_kernel, bench_bucket_append, bench_lookup_structures
);
criterion_main!(benches);
