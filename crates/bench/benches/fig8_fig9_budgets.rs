//! Figures 8 and 9 as a benchmark: the SkyServer workload under the fixed
//! indexing budget (δ = 0.25, Figure 8) versus the adaptive indexing
//! budget (t_budget = 0.2 · t_scan, Figure 9) for each progressive
//! algorithm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pi_bench::{run_full_workload, skyserver_workload};
use pi_core::budget::BudgetPolicy;
use pi_core::cost_model::{CostConstants, CostModel};
use pi_experiments::AlgorithmId;

fn bench_budget_modes(c: &mut Criterion) {
    let workload = skyserver_workload();
    let model = CostModel::new(CostConstants::synthetic(), workload.column.len());
    let modes = [
        ("fixed_delta_0.25", BudgetPolicy::FixedDelta(0.25)),
        (
            "adaptive_0.2_tscan",
            BudgetPolicy::adaptive_scan_fraction(&model, 0.2),
        ),
    ];
    let mut group = c.benchmark_group("fig8_fig9_budgets");
    for (label, policy) in modes {
        for algorithm in AlgorithmId::PROGRESSIVE {
            group.bench_function(BenchmarkId::new(algorithm.label(), label), |b| {
                b.iter(|| black_box(run_full_workload(algorithm, &workload, policy)))
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_secs(1)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_budget_modes
);
criterion_main!(benches);
