//! Figure 7 as a benchmark: total time of the SkyServer workload for the
//! four progressive algorithms under different fixed δ values. The paper's
//! finding — cumulative time drops as δ grows and flattens out well before
//! δ = 1 — shows up as the relative timings of the δ groups.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pi_bench::{run_full_workload, skyserver_workload};
use pi_core::budget::BudgetPolicy;
use pi_experiments::AlgorithmId;

fn bench_delta_impact(c: &mut Criterion) {
    let workload = skyserver_workload();
    let mut group = c.benchmark_group("fig7_delta_impact");
    for &delta in &[0.05, 0.25, 1.0] {
        for algorithm in AlgorithmId::PROGRESSIVE {
            group.bench_function(
                BenchmarkId::new(algorithm.label(), format!("delta_{delta}")),
                |b| {
                    b.iter(|| {
                        black_box(run_full_workload(
                            algorithm,
                            &workload,
                            BudgetPolicy::FixedDelta(delta),
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_secs(1)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_delta_impact
);
criterion_main!(benches);
