//! Table 2 / Figure 10 as a benchmark: total SkyServer workload time for
//! every technique — full scan, full index, the cracking family and the
//! four progressive indexes. The paper's ordering (FS slowest overall, FI
//! fastest overall, progressive techniques between the adaptive family
//! and FI) shows up directly in the group's relative timings.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pi_bench::{run_full_workload, skyserver_workload};
use pi_core::budget::BudgetPolicy;
use pi_experiments::AlgorithmId;

fn bench_skyserver_comparison(c: &mut Criterion) {
    let workload = skyserver_workload();
    // The progressive techniques use the paper's adaptive budget of
    // 0.2 · t_scan; baselines ignore the policy.
    let model = pi_core::cost_model::CostModel::new(
        pi_core::cost_model::CostConstants::synthetic(),
        workload.column.len(),
    );
    let policy = BudgetPolicy::adaptive_scan_fraction(&model, 0.2);
    let mut group = c.benchmark_group("table2_fig10_skyserver");
    for algorithm in AlgorithmId::ALL {
        group.bench_function(BenchmarkId::new("workload", algorithm.label()), |b| {
            b.iter(|| black_box(run_full_workload(algorithm, &workload, policy)))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_secs(1)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_skyserver_comparison
);
criterion_main!(benches);
