//! Benchmarks of the data-set and workload generators (the inputs to
//! Figures 5 and 6): uniform and skewed column generation, the eight
//! synthetic query patterns and the SkyServer-substitute generator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use pi_bench::BENCH_SCALE;
use pi_workloads::skyserver::{self, SkyServerConfig};
use pi_workloads::{data, patterns, Distribution, Pattern, WorkloadSpec};

fn bench_data_generation(c: &mut Criterion) {
    let n = BENCH_SCALE.column_size;
    let mut group = c.benchmark_group("data_generation");
    for distribution in [Distribution::UniformRandom, Distribution::Skewed] {
        group.bench_function(BenchmarkId::new(distribution.label(), n), |b| {
            b.iter(|| black_box(data::generate(distribution, n, 42)))
        });
    }
    group.finish();
}

fn bench_pattern_generation(c: &mut Criterion) {
    let spec = WorkloadSpec::range(BENCH_SCALE.column_size as u64, 10_000);
    let mut group = c.benchmark_group("pattern_generation");
    for pattern in Pattern::ALL {
        group.bench_function(BenchmarkId::new(pattern.label(), 10_000usize), |b| {
            b.iter(|| black_box(patterns::generate(pattern, &spec)))
        });
    }
    group.finish();
}

fn bench_skyserver_generation(c: &mut Criterion) {
    let config = SkyServerConfig::scaled(BENCH_SCALE.column_size, BENCH_SCALE.query_count);
    c.bench_function("skyserver_generation", |b| {
        b.iter(|| black_box(skyserver::generate(config)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_secs(1)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_data_generation, bench_pattern_generation, bench_skyserver_generation
);
criterion_main!(benches);
