//! Binary-search primitives over sorted runs.
//!
//! Once a progressive index reaches (parts of) a sorted representation —
//! sorted leaf nodes in Progressive Quicksort's refinement phase, merged
//! bucket ranges in Radixsort/Bucketsort, or the final fully sorted array —
//! range queries are answered by locating the qualifying run with two
//! binary searches and summing it. The paper models this lookup cost as
//! `h * φ` (tree height times random-access cost); the branchless searches
//! here keep that cost stable across data distributions.

use crate::column::Value;
use crate::scan::{sum_positions, ScanResult};

/// Index of the first element in the sorted slice `data` that is `>= key`
/// (i.e. the lower bound / `leftmost insertion point`).
///
/// Implemented as a branchless binary search: each step halves the search
/// window using a conditional move rather than a branch, so the cost is a
/// deterministic `ceil(log2(len))` iterations.
#[inline]
pub fn lower_bound(data: &[Value], key: Value) -> usize {
    // Invariant: the answer lies in the closed window [base, base + size].
    let mut base = 0usize;
    let mut size = data.len();
    while size > 1 {
        let half = size / 2;
        // Branchless select: advance the window only when the probe is
        // smaller than the key.
        base += ((data[base + half - 1] < key) as usize) * half;
        size -= half;
    }
    if size == 1 && data[base] < key {
        base += 1;
    }
    base
}

/// Index of the first element in the sorted slice `data` that is `> key`
/// (i.e. the upper bound / `rightmost insertion point`).
#[inline]
pub fn upper_bound(data: &[Value], key: Value) -> usize {
    let mut base = 0usize;
    let mut size = data.len();
    while size > 1 {
        let half = size / 2;
        base += ((data[base + half - 1] <= key) as usize) * half;
        size -= half;
    }
    if size == 1 && data[base] <= key {
        base += 1;
    }
    base
}

/// Half-open position range `[start, end)` of values in `[low, high]`
/// within the sorted slice `data`.
#[inline]
pub fn equal_range(data: &[Value], low: Value, high: Value) -> (usize, usize) {
    if low > high {
        return (0, 0);
    }
    let start = lower_bound(data, low);
    let end = upper_bound(data, high);
    (start, end.max(start))
}

/// Answers a range-sum query over a fully sorted slice: two binary searches
/// followed by a sequential sum of the qualifying run.
#[inline]
pub fn sorted_range_sum(data: &[Value], low: Value, high: Value) -> ScanResult {
    let (start, end) = equal_range(data, low, high);
    sum_positions(data, start, end)
}

/// Returns `true` when `data` is sorted in non-decreasing order.
/// Used throughout the test-suites and by debug assertions at phase
/// transitions (refinement → consolidation).
pub fn is_sorted(data: &[Value]) -> bool {
    data.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_range_sum;

    #[test]
    fn lower_upper_bound_basic() {
        let data = vec![1, 3, 3, 5, 7, 9];
        assert_eq!(lower_bound(&data, 0), 0);
        assert_eq!(lower_bound(&data, 3), 1);
        assert_eq!(upper_bound(&data, 3), 3);
        assert_eq!(lower_bound(&data, 4), 3);
        assert_eq!(upper_bound(&data, 9), 6);
        assert_eq!(lower_bound(&data, 10), 6);
    }

    #[test]
    fn bounds_match_std_partition_point() {
        let data: Vec<Value> = (0..1000).map(|i| (i * 7) % 97).collect::<Vec<_>>();
        let mut data = data;
        data.sort_unstable();
        for key in 0..100 {
            assert_eq!(
                lower_bound(&data, key),
                data.partition_point(|&v| v < key),
                "lower_bound mismatch at {key}"
            );
            assert_eq!(
                upper_bound(&data, key),
                data.partition_point(|&v| v <= key),
                "upper_bound mismatch at {key}"
            );
        }
    }

    #[test]
    fn bounds_on_empty_slice() {
        assert_eq!(lower_bound(&[], 5), 0);
        assert_eq!(upper_bound(&[], 5), 0);
        assert_eq!(equal_range(&[], 1, 10), (0, 0));
    }

    #[test]
    fn equal_range_inverted_predicate() {
        let data = vec![1, 2, 3];
        assert_eq!(equal_range(&data, 5, 2), (0, 0));
    }

    #[test]
    fn sorted_range_sum_matches_scan() {
        let mut data: Vec<Value> = vec![6, 3, 14, 13, 2, 1, 8, 19, 7, 12, 11, 4, 16, 9];
        let unsorted = data.clone();
        data.sort_unstable();
        for (lo, hi) in [(0, 20), (5, 10), (13, 13), (21, 40), (0, 1)] {
            assert_eq!(
                sorted_range_sum(&data, lo, hi),
                scan_range_sum(&unsorted, lo, hi),
                "mismatch for [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn sorted_range_sum_with_duplicates() {
        let data = vec![2, 2, 2, 5, 5, 9];
        let r = sorted_range_sum(&data, 2, 5);
        assert_eq!(r.count, 5);
        assert_eq!(r.sum, 2 * 3 + 5 * 2);
    }

    #[test]
    fn is_sorted_detects_order() {
        assert!(is_sorted(&[]));
        assert!(is_sorted(&[1]));
        assert!(is_sorted(&[1, 1, 2, 3]));
        assert!(!is_sorted(&[2, 1]));
    }
}
