//! Byte-level snapshot codec for storage state: [`Column`]s and
//! [`DeltaSidecar`]s encoded into flat, versionless byte runs.
//!
//! The durability layer (`pi-durable`) persists a sharded column as the
//! pair the mutable-index model already maintains — the immutable base
//! snapshot plus the pending-delta sidecar ("log the delta, snapshot the
//! merged base"). This module owns the encoding of exactly those two
//! storage primitives; framing, checksums, versioning and the composition
//! into whole-table snapshots live one layer up, next to the write-ahead
//! log that shares them.
//!
//! The format is deliberately plain: little-endian fixed-width integers,
//! length-prefixed runs, no compression. Decoding is bounds-checked and
//! returns [`CodecError`] instead of panicking, so a corrupted byte run —
//! which an upper layer's checksum should already have rejected — can
//! never take the process down.

use crate::column::{Column, Value};
use crate::delta::DeltaSidecar;

/// Decoding failure: the byte run does not describe a valid value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the announced structure was complete.
    Truncated,
    /// A structural invariant did not hold (e.g. an unsorted sidecar run
    /// or an unknown tag byte).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "byte run truncated"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed (`u64` count) run of values.
pub fn put_values(out: &mut Vec<u8>, values: &[Value]) {
    put_u64(out, values.len() as u64);
    for &v in values {
        put_u64(out, v);
    }
}

/// Appends a length-prefixed (`u32` byte count) UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over an encoded byte run.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Consumes a length-prefixed run of values (see [`put_values`]).
    pub fn values(&mut self) -> Result<Vec<Value>, CodecError> {
        let count = self.u64()? as usize;
        // Each value takes 8 bytes; an announced count beyond the
        // remaining bytes is corruption, caught before any allocation.
        if self.remaining() / 8 < count {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Consumes a length-prefixed UTF-8 string (see [`put_str`]).
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("non-UTF-8 string"))
    }
}

/// Encodes a [`Column`] (its values only; `min`/`max` are recomputed on
/// decode, so a snapshot can never carry statistics that disagree with
/// its data).
pub fn put_column(out: &mut Vec<u8>, column: &Column) {
    put_values(out, column.data());
}

/// Decodes a [`Column`] written by [`put_column`].
pub fn read_column(r: &mut ByteReader<'_>) -> Result<Column, CodecError> {
    Ok(Column::from_vec(r.values()?))
}

/// Encodes a [`DeltaSidecar`] (its two sorted multisets).
pub fn put_sidecar(out: &mut Vec<u8>, sidecar: &DeltaSidecar) {
    put_values(out, sidecar.inserts());
    put_values(out, sidecar.tombstones());
}

/// Decodes a [`DeltaSidecar`] written by [`put_sidecar`], re-validating
/// the sortedness invariant of both multisets.
pub fn read_sidecar(r: &mut ByteReader<'_>) -> Result<DeltaSidecar, CodecError> {
    let inserts = r.values()?;
    let tombstones = r.values()?;
    DeltaSidecar::from_sorted_parts(inserts, tombstones)
        .ok_or(CodecError::Invalid("unsorted sidecar run"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_round_trips_with_statistics() {
        for data in [vec![], vec![42], vec![9, 1, 5, 1]] {
            let column = Column::from_vec(data);
            let mut out = Vec::new();
            put_column(&mut out, &column);
            let mut r = ByteReader::new(&out);
            let decoded = read_column(&mut r).unwrap();
            assert_eq!(decoded, column);
            assert_eq!(decoded.min(), column.min());
            assert_eq!(decoded.max(), column.max());
            assert!(r.is_empty());
        }
    }

    #[test]
    fn sidecar_round_trips() {
        let mut s = DeltaSidecar::new();
        for v in [5, 3, 3, 9] {
            s.insert(v);
        }
        s.add_tombstone(7);
        let mut out = Vec::new();
        put_sidecar(&mut out, &s);
        let decoded = read_sidecar(&mut ByteReader::new(&out)).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut out = Vec::new();
        put_values(&mut out, &[1, 2, 3]);
        for cut in 0..out.len() {
            let mut r = ByteReader::new(&out[..cut]);
            assert_eq!(r.values(), Err(CodecError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_count_is_caught_before_allocation() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX); // announces 2^64-1 values
        let mut r = ByteReader::new(&out);
        assert_eq!(r.values(), Err(CodecError::Truncated));
    }

    #[test]
    fn unsorted_sidecar_is_rejected() {
        let mut out = Vec::new();
        put_values(&mut out, &[5, 1]); // descending inserts
        put_values(&mut out, &[]);
        assert!(matches!(
            read_sidecar(&mut ByteReader::new(&out)),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        let mut out = Vec::new();
        put_str(&mut out, "right ascension");
        let mut r = ByteReader::new(&out);
        assert_eq!(r.str().unwrap(), "right ascension");
        let bad = [2, 0, 0, 0, 0xFF, 0xFE];
        assert!(matches!(
            ByteReader::new(&bad).str(),
            Err(CodecError::Invalid(_))
        ));
    }
}
