//! In-memory column of fixed-width integer values.
//!
//! The paper's experiments run range aggregations of the form
//! `SELECT SUM(R.A) FROM R WHERE R.A BETWEEN V1 AND V2` over a single
//! attribute stored column-wise. [`Column`] is that attribute: a flat,
//! immutable `Vec<u64>` plus cached `min`/`max` statistics that the
//! progressive indexes need for pivot selection (Progressive Quicksort),
//! radix range computation (Radixsort LSD/MSD) and bucket-bound sampling
//! (Bucketsort).

/// The element type stored in a [`Column`].
///
/// The paper evaluates on 8-byte integers; using a concrete alias keeps the
/// hot loops free of generic indirection while still making the intended
/// width explicit at every API boundary.
pub type Value = u64;

/// An immutable, in-memory column of [`Value`]s.
///
/// A `Column` is the *base table* from the paper: the progressive indexes
/// never modify it, they only read ever smaller suffixes of it while the
/// index under construction absorbs more and more of the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    data: Vec<Value>,
    min: Value,
    max: Value,
}

impl Column {
    /// Creates a column from a vector of values.
    ///
    /// Computes `min`/`max` eagerly with a single pass; an empty input
    /// yields the neutral elements of the `min`/`max` folds, `min ==
    /// Value::MAX` and `max == Value::MIN` (`0`). The inverted pair
    /// (`min > max`) can never satisfy a covered-range check, and every
    /// aggregate consumer must guard on emptiness (row count or
    /// [`Column::domain`] being `None`) rather than on the sentinels —
    /// the engine's shard digests do (see the empty-column regression
    /// tests in `pi-engine`).
    pub fn from_vec(data: Vec<Value>) -> Self {
        let mut min = Value::MAX;
        let mut max = Value::MIN;
        for &v in &data {
            min = min.min(v);
            max = max.max(v);
        }
        Self { data, min, max }
    }

    /// Creates a column from typed keys via their order-preserving
    /// encoding ([`crate::encoding::OrderedKey`]): the construction path
    /// of float / signed-integer / string-prefix columns. The stored
    /// values — and therefore `min`/`max`, shard boundaries and digests —
    /// live in the encoded domain.
    ///
    /// ```
    /// use pi_storage::encoding::OrderedKey;
    /// use pi_storage::Column;
    ///
    /// let col = Column::from_keys(&[-1.5f64, 2.0, -0.25]);
    /// assert_eq!(col.min(), (-1.5f64).encode());
    /// assert_eq!(col.max(), 2.0f64.encode());
    /// ```
    pub fn from_keys<K: crate::encoding::OrderedKey>(keys: &[K]) -> Self {
        Self::from_vec(crate::encoding::encode_keys(keys))
    }

    /// Number of rows in the column.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the column holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Smallest value stored in the column (`Value::MAX` when empty).
    #[inline]
    pub fn min(&self) -> Value {
        self.min
    }

    /// Largest value stored in the column (`0` when empty).
    #[inline]
    pub fn max(&self) -> Value {
        self.max
    }

    /// Borrow of the underlying values.
    #[inline]
    pub fn data(&self) -> &[Value] {
        &self.data
    }

    /// Value stored at `row`.
    ///
    /// # Panics
    /// Panics when `row >= self.len()`.
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        self.data[row]
    }

    /// Iterator over the values in row order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.data.iter().copied()
    }

    /// Consumes the column and returns the underlying vector.
    pub fn into_vec(self) -> Vec<Value> {
        self.data
    }

    /// The closed value domain `[min, max]` of the column, or `None` when
    /// the column is empty.
    pub fn domain(&self) -> Option<(Value, Value)> {
        if self.is_empty() {
            None
        } else {
            Some((self.min, self.max))
        }
    }

    /// Exact sum of all values, as used by full-scan sanity checks.
    pub fn total_sum(&self) -> u128 {
        self.data.iter().map(|&v| v as u128).sum()
    }
}

impl From<Vec<Value>> for Column {
    fn from(data: Vec<Value>) -> Self {
        Self::from_vec(data)
    }
}

impl<'a> IntoIterator for &'a Column {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_computes_min_max() {
        let c = Column::from_vec(vec![5, 1, 9, 3]);
        assert_eq!(c.min(), 1);
        assert_eq!(c.max(), 9);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn empty_column() {
        let c = Column::from_vec(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.domain(), None);
        assert_eq!(c.total_sum(), 0);
    }

    #[test]
    fn single_element_domain() {
        let c = Column::from_vec(vec![42]);
        assert_eq!(c.domain(), Some((42, 42)));
        assert_eq!(c.min(), 42);
        assert_eq!(c.max(), 42);
    }

    #[test]
    fn get_and_iter_agree() {
        let c = Column::from_vec(vec![7, 8, 9]);
        let collected: Vec<Value> = c.iter().collect();
        assert_eq!(collected, vec![7, 8, 9]);
        assert_eq!(c.get(1), 8);
    }

    #[test]
    fn total_sum_handles_large_values() {
        let c = Column::from_vec(vec![Value::MAX, Value::MAX]);
        assert_eq!(c.total_sum(), 2 * (Value::MAX as u128));
    }

    #[test]
    fn into_vec_round_trips() {
        let original = vec![3, 1, 4, 1, 5];
        let c = Column::from_vec(original.clone());
        assert_eq!(c.into_vec(), original);
    }

    #[test]
    fn from_trait_matches_from_vec() {
        let a: Column = vec![1, 2, 3].into();
        let b = Column::from_vec(vec![1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn ref_into_iterator() {
        let c = Column::from_vec(vec![1, 2, 3]);
        let s: Value = (&c).into_iter().sum();
        assert_eq!(s, 6);
    }
}
