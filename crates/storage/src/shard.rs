//! Value-range sharding of a column.
//!
//! The serving engine (`pi-engine`) splits every column into N independent
//! shards so that indexing work can proceed on all shards in parallel and a
//! range query only has to visit the shards whose value range overlaps the
//! predicate. This module owns the storage-level half of that design:
//! choosing shard boundaries and slicing a [`Column`] into per-shard
//! sub-columns.
//!
//! Boundaries are **equi-depth**: they are drawn from quantiles of a sample
//! of the data, so each shard receives roughly the same number of rows even
//! under heavy skew — the same reasoning the paper applies to Progressive
//! Bucketsort's equi-height bucket bounds.

use crate::column::{Column, Value};

/// Number of sample elements used to estimate quantile boundaries.
const BOUNDARY_SAMPLE: usize = 4096;

/// Deterministic pseudo-random sample (with replacement) of up to
/// `max_sample` elements of `values` — the whole input, in order, when it
/// already fits. Shared by the boundary-quantile estimation here and the
/// distribution estimation in `pi-engine`.
///
/// Positions come from a SplitMix64 stream rather than a fixed stride:
/// strided sampling aliases with periodic data (any cycle length dividing
/// the stride returns the same value over and over), which would collapse
/// equi-depth boundaries onto a single key.
pub fn sample_values(values: &[Value], max_sample: usize) -> Vec<Value> {
    if values.len() <= max_sample {
        return values.to_vec();
    }
    let len = values.len() as u64;
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    (0..max_sample)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            values[(z % len) as usize]
        })
        .collect()
}

/// An ordered partition of the value domain into contiguous shards.
///
/// A partition over N shards stores N−1 ascending split keys
/// `b_0 <= b_1 <= … <= b_{N-2}`; shard `i` owns the values `v` with
/// `b_{i-1} <= v < b_i` (shard 0 is unbounded below, shard N−1 unbounded
/// above). Splitting a column routes every row to exactly one shard and
/// preserves the rows' relative order within each shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartition {
    boundaries: Vec<Value>,
}

impl RangePartition {
    /// Builds an equi-depth partition into `shards` shards from (a sample
    /// of) `values`.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn equi_depth(values: &[Value], shards: usize) -> Self {
        assert!(shards > 0, "a partition needs at least one shard");
        if shards == 1 || values.is_empty() {
            return RangePartition {
                boundaries: vec![Value::MAX; shards.saturating_sub(1)],
            };
        }
        // Pseudo-random sample, sorted; quantiles become the split keys.
        let mut sample = sample_values(values, BOUNDARY_SAMPLE);
        sample.sort_unstable();
        let mut boundaries = Vec::with_capacity(shards - 1);
        for i in 1..shards {
            let pos = (i * sample.len() / shards).min(sample.len() - 1);
            boundaries.push(sample[pos]);
        }
        RangePartition { boundaries }
    }

    /// An explicit partition from ascending split keys (N−1 keys for N
    /// shards).
    ///
    /// # Panics
    /// Panics when the keys are not ascending.
    pub fn from_boundaries(boundaries: Vec<Value>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "shard boundaries must be ascending"
        );
        RangePartition { boundaries }
    }

    /// Number of shards this partition produces.
    pub fn shard_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The shard owning value `v`.
    pub fn shard_of(&self, v: Value) -> usize {
        // First boundary strictly greater than v; with duplicate split
        // keys every owner of that value lands after the last duplicate,
        // leaving the shards between the duplicates empty.
        self.boundaries.partition_point(|&b| b <= v)
    }

    /// The contiguous run of shard indices whose value range can contain
    /// values in `[low, high]` (inclusive; empty when `low > high`).
    pub fn overlapping(&self, low: Value, high: Value) -> std::ops::Range<usize> {
        if low > high {
            return 0..0;
        }
        self.shard_of(low)..self.shard_of(high) + 1
    }

    /// Routes every value to its shard, preserving relative order within
    /// each shard. Always returns exactly [`RangePartition::shard_count`]
    /// buckets; shards whose value range is empty come back empty.
    pub fn split_values(&self, values: &[Value]) -> Vec<Vec<Value>> {
        // Counting pass first: exact pre-sizing beats the reallocation
        // churn a per-bucket growth strategy pays under skew.
        let mut out: Vec<Vec<Value>> = self
            .bucket_sizes(values)
            .into_iter()
            .map(Vec::with_capacity)
            .collect();
        for &v in values {
            out[self.shard_of(v)].push(v);
        }
        out
    }

    /// Per-shard row counts for `values`, without materialising the
    /// buckets. This is the *task granularity* signal of the scheduler
    /// layer: the serving engine weights each shard task by its row count
    /// and pins shards to pool workers so every worker owns roughly the
    /// same number of rows, even when duplicate-heavy data skews the
    /// equi-depth split.
    pub fn bucket_sizes(&self, values: &[Value]) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shard_count()];
        for &v in values {
            sizes[self.shard_of(v)] += 1;
        }
        sizes
    }

    /// [`RangePartition::split_values`] yielding ready-made [`Column`]s
    /// with their min/max statistics computed.
    pub fn split_column(&self, column: &Column) -> Vec<Column> {
        self.split_values(column.data())
            .into_iter()
            .map(Column::from_vec)
            .collect()
    }

    /// The split keys (ascending, N−1 entries for N shards).
    pub fn boundaries(&self) -> &[Value] {
        &self.boundaries
    }

    /// The split keys decoded into a typed key domain
    /// ([`crate::encoding::OrderedKey`]). For a partition drawn over an
    /// encoded column the boundaries live in code space; this is the
    /// observability path back to the key domain (e.g. the float values
    /// an equi-depth partition of an `f64` column actually split at).
    pub fn boundaries_in<K: crate::encoding::OrderedKey>(&self) -> Vec<K> {
        crate::encoding::decode_codes(&self.boundaries)
    }

    /// Live-row weight drift of a sharded column: the heaviest shard's row
    /// count divided by the ideal equi-depth share (`total / shards`).
    ///
    /// `1.0` means perfectly balanced; a mutable column whose inserts and
    /// deletes concentrate in one value range drifts upwards over time.
    /// Callers re-balance (re-draw equi-depth boundaries from the live
    /// values and re-split) once the drift crosses an operational
    /// threshold — typically around `2.0`. Returns `1.0` for an empty
    /// column (nothing to balance).
    pub fn weight_drift(live_sizes: &[usize]) -> f64 {
        let total: usize = live_sizes.iter().sum();
        if total == 0 || live_sizes.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / live_sizes.len() as f64;
        let heaviest = *live_sizes.iter().max().expect("non-empty sizes") as f64;
        heaviest / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_values() -> Vec<Value> {
        // 90% of values in [450, 550), rest spread over [0, 1000).
        let mut v = Vec::new();
        for i in 0..900 {
            v.push(450 + (i % 100));
        }
        for i in 0..100 {
            v.push(i * 10);
        }
        v
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = RangePartition::equi_depth(&[3, 1, 2], 1);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(Value::MAX), 0);
        assert_eq!(p.overlapping(0, Value::MAX), 0..1);
    }

    #[test]
    fn split_is_a_partition_of_the_input() {
        let values: Vec<Value> = (0..10_000).rev().collect();
        let p = RangePartition::equi_depth(&values, 8);
        let buckets = p.split_values(&values);
        assert_eq!(buckets.len(), 8);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, values.len());
        let mut reunited: Vec<Value> = buckets.concat();
        reunited.sort_unstable();
        let mut expected = values.clone();
        expected.sort_unstable();
        assert_eq!(reunited, expected);
    }

    #[test]
    fn shards_hold_disjoint_ascending_value_ranges() {
        let values: Vec<Value> = (0..10_000).map(|i| (i * 37) % 10_000).collect();
        let p = RangePartition::equi_depth(&values, 4);
        let buckets = p.split_values(&values);
        for w in 0..buckets.len() - 1 {
            let left_max = buckets[w].iter().max().copied();
            let right_min = buckets[w + 1].iter().min().copied();
            if let (Some(l), Some(r)) = (left_max, right_min) {
                assert!(l < r, "shard {w} max {l} >= shard {} min {r}", w + 1);
            }
        }
    }

    #[test]
    fn equi_depth_balances_under_skew() {
        let values = skewed_values();
        let p = RangePartition::equi_depth(&values, 4);
        let buckets = p.split_values(&values);
        let largest = buckets.iter().map(Vec::len).max().unwrap();
        // A domain-uniform split would put >90% of rows into one shard;
        // equi-depth must do clearly better than that.
        assert!(
            largest < values.len() * 6 / 10,
            "largest shard holds {largest} of {} rows",
            values.len()
        );
    }

    #[test]
    fn periodic_data_does_not_alias_the_sample() {
        // values[i] = i % 10 with len/4096 == 10: a fixed-stride sample
        // would read position 0, 10, 20, … — all zeros — and collapse
        // every boundary onto 0.
        let values: Vec<Value> = (0..40_960).map(|i| i % 10).collect();
        let p = RangePartition::equi_depth(&values, 4);
        let buckets = p.split_values(&values);
        let largest = buckets.iter().map(Vec::len).max().unwrap();
        assert!(
            largest < values.len() * 6 / 10,
            "periodic data collapsed into one shard ({largest} of {} rows)",
            values.len()
        );
    }

    #[test]
    fn overlapping_respects_boundaries() {
        let p = RangePartition::from_boundaries(vec![100, 200, 300]);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.overlapping(0, 99), 0..1);
        assert_eq!(p.overlapping(100, 100), 1..2);
        assert_eq!(p.overlapping(150, 250), 1..3);
        assert_eq!(p.overlapping(0, 1_000), 0..4);
        assert_eq!(p.overlapping(10, 5), 0..0);
    }

    #[test]
    fn queries_only_need_overlapping_shards() {
        let values: Vec<Value> = (0..5_000).map(|i| (i * 13) % 5_000).collect();
        let p = RangePartition::equi_depth(&values, 8);
        let buckets = p.split_values(&values);
        for (low, high) in [(0, 100), (2_400, 2_600), (4_900, 4_999), (700, 700)] {
            let covered = p.overlapping(low, high);
            for (i, bucket) in buckets.iter().enumerate() {
                if !covered.contains(&i) {
                    assert!(
                        bucket.iter().all(|&v| v < low || v > high),
                        "shard {i} outside {covered:?} holds a qualifying value for [{low}, {high}]"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_sizes_match_split() {
        for (values, shards) in [
            (skewed_values(), 4),
            ((0..10_000).rev().collect::<Vec<Value>>(), 8),
            (vec![7; 500], 3),
            (vec![], 2),
        ] {
            let p = RangePartition::equi_depth(&values, shards);
            let sizes = p.bucket_sizes(&values);
            let buckets = p.split_values(&values);
            assert_eq!(sizes.len(), shards);
            assert_eq!(
                sizes,
                buckets.iter().map(Vec::len).collect::<Vec<_>>(),
                "{shards} shards over {} values",
                values.len()
            );
        }
    }

    #[test]
    fn split_column_keeps_statistics() {
        let column = Column::from_vec((0..1_000).collect());
        let p = RangePartition::equi_depth(column.data(), 4);
        let shards = p.split_column(&column);
        assert_eq!(shards.len(), 4);
        for shard in &shards {
            if !shard.is_empty() {
                assert!(shard.min() <= shard.max());
                assert!(shard.iter().all(|v| v >= shard.min() && v <= shard.max()));
            }
        }
    }

    #[test]
    fn weight_drift_signals_imbalance() {
        assert_eq!(RangePartition::weight_drift(&[]), 1.0);
        assert_eq!(RangePartition::weight_drift(&[0, 0, 0]), 1.0);
        assert!((RangePartition::weight_drift(&[100, 100, 100, 100]) - 1.0).abs() < 1e-12);
        // One shard holding half of all rows across 4 shards → drift 2.0.
        let drift = RangePartition::weight_drift(&[300, 100, 100, 100]);
        assert!((drift - 2.0).abs() < 1e-12, "drift {drift}");
        assert!(RangePartition::weight_drift(&[1000, 0, 0, 0]) > 3.9);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = RangePartition::equi_depth(&[1, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn descending_boundaries_rejected() {
        let _ = RangePartition::from_boundaries(vec![10, 5]);
    }
}
