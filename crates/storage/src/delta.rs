//! Pending-mutation sidecars: the delta log a mutable progressive index
//! keeps next to its immutable base snapshot.
//!
//! The paper's model assumes an append-only column: every index absorbs a
//! frozen base [`crate::Column`] and refines towards a B+-tree. Mutation
//! support keeps that model intact by never touching the base snapshot at
//! all — instead, inserts and deletes accumulate in a [`DeltaSidecar`]:
//!
//! * **inserts** — a sorted multiset of values added after the snapshot
//!   was taken;
//! * **tombstones** — a sorted multiset of values deleted from the
//!   snapshot (one tombstone cancels one live occurrence).
//!
//! A range query stays exact at *every* refinement stage by composing
//! three terms: the index answer over the base snapshot, **plus** the
//! sidecar's qualifying inserts, **minus** its qualifying tombstones
//! ([`DeltaSidecar::scan`]). Because tombstones are only ever admitted for
//! values that are live (the index layer validates before recording one),
//! the subtraction can never underflow.
//!
//! Both multisets are kept sorted, so range scans are two binary searches
//! plus a walk over the qualifying run, and cancellation (an insert
//! nullifying a tombstone of the same value, or a delete consuming a
//! pending insert) is `O(log n + n)` worst case on the `Vec` shift. The
//! sidecar is bounded in practice: the index layer merges it back into a
//! fresh base snapshot once it grows past a configured fraction of the
//! live rows.

use crate::column::Value;
use crate::scan::ScanResult;

/// The two pending multisets a mutable index keeps next to its immutable
/// base snapshot: values inserted since the snapshot and tombstones over
/// it. See the [module docs](self) for the query-composition contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSidecar {
    /// Values inserted after the base snapshot was taken (sorted).
    inserts: Vec<Value>,
    /// Values deleted from the base snapshot (sorted); each entry cancels
    /// exactly one live occurrence.
    tombstones: Vec<Value>,
}

/// The net effect of a sidecar on one range predicate: what the sidecar
/// adds to and removes from the base snapshot's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaScan {
    /// Aggregate over the qualifying pending inserts.
    pub added: ScanResult,
    /// Aggregate over the qualifying tombstones.
    pub removed: ScanResult,
}

impl DeltaScan {
    /// Applies this delta to a base-snapshot answer:
    /// `base + added - removed`.
    ///
    /// # Panics
    /// Panics (in debug builds) when `removed` exceeds what
    /// `base + added` holds — which would mean a tombstone was admitted
    /// for a value that was never live.
    #[inline]
    pub fn apply_to(self, base: ScanResult) -> ScanResult {
        base.merge(self.added).subtract(self.removed)
    }
}

/// Inserts `v` into the sorted vector, keeping it sorted.
fn sorted_insert(vec: &mut Vec<Value>, v: Value) {
    let at = vec.partition_point(|&x| x <= v);
    vec.insert(at, v);
}

/// Removes one occurrence of `v` from the sorted vector. Returns whether
/// an occurrence existed.
fn sorted_remove(vec: &mut Vec<Value>, v: Value) -> bool {
    let at = vec.partition_point(|&x| x < v);
    if vec.get(at) == Some(&v) {
        vec.remove(at);
        true
    } else {
        false
    }
}

/// Aggregate over the `[low, high]` run of a sorted vector.
fn sorted_scan(vec: &[Value], low: Value, high: Value) -> ScanResult {
    if low > high {
        return ScanResult::EMPTY;
    }
    let start = vec.partition_point(|&x| x < low);
    let end = vec.partition_point(|&x| x <= high);
    let slice = &vec[start..end];
    ScanResult {
        sum: slice.iter().map(|&v| v as u128).sum(),
        count: slice.len() as u64,
    }
}

/// Number of occurrences of `v` in a sorted vector.
fn sorted_count(vec: &[Value], v: Value) -> u64 {
    (vec.partition_point(|&x| x <= v) - vec.partition_point(|&x| x < v)) as u64
}

impl DeltaSidecar {
    /// An empty sidecar (no pending mutations).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no mutations are pending.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.tombstones.is_empty()
    }

    /// Total number of pending entries (inserts plus tombstones) — the
    /// size signal merge policies trigger on.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.tombstones.len()
    }

    /// Net change in live row count this sidecar represents
    /// (`inserts - tombstones`, may be negative).
    pub fn net_rows(&self) -> i64 {
        self.inserts.len() as i64 - self.tombstones.len() as i64
    }

    /// Records an insert of `v`. If a tombstone for `v` is pending, the
    /// two cancel instead (the multisets are over indistinguishable
    /// values, so `tombstone(v) + insert(v)` is a no-op).
    pub fn insert(&mut self, v: Value) {
        if !sorted_remove(&mut self.tombstones, v) {
            sorted_insert(&mut self.inserts, v);
        }
    }

    /// Cancels one pending insert of `v`, if any. Returns whether an
    /// insert was consumed — the cheap path of a delete, avoiding a
    /// tombstone for a row the base snapshot never held.
    pub fn cancel_insert(&mut self, v: Value) -> bool {
        sorted_remove(&mut self.inserts, v)
    }

    /// Records a tombstone for `v`.
    ///
    /// The caller must have validated that an occurrence of `v` is live in
    /// the base snapshot net of pending deltas; the sidecar itself cannot
    /// check that.
    pub fn add_tombstone(&mut self, v: Value) {
        sorted_insert(&mut self.tombstones, v);
    }

    /// Net effect of the pending mutations on a `[low, high]` predicate
    /// (inclusive; `low > high` is the empty range).
    pub fn scan(&self, low: Value, high: Value) -> DeltaScan {
        DeltaScan {
            added: sorted_scan(&self.inserts, low, high),
            removed: sorted_scan(&self.tombstones, low, high),
        }
    }

    /// Net pending occurrences of exactly `v`
    /// (`inserts(v) - tombstones(v)`, may be negative).
    pub fn net_count_of(&self, v: Value) -> i64 {
        sorted_count(&self.inserts, v) as i64 - sorted_count(&self.tombstones, v) as i64
    }

    /// The pending inserts, sorted ascending.
    pub fn inserts(&self) -> &[Value] {
        &self.inserts
    }

    /// The pending tombstones, sorted ascending.
    pub fn tombstones(&self) -> &[Value] {
        &self.tombstones
    }

    /// Sum over all pending inserts minus all tombstones, as a signed
    /// contribution to the column total.
    pub fn net_sum(&self) -> i128 {
        self.inserts.iter().map(|&v| v as i128).sum::<i128>()
            - self.tombstones.iter().map(|&v| v as i128).sum::<i128>()
    }

    /// Consumes the sidecar, returning `(inserts, tombstones)` — the
    /// hand-off into an incremental merge.
    pub fn into_parts(self) -> (Vec<Value>, Vec<Value>) {
        (self.inserts, self.tombstones)
    }

    /// Rebuilds a sidecar from sorted multisets (the decode half of the
    /// snapshot codec, [`crate::snapshot::read_sidecar`]). Returns `None`
    /// when either run is out of order — a corrupted encoding must be
    /// rejected, not trusted into the binary-search invariants.
    pub fn from_sorted_parts(inserts: Vec<Value>, tombstones: Vec<Value>) -> Option<Self> {
        let sorted = |run: &[Value]| run.windows(2).all(|w| w[0] <= w[1]);
        if sorted(&inserts) && sorted(&tombstones) {
            Some(DeltaSidecar {
                inserts,
                tombstones,
            })
        } else {
            None
        }
    }

    /// Folds a *later* sidecar into this one, preserving sequential
    /// semantics: each of `later`'s inserts cancels one of this sidecar's
    /// tombstones of the same value (or becomes a pending insert), and
    /// each of `later`'s tombstones consumes one pending insert (or
    /// becomes a tombstone over the shared base snapshot). Used to
    /// flatten an in-flight merge's frozen deltas with the fresh pending
    /// sidecar into one snapshot-equivalent sidecar.
    pub fn compose(&mut self, later: &DeltaSidecar) {
        for &v in later.inserts() {
            self.insert(v);
        }
        for &v in later.tombstones() {
            if !self.cancel_insert(v) {
                self.add_tombstone(v);
            }
        }
    }
}

/// Tombstone-aware scan of an (unsorted) base slice: the predicated
/// range-sum over `data` minus the qualifying tombstones, plus the
/// qualifying inserts. The free-function form of the composition a
/// mutable index performs; useful when no index exists yet (empty shards,
/// reference oracles).
pub fn scan_range_sum_with_deltas(
    data: &[Value],
    sidecar: &DeltaSidecar,
    low: Value,
    high: Value,
) -> ScanResult {
    sidecar
        .scan(low, high)
        .apply_to(crate::scan::scan_range_sum(data, low, high))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sidecar_is_neutral() {
        let s = DeltaSidecar::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.net_rows(), 0);
        assert_eq!(s.net_sum(), 0);
        let base = ScanResult { sum: 10, count: 2 };
        assert_eq!(s.scan(0, 100).apply_to(base), base);
    }

    #[test]
    fn inserts_add_and_tombstones_remove() {
        let mut s = DeltaSidecar::new();
        s.insert(5);
        s.insert(15);
        s.add_tombstone(7);
        let base = ScanResult { sum: 7, count: 1 }; // base holds {7}
        let r = s.scan(0, 20).apply_to(base);
        assert_eq!(r, ScanResult { sum: 20, count: 2 }); // {5, 15}
                                                         // A narrower predicate only sees the qualifying entries.
        let r = s.scan(10, 20).apply_to(ScanResult::EMPTY);
        assert_eq!(r, ScanResult { sum: 15, count: 1 });
    }

    #[test]
    fn insert_cancels_pending_tombstone() {
        let mut s = DeltaSidecar::new();
        s.add_tombstone(9);
        s.insert(9);
        assert!(s.is_empty(), "tombstone(9) + insert(9) must cancel");
    }

    #[test]
    fn cancel_insert_consumes_one_occurrence() {
        let mut s = DeltaSidecar::new();
        s.insert(4);
        s.insert(4);
        assert!(s.cancel_insert(4));
        assert_eq!(s.net_count_of(4), 1);
        assert!(s.cancel_insert(4));
        assert!(!s.cancel_insert(4));
        assert!(s.is_empty());
    }

    #[test]
    fn scan_is_a_closed_interval_over_multisets() {
        let mut s = DeltaSidecar::new();
        for v in [3, 3, 5, 8] {
            s.insert(v);
        }
        let d = s.scan(3, 5);
        assert_eq!(d.added, ScanResult { sum: 11, count: 3 });
        assert_eq!(d.removed, ScanResult::EMPTY);
        assert_eq!(s.scan(9, 2), DeltaScan::default());
    }

    #[test]
    fn net_counters_track_both_sides() {
        let mut s = DeltaSidecar::new();
        s.insert(10);
        s.insert(20);
        s.add_tombstone(30);
        assert_eq!(s.net_rows(), 1);
        assert_eq!(s.net_sum(), 0);
        assert_eq!(s.net_count_of(10), 1);
        assert_eq!(s.net_count_of(30), -1);
        assert_eq!(s.net_count_of(40), 0);
        assert_eq!(s.inserts(), &[10, 20]);
        assert_eq!(s.tombstones(), &[30]);
    }

    #[test]
    fn free_function_composes_base_and_deltas() {
        let data = vec![1, 5, 9, 5];
        let mut s = DeltaSidecar::new();
        s.add_tombstone(5);
        s.insert(6);
        let r = scan_range_sum_with_deltas(&data, &s, 4, 9);
        // live multiset in [4, 9]: {5, 9, 6}
        assert_eq!(r, ScanResult { sum: 20, count: 3 });
    }

    #[test]
    fn from_sorted_parts_validates_order() {
        let s = DeltaSidecar::from_sorted_parts(vec![1, 2, 2], vec![5]).unwrap();
        assert_eq!(s.inserts(), &[1, 2, 2]);
        assert_eq!(s.tombstones(), &[5]);
        assert!(DeltaSidecar::from_sorted_parts(vec![2, 1], vec![]).is_none());
        assert!(DeltaSidecar::from_sorted_parts(vec![], vec![9, 3]).is_none());
    }

    #[test]
    fn compose_preserves_sequential_semantics() {
        // Earlier sidecar: insert 4, tombstone 7.
        let mut earlier = DeltaSidecar::new();
        earlier.insert(4);
        earlier.add_tombstone(7);
        // Later sidecar: insert 7 (revives the tombstoned value),
        // tombstone 4 (consumes the earlier pending insert), insert 9.
        let mut later = DeltaSidecar::new();
        later.insert(7);
        later.insert(9);
        later.add_tombstone(4);
        earlier.compose(&later);
        // Net effect: only the insert of 9 survives.
        assert_eq!(earlier.inserts(), &[9]);
        assert_eq!(earlier.tombstones(), &[] as &[Value]);

        // A later tombstone with no pending insert lands as a tombstone.
        let mut base = DeltaSidecar::new();
        let mut del = DeltaSidecar::new();
        del.add_tombstone(3);
        base.compose(&del);
        assert_eq!(base.tombstones(), &[3]);
    }

    #[test]
    fn into_parts_round_trips() {
        let mut s = DeltaSidecar::new();
        s.insert(2);
        s.add_tombstone(7);
        let (ins, tomb) = s.into_parts();
        assert_eq!(ins, vec![2]);
        assert_eq!(tomb, vec![7]);
    }
}
