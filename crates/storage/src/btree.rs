//! Bulk-loaded static B+-tree over a sorted array.
//!
//! The consolidation phase of every progressive index (§3 of the paper)
//! turns the fully sorted array produced by the refinement phase into a
//! B+-tree, "since a B+-tree provides better data locality and thus is more
//! efficient than binary search when executing very selective queries".
//!
//! The structure used here mirrors the paper's description literally: the
//! sorted array is the leaf level, and each internal level is built by
//! copying every `β`-th (fan-out-th) element of the level below, until the
//! top level fits in a single node. The total number of copied elements is
//! `N_copy = Σ_i N / β^i`, which is exactly the amount of work the
//! consolidation-phase cost model charges (`t_copy`).
//!
//! Two entry points are provided:
//!
//! * [`StaticBTree::build`] — bulk load in one go (used by the *Full Index*
//!   baseline and by tests).
//! * [`BTreeBuilder`] — incremental construction that performs at most a
//!   caller-chosen number of element copies per call, so a progressive
//!   index can spread the consolidation cost across queries according to
//!   its indexing budget (`δ · t_copy` per query).
//!
//! The tree does **not** own the leaf array: the progressive indexes keep
//! ownership of their sorted data and pass it to every lookup. This keeps
//! the consolidation phase allocation-free apart from the internal levels
//! themselves.

use crate::column::Value;
use crate::scan::{sum_positions, ScanResult};
use crate::sorted;

/// Default tree fan-out `β`.
///
/// 64 keys per node keeps one node within a handful of cache lines while
/// keeping the tree shallow (a 10^9-element leaf level needs only 5 internal
/// levels), matching the order of magnitude used in the paper's setup.
pub const DEFAULT_FANOUT: usize = 64;

/// A static (read-only) B+-tree over an externally owned sorted array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticBTree {
    fanout: usize,
    /// `levels[0]` samples the leaf array every `fanout` elements,
    /// `levels[k]` samples `levels[k-1]` every `fanout` elements.
    /// The last level holds at most `fanout` keys.
    levels: Vec<Vec<Value>>,
    /// Length of the leaf array the tree was built over; lookups verify it.
    leaf_len: usize,
}

/// Which bound a descent should locate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bound {
    /// First position with `value >= key`.
    Lower,
    /// First position with `value > key`.
    Upper,
}

impl StaticBTree {
    /// Bulk loads a B+-tree over `sorted` with the given `fanout`.
    ///
    /// # Panics
    /// Panics when `fanout < 2` or when `sorted` is not sorted
    /// (debug builds only for the sortedness check).
    pub fn build(sorted: &[Value], fanout: usize) -> Self {
        assert!(fanout >= 2, "B+-tree fanout must be at least 2");
        debug_assert!(sorted::is_sorted(sorted), "leaf level must be sorted");
        let mut builder = BTreeBuilder::new(sorted.len(), fanout);
        builder.step(sorted, usize::MAX);
        builder
            .finish()
            .expect("unbounded build step must complete the tree")
    }

    /// Bulk loads with [`DEFAULT_FANOUT`].
    pub fn build_default(sorted: &[Value]) -> Self {
        Self::build(sorted, DEFAULT_FANOUT)
    }

    /// The fan-out `β` the tree was built with.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of internal levels above the leaf array.
    #[inline]
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Length of the leaf array this tree indexes.
    #[inline]
    pub fn leaf_len(&self) -> usize {
        self.leaf_len
    }

    /// Total number of keys stored in internal levels
    /// (`N_copy` from the consolidation cost model).
    pub fn internal_key_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Position of the first leaf element `>= key`.
    pub fn lower_bound(&self, leaves: &[Value], key: Value) -> usize {
        self.descend(leaves, key, Bound::Lower)
    }

    /// Position of the first leaf element `> key`.
    pub fn upper_bound(&self, leaves: &[Value], key: Value) -> usize {
        self.descend(leaves, key, Bound::Upper)
    }

    /// Answers `SELECT SUM(a), COUNT(a) WHERE a BETWEEN low AND high` over
    /// the sorted leaf array using the tree to locate the qualifying run.
    pub fn range_sum(&self, leaves: &[Value], low: Value, high: Value) -> ScanResult {
        if low > high || leaves.is_empty() {
            return ScanResult::EMPTY;
        }
        let start = self.lower_bound(leaves, low);
        let end = self.upper_bound(leaves, high);
        if end <= start {
            return ScanResult::EMPTY;
        }
        sum_positions(leaves, start, end)
    }

    /// Half-open `[start, end)` leaf range of values within `[low, high]`.
    pub fn equal_range(&self, leaves: &[Value], low: Value, high: Value) -> (usize, usize) {
        if low > high {
            return (0, 0);
        }
        let start = self.lower_bound(leaves, low);
        let end = self.upper_bound(leaves, high).max(start);
        (start, end)
    }

    fn descend(&self, leaves: &[Value], key: Value, bound: Bound) -> usize {
        assert_eq!(
            leaves.len(),
            self.leaf_len,
            "leaf array length does not match the array the tree was built over"
        );
        // Position found in the level *above* the one currently examined;
        // it constrains the search window in the current level to at most
        // `fanout` entries.
        let mut pos_above: Option<usize> = None;
        for level in self.levels.iter().rev() {
            let (win_lo, win_hi) = self.child_window(pos_above, level.len());
            pos_above = Some(win_lo + Self::bound_in(&level[win_lo..win_hi], key, bound));
        }
        let (win_lo, win_hi) = self.child_window(pos_above, leaves.len());
        win_lo + Self::bound_in(&leaves[win_lo..win_hi], key, bound)
    }

    /// Window of candidate positions in a child level given the bound
    /// position found in its parent level (or `None` at the tree top).
    #[inline]
    fn child_window(&self, parent_pos: Option<usize>, child_len: usize) -> (usize, usize) {
        match parent_pos {
            None => (0, child_len),
            Some(0) => (0, 1.min(child_len)),
            Some(j) => {
                // parent[j-1] = child[(j-1) * fanout] < key (for the chosen
                // bound), so the child bound lies in ((j-1)*fanout, j*fanout].
                let lo = ((j - 1) * self.fanout + 1).min(child_len);
                let hi = (j * self.fanout + 1).min(child_len);
                (lo, hi)
            }
        }
    }

    #[inline]
    fn bound_in(window: &[Value], key: Value, bound: Bound) -> usize {
        match bound {
            Bound::Lower => sorted::lower_bound(window, key),
            Bound::Upper => sorted::upper_bound(window, key),
        }
    }
}

/// Incremental B+-tree construction with a bounded number of element copies
/// per step, so the consolidation phase can respect an indexing budget.
#[derive(Debug, Clone)]
pub struct BTreeBuilder {
    fanout: usize,
    leaf_len: usize,
    /// Completed and in-progress internal levels (bottom-up).
    levels: Vec<Vec<Value>>,
    /// Index (into the *source* level) of the next element to sample for
    /// the level currently under construction.
    cursor: usize,
    done: bool,
}

impl BTreeBuilder {
    /// Starts building a tree over a leaf array of `leaf_len` sorted
    /// elements with the given `fanout`.
    ///
    /// # Panics
    /// Panics when `fanout < 2`.
    pub fn new(leaf_len: usize, fanout: usize) -> Self {
        assert!(fanout >= 2, "B+-tree fanout must be at least 2");
        // A leaf level that already fits in one node needs no internal
        // levels at all.
        let done = leaf_len <= fanout;
        Self {
            fanout,
            leaf_len,
            levels: if done { Vec::new() } else { vec![Vec::new()] },
            cursor: 0,
            done,
        }
    }

    /// Total number of element copies the full construction requires
    /// (`N_copy = Σ_i N / β^i`). Useful for sizing per-query budgets.
    pub fn total_copies(leaf_len: usize, fanout: usize) -> usize {
        assert!(fanout >= 2);
        let mut total = 0usize;
        let mut level_len = leaf_len;
        while level_len > fanout {
            level_len = level_len.div_ceil(fanout);
            total += level_len;
        }
        total
    }

    /// Returns `true` once every internal level is complete.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.done
    }

    /// Number of element copies performed so far.
    pub fn copies_done(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Performs at most `max_copies` element copies, sampling from `leaves`
    /// (which must be the same sorted array on every call). Returns the
    /// number of copies actually performed.
    pub fn step(&mut self, leaves: &[Value], max_copies: usize) -> usize {
        assert_eq!(
            leaves.len(),
            self.leaf_len,
            "leaf array length changed during incremental B+-tree construction"
        );
        if self.done || max_copies == 0 {
            return 0;
        }
        let mut copied = 0usize;
        while copied < max_copies && !self.done {
            let current = self.levels.len() - 1;
            // Source of the level under construction: the previous internal
            // level, or the leaf array for the first internal level.
            let source_len = if current == 0 {
                self.leaf_len
            } else {
                self.levels[current - 1].len()
            };
            if self.cursor < source_len {
                let value = if current == 0 {
                    leaves[self.cursor]
                } else {
                    self.levels[current - 1][self.cursor]
                };
                self.levels[current].push(value);
                self.cursor += self.fanout;
                copied += 1;
            } else {
                // Level complete; decide whether another level is needed.
                if self.levels[current].len() <= self.fanout {
                    self.done = true;
                } else {
                    self.levels.push(Vec::new());
                    self.cursor = 0;
                }
            }
        }
        copied
    }

    /// Finishes construction, returning the tree when complete or `None`
    /// when more [`BTreeBuilder::step`] calls are required.
    pub fn finish(self) -> Option<StaticBTree> {
        if !self.done {
            return None;
        }
        Some(StaticBTree {
            fanout: self.fanout,
            levels: self.levels,
            leaf_len: self.leaf_len,
        })
    }

    /// Fraction of the total copy work already performed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        let total = Self::total_copies(self.leaf_len, self.fanout);
        if total == 0 {
            1.0
        } else {
            (self.copies_done() as f64 / total as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_range_sum;

    fn sorted_data(n: usize) -> Vec<Value> {
        // Deterministic pseudo-random data with duplicates, then sorted.
        let mut data: Vec<Value> = (0..n as u64)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) % (n as u64))
            .collect();
        data.sort_unstable();
        data
    }

    #[test]
    fn build_empty() {
        let tree = StaticBTree::build(&[], 4);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.range_sum(&[], 0, 100), ScanResult::EMPTY);
    }

    #[test]
    fn build_smaller_than_fanout_has_no_levels() {
        let data = vec![1, 2, 3];
        let tree = StaticBTree::build(&data, 8);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.lower_bound(&data, 2), 1);
        assert_eq!(tree.upper_bound(&data, 2), 2);
    }

    #[test]
    fn lookups_match_plain_binary_search() {
        let data = sorted_data(10_000);
        let tree = StaticBTree::build(&data, 16);
        assert!(tree.height() >= 2);
        for key in (0..10_000).step_by(37) {
            let key = key as Value;
            assert_eq!(
                tree.lower_bound(&data, key),
                sorted::lower_bound(&data, key),
                "lower_bound mismatch for key {key}"
            );
            assert_eq!(
                tree.upper_bound(&data, key),
                sorted::upper_bound(&data, key),
                "upper_bound mismatch for key {key}"
            );
        }
    }

    #[test]
    fn range_sum_matches_full_scan() {
        let data = sorted_data(5_000);
        let tree = StaticBTree::build_default(&data);
        for (lo, hi) in [
            (0, 4_999),
            (100, 200),
            (2_500, 2_500),
            (6_000, 9_000),
            (10, 5),
        ] {
            assert_eq!(
                tree.range_sum(&data, lo, hi),
                scan_range_sum(&data, lo, hi),
                "mismatch for [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn extreme_keys() {
        let data = sorted_data(1_000);
        let tree = StaticBTree::build(&data, 8);
        assert_eq!(tree.lower_bound(&data, 0), 0);
        assert_eq!(tree.upper_bound(&data, Value::MAX), data.len());
        let all = tree.range_sum(&data, 0, Value::MAX);
        assert_eq!(all.count as usize, data.len());
    }

    #[test]
    fn incremental_builder_matches_bulk_build() {
        let data = sorted_data(4_096);
        let bulk = StaticBTree::build(&data, 8);
        let mut builder = BTreeBuilder::new(data.len(), 8);
        let mut steps = 0;
        while !builder.is_complete() {
            let copied = builder.step(&data, 13);
            assert!(copied > 0, "step must make progress until complete");
            steps += 1;
            assert!(steps < 100_000, "builder failed to converge");
        }
        let incremental = builder.finish().expect("builder is complete");
        assert_eq!(incremental, bulk);
    }

    #[test]
    fn builder_total_copies_matches_actual_work() {
        let data = sorted_data(2_000);
        let mut builder = BTreeBuilder::new(data.len(), 16);
        while !builder.is_complete() {
            builder.step(&data, 1);
        }
        assert_eq!(
            builder.copies_done(),
            BTreeBuilder::total_copies(data.len(), 16)
        );
        assert!((builder.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builder_on_tiny_leaf_level_is_immediately_complete() {
        let builder = BTreeBuilder::new(3, 8);
        assert!(builder.is_complete());
        assert_eq!(BTreeBuilder::total_copies(3, 8), 0);
        let tree = builder.finish().unwrap();
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn finish_before_completion_returns_none() {
        let data = sorted_data(1_000);
        let mut builder = BTreeBuilder::new(data.len(), 4);
        builder.step(&data, 1);
        assert!(builder.finish().is_none());
    }

    #[test]
    fn internal_key_count_matches_copy_formula() {
        let data = sorted_data(3_333);
        let tree = StaticBTree::build(&data, 4);
        assert_eq!(
            tree.internal_key_count(),
            BTreeBuilder::total_copies(data.len(), 4)
        );
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn fanout_of_one_is_rejected() {
        let _ = StaticBTree::build(&[1, 2, 3], 1);
    }

    #[test]
    #[should_panic(expected = "length does not match")]
    fn lookup_with_wrong_leaf_array_panics() {
        let data = sorted_data(100);
        let tree = StaticBTree::build(&data, 4);
        let wrong = vec![1, 2, 3];
        let _ = tree.lower_bound(&wrong, 5);
    }

    #[test]
    fn duplicates_heavy_leaf_level() {
        let mut data = vec![7; 500];
        data.extend(vec![9; 500]);
        let tree = StaticBTree::build(&data, 8);
        assert_eq!(tree.lower_bound(&data, 7), 0);
        assert_eq!(tree.upper_bound(&data, 7), 500);
        assert_eq!(tree.lower_bound(&data, 8), 500);
        let r = tree.range_sum(&data, 9, 9);
        assert_eq!(r.count, 500);
    }
}
