//! Order-preserving key encodings: float, signed-integer and string
//! prefix domains over the `u64` core.
//!
//! The paper evaluates progressive indexing on 8-byte unsigned integers,
//! and the whole stack below this module is hardwired to
//! [`Value`](crate::Value)` = u64`. Radix-style crackers extend to other
//! key domains through *order-preserving bit encodings*: an injective map
//! `K -> u64` such that `a < b` in the key domain's total order iff
//! `encode(a) < encode(b)` in unsigned integer order. Every algorithm,
//! shard boundary, digest and scan then keeps operating on plain `u64`
//! codes; only the boundary layer encodes predicates going in and decodes
//! answers coming out.
//!
//! [`OrderedKey`] is that boundary contract, implemented here for:
//!
//! | Key domain | Encoding | SUM decodable |
//! |---|---|---|
//! | `u64` | identity | yes |
//! | `i64` | sign-flip (`bits ^ 1 << 63`) | yes (affine shift) |
//! | `f64` | IEEE-754 total-order bit trick | no |
//! | [`StrPrefix`] | big-endian 8-byte padded prefix | no |
//!
//! ## `f64` policy
//!
//! The float encoding follows the IEEE-754 total order: negative values
//! have all bits flipped, non-negative values have the sign bit flipped.
//! Two policy decisions are explicit:
//!
//! * **NaN** — every NaN (any sign, any payload) is canonicalised to the
//!   positive quiet NaN before encoding, so NaN is a *single* key that
//!   sorts **above `+inf`** (`decode(encode(nan))` is NaN, but payload
//!   bits are not preserved — the one deliberate loss).
//! * **signed zero** — `-0.0` and `+0.0` encode to *distinct, adjacent*
//!   codes with `-0.0 < +0.0`; both round-trip bit-exactly. Callers that
//!   want `-0.0 == +0.0` range semantics must widen their predicate by
//!   one code.
//!
//! Everything else (subnormals, ±inf, the full finite range) round-trips
//! bit-exactly and in order.
//!
//! ## String prefixes
//!
//! [`StrPrefix`] is the **fixed 8-byte big-endian prefix** of a byte
//! string, padded with `0x00`. Its `encode`/`decode` pair is a bijection
//! with `u64` (lexicographic byte order of the padded prefix is exactly
//! big-endian integer order), so at this layer the encoding is lossless
//! and totally ordered. The lossy step — truncating a longer string to
//! its prefix — happens *above* this module, and two distinct strings may
//! share a prefix; layers serving full-string predicates must resolve
//! those boundary ties with an exact-match side path over the full
//! strings (`pi-engine`'s typed tables do).
//!
//! ## SUM capability
//!
//! Aggregates computed by the core are sums of *codes*. For `u64` that is
//! the answer itself; for `i64` the sign-flip is the affine map
//! `v + 2^63`, so `SUM(v) = SUM(code) - count * 2^63` is exactly
//! recoverable ([`OrderedKey::decode_sum`]). For `f64` and [`StrPrefix`]
//! a sum of codes has no key-domain meaning, so `decode_sum` returns
//! `None` and [`OrderedKey::SUM_SUPPORTED`] is `false` — the capability
//! flag typed digests are gated on.
//!
//! ```
//! use pi_storage::encoding::OrderedKey;
//!
//! assert!((-0.0f64).encode() < 0.0f64.encode());
//! assert!(f64::NEG_INFINITY.encode() < (-1.5f64).encode());
//! assert!(f64::INFINITY.encode() < f64::NAN.encode());
//! assert_eq!(f64::decode((-2.5f64).encode()), -2.5);
//! assert!((-3i64).encode() < 4i64.encode());
//! ```

use crate::scan::ScanResult;

/// The sign bit of a 64-bit word, the pivot of both the `i64` and `f64`
/// encodings.
const SIGN_BIT: u64 = 1 << 63;

/// A key domain with a lossless, order-preserving encoding into the `u64`
/// core.
///
/// Laws (checked by property tests in `tests/proptest_encoding.rs`):
///
/// * **round-trip** — `decode(encode(k)) == k` for every canonical key
///   (for `f64`, NaN payloads are canonicalised first; see the module
///   docs).
/// * **order-preservation** — `a < b` in the key domain's total order
///   iff `encode(a) < encode(b)`.
/// * **sum decoding** — when [`SUM_SUPPORTED`](Self::SUM_SUPPORTED),
///   `decode_sum` over a sum of codes equals the key-domain sum.
pub trait OrderedKey: Sized + Clone + std::fmt::Debug {
    /// The key-domain SUM aggregate type (`u128` for `u64` keys, `i128`
    /// for `i64`, …).
    type Sum: std::fmt::Debug + Copy + PartialEq;

    /// Whether a SUM over encoded codes can be decoded back into the key
    /// domain. Typed digests disable SUM for domains where this is
    /// `false` (floats, string prefixes) and serve COUNT only.
    const SUM_SUPPORTED: bool;

    /// Encodes the key into the `u64` core, preserving order.
    fn encode(&self) -> u64;

    /// Decodes a code produced by [`encode`](Self::encode).
    fn decode(code: u64) -> Self;

    /// Decodes an encoded-domain `(SUM, COUNT)` aggregate back into the
    /// key domain; `None` when the domain does not support SUM.
    fn decode_sum(result: ScanResult) -> Option<Self::Sum>;
}

impl OrderedKey for u64 {
    type Sum = u128;
    const SUM_SUPPORTED: bool = true;

    #[inline]
    fn encode(&self) -> u64 {
        *self
    }

    #[inline]
    fn decode(code: u64) -> Self {
        code
    }

    fn decode_sum(result: ScanResult) -> Option<u128> {
        Some(result.sum)
    }
}

impl OrderedKey for i64 {
    type Sum = i128;
    const SUM_SUPPORTED: bool = true;

    /// Sign-flip: maps `i64::MIN..=i64::MAX` onto `0..=u64::MAX`
    /// monotonically (the affine map `v + 2^63` in two's complement).
    #[inline]
    fn encode(&self) -> u64 {
        (*self as u64) ^ SIGN_BIT
    }

    #[inline]
    fn decode(code: u64) -> Self {
        (code ^ SIGN_BIT) as i64
    }

    /// `SUM(code) = SUM(v) + count * 2^63`, so the key-domain sum is the
    /// code sum minus the per-row offset.
    fn decode_sum(result: ScanResult) -> Option<i128> {
        Some((result.sum as i128).wrapping_sub((result.count as i128) << 63))
    }
}

impl OrderedKey for f64 {
    type Sum = f64;
    const SUM_SUPPORTED: bool = false;

    /// IEEE-754 total-order bit trick: negative floats have all bits
    /// flipped (reversing their descending bit order), non-negative
    /// floats have the sign bit flipped (lifting them above every
    /// negative code). NaNs are canonicalised to the positive quiet NaN
    /// first, so NaN is one key sorting above `+inf`.
    #[inline]
    fn encode(&self) -> u64 {
        let bits = if self.is_nan() {
            f64::NAN.to_bits()
        } else {
            self.to_bits()
        };
        if bits & SIGN_BIT != 0 {
            !bits
        } else {
            bits ^ SIGN_BIT
        }
    }

    #[inline]
    fn decode(code: u64) -> Self {
        if code & SIGN_BIT != 0 {
            f64::from_bits(code ^ SIGN_BIT)
        } else {
            f64::from_bits(!code)
        }
    }

    /// A sum of order codes is not a sum of floats: the encoding is
    /// monotone but not affine, so SUM is not decodable.
    fn decode_sum(_: ScanResult) -> Option<f64> {
        None
    }
}

/// Number of bytes of a [`StrPrefix`].
pub const STR_PREFIX_LEN: usize = 8;

/// The fixed 8-byte big-endian prefix of a byte string, padded with
/// `0x00`.
///
/// Lexicographic byte order on padded prefixes equals big-endian `u64`
/// order, so `StrPrefix`'s derived `Ord` and its [`OrderedKey`] encoding
/// agree, and `encode`/`decode` form a bijection. Truncation to the
/// prefix is order-*compatible* with full byte strings:
///
/// * `StrPrefix::new(a) < StrPrefix::new(b)` implies `a < b`, and
/// * `a <= b` implies `StrPrefix::new(a) <= StrPrefix::new(b)`,
///
/// so an encoded range scan over prefixes brackets the true answer; only
/// rows whose prefix *ties* a predicate boundary need an exact-match
/// tie-break over the full strings (handled by the typed-table layer).
/// Note a string is prefix-indistinguishable from itself extended with
/// NUL bytes (`"a"` vs `"a\0"`); the tie-break path covers those too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StrPrefix([u8; STR_PREFIX_LEN]);

impl StrPrefix {
    /// The prefix of a string.
    pub fn new(s: &str) -> Self {
        Self::from_bytes(s.as_bytes())
    }

    /// The prefix of a byte string (strings are compared as raw bytes, so
    /// non-UTF-8 and non-ASCII data is handled uniformly).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut prefix = [0u8; STR_PREFIX_LEN];
        let take = bytes.len().min(STR_PREFIX_LEN);
        prefix[..take].copy_from_slice(&bytes[..take]);
        StrPrefix(prefix)
    }

    /// The padded prefix bytes.
    pub fn as_bytes(&self) -> &[u8; STR_PREFIX_LEN] {
        &self.0
    }
}

impl From<&str> for StrPrefix {
    fn from(s: &str) -> Self {
        StrPrefix::new(s)
    }
}

impl OrderedKey for StrPrefix {
    type Sum = u128;
    const SUM_SUPPORTED: bool = false;

    /// Big-endian interpretation of the padded prefix bytes.
    #[inline]
    fn encode(&self) -> u64 {
        u64::from_be_bytes(self.0)
    }

    #[inline]
    fn decode(code: u64) -> Self {
        StrPrefix(code.to_be_bytes())
    }

    /// Sums of prefix codes have no string-domain meaning.
    fn decode_sum(_: ScanResult) -> Option<u128> {
        None
    }
}

/// Encodes a slice of keys into the `u64` core, in order — the typed
/// column construction path.
pub fn encode_keys<K: OrderedKey>(keys: &[K]) -> Vec<u64> {
    keys.iter().map(OrderedKey::encode).collect()
}

/// Decodes a slice of codes back into the key domain (boundary
/// observability: shard split keys, digest bounds).
pub fn decode_codes<K: OrderedKey>(codes: &[u64]) -> Vec<K> {
    codes.iter().map(|&c| K::decode(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_is_identity() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(v.encode(), v);
            assert_eq!(u64::decode(v), v);
        }
        assert_eq!(
            u64::decode_sum(ScanResult { sum: 42, count: 3 }),
            Some(42u128)
        );
    }

    #[test]
    fn i64_sign_flip_orders_and_round_trips() {
        let keys = [i64::MIN, -2, -1, 0, 1, 2, i64::MAX];
        for w in keys.windows(2) {
            assert!(w[0].encode() < w[1].encode(), "{} < {}", w[0], w[1]);
        }
        for k in keys {
            assert_eq!(i64::decode(k.encode()), k);
        }
        assert_eq!(i64::MIN.encode(), 0);
        assert_eq!(i64::MAX.encode(), u64::MAX);
    }

    #[test]
    fn i64_sum_decodes_through_the_affine_shift() {
        let keys = [-5i64, 3, -7, 0, 11];
        let sum: u128 = keys.iter().map(|k| k.encode() as u128).sum();
        let result = ScanResult {
            sum,
            count: keys.len() as u64,
        };
        assert_eq!(
            i64::decode_sum(result),
            Some(keys.iter().map(|&k| k as i128).sum())
        );
    }

    #[test]
    fn f64_total_order_on_special_values() {
        let ascending = [
            f64::NEG_INFINITY,
            f64::MIN,
            -1.5,
            -f64::MIN_POSITIVE, // largest-magnitude negative subnormal's neighbour
            -f64::from_bits(1), // smallest-magnitude negative subnormal
            -0.0,
            0.0,
            f64::from_bits(1), // smallest positive subnormal
            f64::MIN_POSITIVE,
            1.5,
            f64::MAX,
            f64::INFINITY,
            f64::NAN, // policy: NaN sorts above +inf
        ];
        for w in ascending.windows(2) {
            assert!(
                w[0].encode() < w[1].encode(),
                "{:?} ({:#x}) < {:?} ({:#x})",
                w[0],
                w[0].encode(),
                w[1],
                w[1].encode()
            );
        }
    }

    #[test]
    fn f64_round_trips_bit_exactly_including_signed_zero() {
        for v in [
            -0.0,
            0.0,
            1.0,
            -1.0,
            f64::MIN,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(1),
            -f64::from_bits(1),
        ] {
            assert_eq!(f64::decode(v.encode()).to_bits(), v.to_bits(), "{v:?}");
        }
    }

    #[test]
    fn f64_nan_canonicalises_to_one_code() {
        let nans = [
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_0001), // payload bits
            f64::from_bits(0xfff0_0000_0000_0001), // negative signalling-ish
        ];
        let canonical = f64::NAN.encode();
        for nan in nans {
            assert_eq!(nan.encode(), canonical, "{:#x}", nan.to_bits());
        }
        assert!(f64::decode(canonical).is_nan());
        assert_eq!(f64::decode_sum(ScanResult { sum: 1, count: 1 }), None);
    }

    #[test]
    fn str_prefix_is_a_bijection_with_codes() {
        for s in ["", "a", "abc", "abcdefgh", "zzzzzzzz"] {
            let p = StrPrefix::new(s);
            assert_eq!(StrPrefix::decode(p.encode()), p, "{s:?}");
        }
        // Truncation beyond the prefix collapses, by design.
        assert_eq!(
            StrPrefix::new("abcdefghX").encode(),
            StrPrefix::new("abcdefghY").encode()
        );
    }

    #[test]
    fn str_prefix_order_matches_byte_order() {
        let ascending = ["", "a", "a\0b", "ab", "abc", "b", "zz", "\u{00e9}"];
        for w in ascending.windows(2) {
            let (a, b) = (StrPrefix::new(w[0]), StrPrefix::new(w[1]));
            assert!(a < b, "{:?} < {:?}", w[0], w[1]);
            assert!(a.encode() < b.encode(), "{:?} < {:?} encoded", w[0], w[1]);
        }
    }

    #[test]
    fn slice_helpers_round_trip() {
        let keys = [-2i64, 5, -9];
        let codes = encode_keys(&keys);
        assert_eq!(decode_codes::<i64>(&codes), keys);
    }
}
