//! # pi-storage — columnar storage substrate for progressive indexing
//!
//! This crate provides the storage layer that the progressive indexing
//! algorithms of `pi-core` and the adaptive indexing baselines of
//! `pi-cracking` are built on:
//!
//! * [`Column`] — an immutable, in-memory column of fixed-width unsigned
//!   integers (the paper evaluates on 8-byte integer columns such as the
//!   SkyServer `Right Ascension` attribute scaled to integers).
//! * [`scan`] — predicated (branch-free) and branching full-column scans,
//!   the building block of the *Full Scan* baseline and of the partial
//!   scans every progressive index performs during its creation phase.
//! * [`sorted`] — branchless binary-search primitives over sorted runs.
//! * [`btree`] — a bulk-loaded, cache-friendly static B+-tree over a sorted
//!   array, the target structure of the *consolidation phase* and the
//!   *Full Index* baseline. Construction can be performed incrementally so
//!   that a progressive index can spread the build cost over many queries.
//! * [`shard`] — equi-depth value-range partitioning of a column into
//!   independent shards, the storage substrate of the `pi-engine` serving
//!   layer, with live-weight drift detection for re-balancing.
//! * [`digest`] — sparse, grid-aligned sub-shard aggregate trees
//!   ([`DigestTree`]): exact `(SUM, COUNT, MIN, MAX)` per value bucket,
//!   built per shard over a **global** grid so independently-built trees
//!   merge exactly — the storage layout behind the engine's grouped
//!   aggregates and hot-range aggregate cache.
//! * [`delta`] — the pending-mutation sidecar ([`DeltaSidecar`]): sorted
//!   insert/tombstone multisets plus tombstone-aware scan composition, the
//!   storage half of update/delete support on progressive indexes.
//! * [`snapshot`] — the byte-level snapshot codec for [`Column`] and
//!   [`DeltaSidecar`] state: bounds-checked, non-panicking decode of the
//!   base-plus-sidecar pairs the durability layer (`pi-durable`)
//!   persists.
//! * [`encoding`] — order-preserving key encodings ([`OrderedKey`]) that
//!   open float, signed-integer and string-prefix key domains over the
//!   same `u64` core: encode keys going in, decode answers coming out,
//!   with an explicit NaN/signed-zero policy for `f64` and a fixed
//!   big-endian prefix ([`StrPrefix`]) for strings.
//!
//! The crate is deliberately dependency-free and single-threaded: the
//! progressive indexing model performs indexing work inside the query
//! thread, bounded by a per-query budget.
//!
//! ## Quick example
//!
//! ```
//! use pi_storage::{Column, scan};
//!
//! let col = Column::from_vec(vec![5, 1, 9, 3, 7]);
//! // SELECT SUM(a) WHERE a BETWEEN 3 AND 7
//! let result = scan::scan_range_sum(col.data(), 3, 7);
//! assert_eq!(result.sum, 5 + 3 + 7);
//! assert_eq!(result.count, 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod btree;
pub mod column;
pub mod delta;
pub mod digest;
pub mod encoding;
pub mod scan;
pub mod shard;
pub mod snapshot;
pub mod sorted;

pub use btree::{BTreeBuilder, StaticBTree, DEFAULT_FANOUT};
pub use column::{Column, Value};
pub use delta::{DeltaScan, DeltaSidecar};
pub use digest::{DigestTree, GroupCell};
pub use encoding::{OrderedKey, StrPrefix, STR_PREFIX_LEN};
pub use scan::ScanResult;
pub use shard::RangePartition;
