//! Full-column and partial-column scans.
//!
//! The paper's *Full Scan* baseline — and the "scan the not-yet-indexed
//! `1 - ρ` fraction of the original column" step of every progressive
//! index's creation phase — is a tight loop over a `&[Value]` slice that
//! evaluates `low <= v && v <= high` and accumulates the sum of the
//! qualifying values.
//!
//! Two implementations are provided:
//!
//! * [`scan_range_sum`] — **predicated** (branch-free): the comparison
//!   result is converted to a `0/1` multiplier so the loop body executes
//!   the same instructions regardless of selectivity. This is the variant
//!   the paper uses to obtain robust, selectivity-independent scan costs
//!   (citing Ross's conjunctive-selection work).
//! * [`scan_range_sum_branching`] — a conventional `if`-guarded loop, kept
//!   as an ablation target (`pi-bench/benches/scan.rs`) to show *why*
//!   predication is the right default for robustness.
//!
//! Both treat the predicate as a closed interval `[low, high]`, matching
//! SQL `BETWEEN`.

use crate::column::Value;

/// Result of a range scan: the aggregate the paper's workload queries
/// compute (`SUM`) plus the number of qualifying rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanResult {
    /// Sum of all values `v` with `low <= v <= high`.
    pub sum: u128,
    /// Number of values satisfying the predicate.
    pub count: u64,
}

impl ScanResult {
    /// The empty result (identity element for [`ScanResult::merge`]).
    pub const EMPTY: ScanResult = ScanResult { sum: 0, count: 0 };

    /// Combines two partial results, e.g. the indexed-part lookup and the
    /// unindexed-tail scan that together answer one query during the
    /// creation phase.
    #[inline]
    pub fn merge(self, other: ScanResult) -> ScanResult {
        ScanResult {
            sum: self.sum + other.sum,
            count: self.count + other.count,
        }
    }

    /// Removes `other` from this result: the tombstone composition of the
    /// mutation path (`base + inserts - tombstones`).
    ///
    /// Tombstones are only admitted for live rows, so `other` is always a
    /// sub-aggregate of `self`; a debug assertion guards that invariant.
    #[inline]
    pub fn subtract(self, other: ScanResult) -> ScanResult {
        debug_assert!(
            self.sum >= other.sum && self.count >= other.count,
            "subtracting an aggregate ({other:?}) that is not contained in {self:?}"
        );
        ScanResult {
            sum: self.sum - other.sum,
            count: self.count - other.count,
        }
    }
}

/// Predicated (branch-free) range-sum scan over `data`.
///
/// Every element is read and multiplied by the boolean predicate outcome,
/// so the execution time depends only on `data.len()`, not on how many
/// elements qualify — the property the paper relies on for robust,
/// predictable per-query cost.
#[inline]
pub fn scan_range_sum(data: &[Value], low: Value, high: Value) -> ScanResult {
    let mut sum: u128 = 0;
    let mut count: u64 = 0;
    for &v in data {
        let qualifies = (v >= low) as u64 & (v <= high) as u64;
        sum += (v as u128) * (qualifies as u128);
        count += qualifies;
    }
    ScanResult { sum, count }
}

/// Branching range-sum scan over `data`.
///
/// Functionally identical to [`scan_range_sum`] but uses a conditional
/// branch; its cost varies with selectivity and branch-prediction
/// behaviour. Retained for the predication ablation benchmark.
#[inline]
pub fn scan_range_sum_branching(data: &[Value], low: Value, high: Value) -> ScanResult {
    let mut sum: u128 = 0;
    let mut count: u64 = 0;
    for &v in data {
        if v >= low && v <= high {
            sum += v as u128;
            count += 1;
        }
    }
    ScanResult { sum, count }
}

/// Predicated scan that additionally collects the positions of qualifying
/// rows. Used by examples that need row identifiers rather than only the
/// aggregate.
pub fn scan_range_select(data: &[Value], low: Value, high: Value) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, &v) in data.iter().enumerate() {
        if v >= low && v <= high {
            out.push(i);
        }
    }
    out
}

/// Sums a contiguous run of a *sorted* array between positions
/// `[start, end)`. This is the "scan the α fraction of the index" step of
/// the refinement and consolidation phases once the qualifying range has
/// been located by binary search or a B+-tree lookup.
#[inline]
pub fn sum_positions(data: &[Value], start: usize, end: usize) -> ScanResult {
    let slice = &data[start..end];
    let mut sum: u128 = 0;
    for &v in slice {
        sum += v as u128;
    }
    ScanResult {
        sum,
        count: (end - start) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Vec<Value> {
        vec![6, 3, 14, 13, 2, 1, 8, 19, 7, 12, 11, 4, 16, 9]
    }

    #[test]
    fn predicated_matches_branching() {
        let data = example();
        for (lo, hi) in [(0, 20), (5, 10), (14, 14), (20, 30), (3, 3), (0, 0)] {
            let a = scan_range_sum(&data, lo, hi);
            let b = scan_range_sum_branching(&data, lo, hi);
            assert_eq!(a, b, "mismatch for predicate [{lo}, {hi}]");
        }
    }

    #[test]
    fn closed_interval_semantics() {
        let data = vec![5, 10, 15];
        let r = scan_range_sum(&data, 5, 15);
        assert_eq!(r.sum, 30);
        assert_eq!(r.count, 3);
        let r = scan_range_sum(&data, 6, 14);
        assert_eq!(r.sum, 10);
        assert_eq!(r.count, 1);
    }

    #[test]
    fn empty_input_gives_empty_result() {
        let r = scan_range_sum(&[], 0, 100);
        assert_eq!(r, ScanResult::EMPTY);
    }

    #[test]
    fn no_matches() {
        let data = example();
        let r = scan_range_sum(&data, 100, 200);
        assert_eq!(r.count, 0);
        assert_eq!(r.sum, 0);
    }

    #[test]
    fn inverted_predicate_matches_nothing() {
        // low > high is a degenerate (empty) interval.
        let data = example();
        let r = scan_range_sum(&data, 10, 5);
        assert_eq!(r.count, 0);
        assert_eq!(r.sum, 0);
    }

    #[test]
    fn merge_combines_partial_results() {
        let data = example();
        let (head, tail) = data.split_at(7);
        let merged = scan_range_sum(head, 3, 13).merge(scan_range_sum(tail, 3, 13));
        assert_eq!(merged, scan_range_sum(&data, 3, 13));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let r = ScanResult { sum: 42, count: 3 };
        assert_eq!(r.merge(ScanResult::EMPTY), r);
        assert_eq!(ScanResult::EMPTY.merge(r), r);
    }

    #[test]
    fn select_returns_matching_positions() {
        let data = example();
        let rows = scan_range_select(&data, 11, 16);
        let values: Vec<Value> = rows.iter().map(|&i| data[i]).collect();
        assert_eq!(values, vec![14, 13, 12, 11, 16]);
    }

    #[test]
    fn sum_positions_on_sorted_run() {
        let mut data = example();
        data.sort_unstable();
        let r = sum_positions(&data, 2, 5);
        assert_eq!(r.count, 3);
        assert_eq!(r.sum, (data[2] + data[3] + data[4]) as u128);
    }

    #[test]
    fn sum_positions_empty_range() {
        let data = example();
        let r = sum_positions(&data, 3, 3);
        assert_eq!(r, ScanResult::EMPTY);
    }

    #[test]
    fn predicated_scan_handles_extreme_values() {
        let data = vec![0, Value::MAX, 1];
        let r = scan_range_sum(&data, 0, Value::MAX);
        assert_eq!(r.count, 3);
        assert_eq!(r.sum, (Value::MAX as u128) + 1);
    }
}
