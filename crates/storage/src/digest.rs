//! Sub-shard digest trees: grouped `(SUM, COUNT, MIN, MAX)` aggregates
//! over a fixed value grid.
//!
//! The engine's per-shard digests answer a predicate that covers a whole
//! shard in O(1). This module extends that idea *below* full-shard
//! granularity: a [`DigestTree`] summarises a shard's live values into
//! grid-aligned buckets of width `w` — bucket `b` holds every value in
//! `[b·w, (b+1)·w)` — so grouped aggregates (`GROUP BY bucket`) and
//! partially-covering predicates can be answered from the tree instead of
//! a full probe. The grid is **global** (anchored at value 0, not at the
//! shard's min), so trees built independently per shard merge exactly:
//! the same value lands in the same bucket no matter which shard holds
//! it.
//!
//! Trees are sparse: only buckets that hold at least one live value are
//! materialised, so a shard whose values cluster densely costs a handful
//! of cells no matter how wide the domain is. Cells keep exact `SUM`,
//! `COUNT`, `MIN` and `MAX`, and empty cells simply do not exist — the
//! count guard is structural, never a min/max sentinel.

use std::collections::BTreeMap;

use crate::column::Value;

/// One grid bucket's exact aggregate over the live values it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCell {
    /// Exact sum of the bucket's live values.
    pub sum: u128,
    /// Number of live values in the bucket (always ≥ 1: empty cells are
    /// not materialised).
    pub count: u64,
    /// Smallest live value in the bucket.
    pub min: Value,
    /// Largest live value in the bucket.
    pub max: Value,
}

impl GroupCell {
    /// The cell of a single value.
    pub fn of(v: Value) -> Self {
        GroupCell {
            sum: v as u128,
            count: 1,
            min: v,
            max: v,
        }
    }

    /// Folds one more value into the cell.
    pub fn absorb(&mut self, v: Value) {
        self.sum += v as u128;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another cell of the *same bucket* into this one (the
    /// cross-shard fold: per-shard trees share the global grid).
    pub fn merge(&mut self, other: &GroupCell) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The grid bucket a value falls into under bucket width `width`.
#[inline]
pub fn bucket_of(v: Value, width: Value) -> u64 {
    debug_assert!(width > 0, "bucket width must be positive");
    v / width
}

/// A sparse, grid-aligned aggregate tree over a multiset of values: one
/// exact [`GroupCell`] per non-empty bucket of width `width`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestTree {
    width: Value,
    cells: BTreeMap<u64, GroupCell>,
}

impl DigestTree {
    /// An empty tree over the given grid.
    ///
    /// # Panics
    /// Panics when `width == 0` (the grid would be degenerate).
    pub fn empty(width: Value) -> Self {
        assert!(width > 0, "bucket width must be positive");
        DigestTree {
            width,
            cells: BTreeMap::new(),
        }
    }

    /// Builds the tree of `values` over the global grid of width `width`.
    pub fn build(values: &[Value], width: Value) -> Self {
        let mut tree = Self::empty(width);
        for &v in values {
            tree.absorb(v);
        }
        tree
    }

    /// Folds one value into its bucket.
    pub fn absorb(&mut self, v: Value) {
        self.cells
            .entry(bucket_of(v, self.width))
            .and_modify(|cell| cell.absorb(v))
            .or_insert_with(|| GroupCell::of(v));
    }

    /// The grid width the tree was built over.
    pub fn width(&self) -> Value {
        self.width
    }

    /// Number of materialised (non-empty) buckets.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no bucket is materialised (no live values).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total live values across every bucket.
    pub fn total_count(&self) -> u64 {
        self.cells.values().map(|c| c.count).sum()
    }

    /// The cell of bucket `bucket`, when materialised.
    pub fn cell(&self, bucket: u64) -> Option<&GroupCell> {
        self.cells.get(&bucket)
    }

    /// Iterates the non-empty buckets in ascending bucket order.
    pub fn cells(&self) -> impl Iterator<Item = (u64, &GroupCell)> {
        self.cells.iter().map(|(&b, cell)| (b, cell))
    }

    /// The non-empty buckets whose grid range overlaps the predicate
    /// `[low, high]` — i.e. every bucket in
    /// `[bucket_of(low), bucket_of(high)]` — in ascending bucket order.
    /// Grouped aggregates select *whole* grid buckets: a bucket
    /// participates as soon as the predicate touches its grid range, and
    /// its cell always covers all of the bucket's live values.
    pub fn cells_overlapping(
        &self,
        low: Value,
        high: Value,
    ) -> impl Iterator<Item = (u64, &GroupCell)> {
        // The empty predicate (low > high) selects no buckets.
        let range = (low <= high).then(|| bucket_of(low, self.width)..=bucket_of(high, self.width));
        range
            .into_iter()
            .flat_map(move |r| self.cells.range(r))
            .map(|(&b, cell)| (b, cell))
    }

    /// Merges `other` (same grid) into this tree, bucket by bucket.
    ///
    /// # Panics
    /// Panics when the grids differ: per-shard trees may only merge
    /// because they share the global grid.
    pub fn merge(&mut self, other: &DigestTree) {
        assert_eq!(self.width, other.width, "digest grids must match");
        for (&bucket, cell) in &other.cells {
            self.cells
                .entry(bucket)
                .and_modify(|mine| mine.merge(cell))
                .or_insert(*cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_exact_per_bucket() {
        let values = [0, 5, 9, 10, 19, 20, 99, 100];
        let tree = DigestTree::build(&values, 10);
        assert_eq!(tree.len(), 5);
        assert_eq!(
            tree.cell(0),
            Some(&GroupCell {
                sum: 14,
                count: 3,
                min: 0,
                max: 9
            })
        );
        assert_eq!(
            tree.cell(1),
            Some(&GroupCell {
                sum: 29,
                count: 2,
                min: 10,
                max: 19
            })
        );
        assert_eq!(tree.cell(2).unwrap().count, 1);
        assert_eq!(tree.cell(9), Some(&GroupCell::of(99)));
        assert_eq!(tree.cell(10), Some(&GroupCell::of(100)));
        assert_eq!(tree.cell(3), None, "empty buckets are not materialised");
        assert_eq!(tree.total_count(), values.len() as u64);
    }

    #[test]
    fn global_grid_makes_shard_trees_merge_exactly() {
        let all = [3u64, 7, 12, 18, 23, 27, 31, 12, 7];
        // Any split of the multiset must merge back to the whole tree.
        let (left, right) = all.split_at(4);
        let mut merged = DigestTree::build(left, 10);
        merged.merge(&DigestTree::build(right, 10));
        assert_eq!(merged, DigestTree::build(&all, 10));
    }

    #[test]
    fn overlap_selects_whole_buckets() {
        let tree = DigestTree::build(&[5, 15, 25, 35], 10);
        // [12, 28] touches buckets 1 and 2 entirely (whole-bucket
        // semantics), not the half-open value range.
        let hit: Vec<u64> = tree.cells_overlapping(12, 28).map(|(b, _)| b).collect();
        assert_eq!(hit, vec![1, 2]);
        // Inverted predicates select nothing.
        assert_eq!(tree.cells_overlapping(28, 12).count(), 0);
        // A point predicate selects its bucket.
        let hit: Vec<u64> = tree.cells_overlapping(35, 35).map(|(b, _)| b).collect();
        assert_eq!(hit, vec![3]);
    }

    #[test]
    fn empty_tree_has_no_cells_not_sentinels() {
        let tree = DigestTree::build(&[], 64);
        assert!(tree.is_empty());
        assert_eq!(tree.total_count(), 0);
        assert_eq!(tree.cells_overlapping(0, u64::MAX).count(), 0);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_width_grid_rejected() {
        let _ = DigestTree::empty(0);
    }

    #[test]
    #[should_panic(expected = "digest grids must match")]
    fn mismatched_grids_refuse_to_merge() {
        let mut a = DigestTree::build(&[1], 10);
        a.merge(&DigestTree::build(&[1], 20));
    }
}
