//! Property tests for the order-preserving key encodings: round-trip and
//! order-preservation oracles over the full value spaces — for `f64`
//! that includes NaN, `-0.0` vs `+0.0`, subnormals and ±inf (values are
//! drawn from arbitrary *bit patterns*, so every IEEE class is
//! generated); for string prefixes it includes the empty string, shared
//! prefixes and non-ASCII bytes.

use std::cmp::Ordering;

use proptest::prelude::*;

use pi_storage::encoding::{OrderedKey, StrPrefix, STR_PREFIX_LEN};

/// The encoding's canonical form of an arbitrary bit pattern: all NaNs
/// collapse to the one canonical NaN (the documented policy); everything
/// else is the value itself.
fn canonical_f64(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_nan() {
        f64::NAN
    } else {
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `decode(encode(v))` is bit-exact for every canonical f64 —
    /// subnormals, ±0.0, ±inf and the canonical NaN included.
    #[test]
    fn f64_round_trips_bit_exactly(bits in any::<u64>()) {
        let v = canonical_f64(bits);
        prop_assert_eq!(
            f64::decode(v.encode()).to_bits(),
            v.to_bits(),
            "{:?} ({:#018x})", v, v.to_bits()
        );
    }

    /// The encoding realises the IEEE-754 total order: for canonical
    /// values, `total_cmp` and unsigned code order agree exactly
    /// (strictly — distinct codes for distinct values, so `-0.0 < +0.0`
    /// and subnormal neighbours stay distinguishable).
    #[test]
    fn f64_order_matches_total_cmp(a_bits in any::<u64>(), b_bits in any::<u64>()) {
        let (a, b) = (canonical_f64(a_bits), canonical_f64(b_bits));
        prop_assert_eq!(
            a.encode().cmp(&b.encode()),
            a.total_cmp(&b),
            "{:?} vs {:?}", a, b
        );
    }

    /// Every NaN bit pattern (any sign, any payload) encodes to the one
    /// canonical code, which sorts above every non-NaN code.
    #[test]
    fn f64_nan_policy_is_total(payload in any::<u64>(), other_bits in any::<u64>()) {
        // Force an exponent of all-ones and a non-zero mantissa: a NaN.
        let nan_bits = payload | 0x7ff0_0000_0000_0000 | 1;
        let nan = f64::from_bits(nan_bits);
        prop_assert!(nan.is_nan());
        prop_assert_eq!(nan.encode(), f64::NAN.encode());
        let other = canonical_f64(other_bits);
        if !other.is_nan() {
            prop_assert!(other.encode() < nan.encode(), "{:?} must sort below NaN", other);
        }
    }

    /// `decode(encode(v))` is exact for every i64 and the code order is
    /// the signed order.
    #[test]
    fn i64_round_trips_and_orders(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(i64::decode(a.encode()), a);
        prop_assert_eq!(a.encode().cmp(&b.encode()), a.cmp(&b));
    }

    /// Sum decoding is exact for arbitrary i64 multisets: summing codes
    /// and decoding equals summing keys.
    #[test]
    fn i64_sum_decodes_exactly(keys in prop::collection::vec(any::<i64>(), 0..200)) {
        let result = pi_storage::ScanResult {
            sum: keys.iter().map(|k| k.encode() as u128).sum(),
            count: keys.len() as u64,
        };
        prop_assert_eq!(
            i64::decode_sum(result),
            Some(keys.iter().map(|&k| k as i128).sum::<i128>())
        );
    }

    /// Prefix encode/decode is a bijection: every code round-trips, and
    /// every prefix (empty, padded, non-ASCII, interior NULs) does too.
    #[test]
    fn str_prefix_bijection(bytes in prop::collection::vec(any::<u8>(), 0..16), code in any::<u64>()) {
        let p = StrPrefix::from_bytes(&bytes);
        prop_assert_eq!(StrPrefix::decode(p.encode()), p);
        prop_assert_eq!(StrPrefix::decode(code).encode(), code);
    }

    /// Code order equals lexicographic byte order of the padded
    /// prefixes, and truncation is order-compatible with full byte
    /// strings: a strict code inequality implies the same strict
    /// full-string inequality, and full-string order never inverts the
    /// prefix order. Shared prefixes (including a string vs its own
    /// extension, and the empty string vs anything) land in the Equal
    /// branch.
    #[test]
    fn str_prefix_order_is_compatible_with_byte_order(
        a in prop::collection::vec(any::<u8>(), 0..16),
        b in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let (pa, pb) = (StrPrefix::from_bytes(&a), StrPrefix::from_bytes(&b));
        prop_assert_eq!(pa.encode().cmp(&pb.encode()), pa.cmp(&pb));
        match pa.encode().cmp(&pb.encode()) {
            Ordering::Less => prop_assert!(a < b, "{:?} < {:?}", a, b),
            Ordering::Greater => prop_assert!(a > b, "{:?} > {:?}", a, b),
            // Tied codes: the full strings may still differ (shared
            // prefix, NUL padding) — exactly the cases the tie-break
            // layer resolves. Order between them must be decided past
            // the prefix, i.e. the first STR_PREFIX_LEN padded bytes
            // agree.
            Ordering::Equal => {
                let pad = |s: &[u8]| {
                    let mut padded = [0u8; STR_PREFIX_LEN];
                    let take = s.len().min(STR_PREFIX_LEN);
                    padded[..take].copy_from_slice(&s[..take]);
                    padded
                };
                prop_assert_eq!(pad(&a), pad(&b));
            }
        }
    }

    /// No prefix is globally unambiguous: every byte string shorter
    /// than the prefix width ties with its own (distinct) NUL-extension,
    /// and every string of full width or more ties with an extension.
    /// This is exactly why full-string predicates always go through the
    /// tie-break side path — there is no "exact prefix" fast path to
    /// take.
    #[test]
    fn every_prefix_has_a_tying_distinct_string(a in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut ext = a.clone();
        // Within the prefix width, extend with a NUL (pads identically);
        // at or past it, any extension byte is truncated away.
        ext.push(if a.len() < STR_PREFIX_LEN { 0 } else { b'x' });
        prop_assert_ne!(&a, &ext);
        prop_assert_eq!(
            StrPrefix::from_bytes(&a).encode(),
            StrPrefix::from_bytes(&ext).encode(),
            "{:?} vs {:?}", a, ext
        );
    }
}
