//! Synthetic data-set generators (Section 4.1 of the paper).
//!
//! The paper's synthetic evaluation uses columns of 10^8 or 10^9 8-byte
//! integers in the domain `[0, n)`:
//!
//! * a **uniform random** data set of unique integers, and
//! * a **skewed** data set of non-unique integers where 90% of the values
//!   are concentrated in the middle of the domain.
//!
//! Both generators are deterministic given a seed so experiments are
//! repeatable, and both scale down to laptop-size columns (the experiment
//! harness defaults to 10^6–10^7 and takes the size as a parameter).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Column element type re-exported for convenience (an unsigned 64-bit
/// integer, as in `pi-storage`).
pub type Value = u64;

/// The two synthetic data distributions of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Unique integers `0..n`, randomly permuted.
    UniformRandom,
    /// Non-unique integers in `[0, n)` with 90% of the values concentrated
    /// in the middle tenth of the domain.
    Skewed,
}

impl Distribution {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Distribution::UniformRandom => "uniform-random",
            Distribution::Skewed => "skewed",
        }
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Generates `n` values drawn from `distribution` over the domain
/// `[0, n)`.
pub fn generate(distribution: Distribution, n: usize, seed: u64) -> Vec<Value> {
    match distribution {
        Distribution::UniformRandom => uniform_random(n, seed),
        Distribution::Skewed => skewed(n, seed),
    }
}

/// Unique integers `0..n` in random order — the paper's "uniform random"
/// data set. Every value occurs exactly once, so range-query selectivity
/// maps directly to range width.
pub fn uniform_random(n: usize, seed: u64) -> Vec<Value> {
    let mut values: Vec<Value> = (0..n as Value).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    values.shuffle(&mut rng);
    values
}

/// Non-unique integers in `[0, n)` where 90% of the values fall into the
/// middle tenth of the domain — the paper's "skewed" data set.
pub fn skewed(n: usize, seed: u64) -> Vec<Value> {
    skewed_with(n, seed, 0.9, 0.1)
}

/// Skewed generator with explicit parameters: `hot_fraction` of the values
/// are drawn uniformly from a centred window covering `hot_width` of the
/// domain; the rest are drawn uniformly from the whole domain.
///
/// # Panics
/// Panics when the fractions are outside `(0, 1]`.
pub fn skewed_with(n: usize, seed: u64, hot_fraction: f64, hot_width: f64) -> Vec<Value> {
    assert!(
        hot_fraction > 0.0 && hot_fraction <= 1.0,
        "hot fraction must lie in (0, 1], got {hot_fraction}"
    );
    assert!(
        hot_width > 0.0 && hot_width <= 1.0,
        "hot width must lie in (0, 1], got {hot_width}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = n.max(1) as u64;
    let hot_span = ((domain as f64 * hot_width) as u64).max(1);
    let hot_start = (domain - hot_span) / 2;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let v = if rng.gen::<f64>() < hot_fraction {
            hot_start + rng.gen_range(0..hot_span)
        } else {
            rng.gen_range(0..domain)
        };
        values.push(v);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_is_a_permutation() {
        let v = uniform_random(10_000, 7);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_random_is_deterministic_per_seed() {
        assert_eq!(uniform_random(1_000, 1), uniform_random(1_000, 1));
        assert_ne!(uniform_random(1_000, 1), uniform_random(1_000, 2));
    }

    #[test]
    fn skewed_concentrates_mass_in_the_middle() {
        let n = 100_000;
        let v = skewed(n, 3);
        assert_eq!(v.len(), n);
        let domain = n as u64;
        let hot_start = domain * 45 / 100;
        let hot_end = domain * 55 / 100;
        let in_hot = v.iter().filter(|&&x| x >= hot_start && x < hot_end).count();
        // 90% target plus the ~1% of background values that land there.
        let fraction = in_hot as f64 / n as f64;
        assert!(
            fraction > 0.85 && fraction < 0.95,
            "hot fraction was {fraction}"
        );
        assert!(v.iter().all(|&x| x < domain));
    }

    #[test]
    fn skewed_with_full_width_degenerates_to_uniform_domain() {
        let v = skewed_with(10_000, 5, 0.5, 1.0);
        assert!(v.iter().all(|&x| x < 10_000));
    }

    #[test]
    fn generate_dispatches_on_distribution() {
        let u = generate(Distribution::UniformRandom, 100, 9);
        let s = generate(Distribution::Skewed, 100, 9);
        assert_eq!(u.len(), 100);
        assert_eq!(s.len(), 100);
        assert_ne!(u, s);
        assert_eq!(Distribution::UniformRandom.label(), "uniform-random");
        assert_eq!(Distribution::Skewed.to_string(), "skewed");
    }

    #[test]
    #[should_panic(expected = "hot fraction")]
    fn skewed_rejects_zero_hot_fraction() {
        let _ = skewed_with(10, 1, 0.0, 0.1);
    }
}
