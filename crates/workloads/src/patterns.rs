//! The eight synthetic query-workload patterns of Figure 6 (originally
//! introduced by Halim et al. for stochastic cracking).
//!
//! A workload is a sequence of inclusive range predicates
//! `WHERE a BETWEEN low AND high` over a value domain `[0, domain)`. The
//! patterns differ in how the query *position* moves over the domain:
//!
//! | Pattern | Movement of the queried region |
//! |---|---|
//! | [`Pattern::Random`]     | uniformly random |
//! | [`Pattern::SeqOver`]    | sequential sweep from low to high values |
//! | [`Pattern::Skew`]       | concentrated around the centre of the domain |
//! | [`Pattern::Periodic`]   | fixed large stride, cycling through the domain |
//! | [`Pattern::ZoomIn`]     | nested ranges shrinking towards the centre |
//! | [`Pattern::ZoomOutAlt`] | alternating around the centre, moving outward |
//! | [`Pattern::SeqZoomIn`]  | zoom-in repeated per consecutive segment |
//! | [`Pattern::ZoomInAlt`]  | alternating from the two ends, moving inward |
//!
//! All patterns except [`Pattern::ZoomIn`] and [`Pattern::SeqZoomIn`] use a
//! fixed selectivity (the paper uses 10%); the zooming patterns derive
//! their range widths from the zoom progression itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Value;

/// One inclusive range predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeQuery {
    /// Lower bound (inclusive).
    pub low: Value,
    /// Upper bound (inclusive).
    pub high: Value,
}

impl RangeQuery {
    /// Creates a query, normalising a reversed pair.
    pub fn new(low: Value, high: Value) -> Self {
        if low <= high {
            RangeQuery { low, high }
        } else {
            RangeQuery {
                low: high,
                high: low,
            }
        }
    }

    /// `true` when the query selects a single value.
    pub fn is_point(&self) -> bool {
        self.low == self.high
    }

    /// Width of the selected value range (number of selectable values).
    pub fn width(&self) -> u64 {
        self.high - self.low + 1
    }
}

/// The eight synthetic workload patterns of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Sequential sweep across the domain ("SeqOver").
    SeqOver,
    /// Alternating around the centre, moving outward ("ZoomOutAlt").
    ZoomOutAlt,
    /// Queries concentrated around the centre of the domain ("Skew").
    Skew,
    /// Uniformly random positions ("Random").
    Random,
    /// Zoom-in repeated per consecutive segment ("SeqZoomIn").
    SeqZoomIn,
    /// Fixed-stride cycling positions ("Periodic").
    Periodic,
    /// Alternating from the two ends, moving inward ("ZoomInAlt").
    ZoomInAlt,
    /// Nested ranges shrinking towards the centre ("ZoomIn").
    ZoomIn,
}

impl Pattern {
    /// All eight patterns, in the row order of the paper's tables.
    pub const ALL: [Pattern; 8] = [
        Pattern::SeqOver,
        Pattern::ZoomOutAlt,
        Pattern::Skew,
        Pattern::Random,
        Pattern::SeqZoomIn,
        Pattern::Periodic,
        Pattern::ZoomInAlt,
        Pattern::ZoomIn,
    ];

    /// The six patterns the paper's "Point Query" experiment block uses
    /// (the zooming patterns have no point-query analogue because their
    /// widths are part of the pattern).
    pub const POINT_QUERY_PATTERNS: [Pattern; 6] = [
        Pattern::SeqOver,
        Pattern::ZoomOutAlt,
        Pattern::Skew,
        Pattern::Random,
        Pattern::Periodic,
        Pattern::ZoomInAlt,
    ];

    /// Short label used in experiment output (matches the paper's tables).
    pub fn label(self) -> &'static str {
        match self {
            Pattern::SeqOver => "SeqOver",
            Pattern::ZoomOutAlt => "ZoomOutAlt",
            Pattern::Skew => "Skew",
            Pattern::Random => "Random",
            Pattern::SeqZoomIn => "SeqZoomIn",
            Pattern::Periodic => "Periodic",
            Pattern::ZoomInAlt => "ZoomInAlt",
            Pattern::ZoomIn => "ZoomIn",
        }
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameters of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Value domain `[0, domain)` the queries are drawn over.
    pub domain: u64,
    /// Number of queries to generate.
    pub query_count: usize,
    /// Fraction of the domain each range query covers (ignored by the
    /// zooming patterns and by point queries). The paper uses `0.1`.
    pub selectivity: f64,
    /// Generate point queries (`low == high`) instead of range queries.
    pub point_queries: bool,
    /// RNG seed for the stochastic patterns.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's default synthetic setting: 10% selectivity range
    /// queries.
    pub fn range(domain: u64, query_count: usize) -> Self {
        WorkloadSpec {
            domain,
            query_count,
            selectivity: 0.1,
            point_queries: false,
            seed: 0xF16,
        }
    }

    /// Point-query variant of the same workload.
    pub fn point(domain: u64, query_count: usize) -> Self {
        WorkloadSpec {
            point_queries: true,
            ..Self::range(domain, query_count)
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the selectivity (builder style).
    ///
    /// # Panics
    /// Panics when `selectivity` is not in `(0, 1]`.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must lie in (0, 1], got {selectivity}"
        );
        self.selectivity = selectivity;
        self
    }

    fn width(&self) -> u64 {
        if self.point_queries {
            1
        } else {
            ((self.domain as f64 * self.selectivity) as u64).clamp(1, self.domain.max(1))
        }
    }
}

/// Generates the query sequence for `pattern` under `spec`.
pub fn generate(pattern: Pattern, spec: &WorkloadSpec) -> Vec<RangeQuery> {
    assert!(spec.domain > 0, "domain must be non-empty");
    let width = spec.width();
    let max_low = spec.domain.saturating_sub(width);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let count = spec.query_count;
    let mut queries = Vec::with_capacity(count);

    let clamp_query = |low: u64| -> RangeQuery {
        let low = low.min(max_low);
        RangeQuery::new(low, low + width - 1)
    };

    match pattern {
        Pattern::Random => {
            for _ in 0..count {
                queries.push(clamp_query(rng.gen_range(0..=max_low)));
            }
        }
        Pattern::SeqOver => {
            // March from the low end to the high end of the domain once,
            // in equal steps; restart when the sweep completes.
            let sweep_len = count.max(1) as u64;
            let step = (max_low / sweep_len).max(1);
            for i in 0..count {
                let low = (i as u64 * step) % (max_low + 1);
                queries.push(clamp_query(low));
            }
        }
        Pattern::Skew => {
            // 90% of the queries hit a narrow hot region around the centre
            // of the domain, 10% are uniform background queries.
            let hot_span = (spec.domain / 20).max(1);
            let hot_start = (spec.domain / 2).saturating_sub(hot_span / 2);
            for _ in 0..count {
                let low = if rng.gen::<f64>() < 0.9 {
                    hot_start + rng.gen_range(0..hot_span)
                } else {
                    rng.gen_range(0..=max_low)
                };
                queries.push(clamp_query(low));
            }
        }
        Pattern::Periodic => {
            // Fixed stride that is deliberately not a divisor of the
            // domain, so consecutive sweeps visit different positions.
            let stride = (spec.domain / 10).max(1) | 1;
            for i in 0..count {
                let low = (i as u64).wrapping_mul(stride) % (max_low + 1);
                queries.push(clamp_query(low));
            }
        }
        Pattern::ZoomIn => {
            // Nested ranges: start with (almost) the whole domain and
            // shrink towards the centre with every query.
            let center = spec.domain / 2;
            let mut half = spec.domain / 2;
            let min_half = width.max(1) / 2 + 1;
            let shrink = ((spec.domain / 2).saturating_sub(min_half) / count.max(1) as u64).max(1);
            for _ in 0..count {
                let low = center.saturating_sub(half);
                let high = (center + half).min(spec.domain - 1);
                queries.push(RangeQuery::new(low, high));
                half = half.saturating_sub(shrink).max(min_half);
            }
        }
        Pattern::SeqZoomIn => {
            // Divide the domain into segments and run a shorter zoom-in
            // inside each segment in turn.
            let segments: u64 = 10;
            let seg_span = (spec.domain / segments).max(1);
            let per_segment = (count as u64 / segments).max(1);
            for i in 0..count {
                let seg = (i as u64 / per_segment) % segments;
                let step_in_seg = i as u64 % per_segment;
                let seg_start = seg * seg_span;
                let center = seg_start + seg_span / 2;
                let min_half = 1u64;
                let max_half = seg_span / 2;
                let shrink = (max_half.saturating_sub(min_half) / per_segment).max(1);
                let half = max_half.saturating_sub(step_in_seg * shrink).max(min_half);
                let low = center.saturating_sub(half);
                let high = (center + half).min(spec.domain - 1);
                queries.push(RangeQuery::new(low, high));
            }
        }
        Pattern::ZoomOutAlt => {
            // Start at the centre and alternate left/right, moving outward.
            let center = spec.domain / 2;
            let step = (spec.domain / 2 / count.max(1) as u64).max(1);
            for i in 0..count {
                let offset = (i as u64 / 2 + 1) * step;
                let low = if i % 2 == 0 {
                    center.saturating_sub(offset)
                } else {
                    (center + offset).min(max_low)
                };
                queries.push(clamp_query(low));
            }
        }
        Pattern::ZoomInAlt => {
            // Alternate between the two ends of the domain, moving inward.
            let step = (spec.domain / 2 / count.max(1) as u64).max(1);
            for i in 0..count {
                let offset = (i as u64 / 2) * step;
                let low = if i % 2 == 0 {
                    offset
                } else {
                    max_low.saturating_sub(offset)
                };
                queries.push(clamp_query(low));
            }
        }
    }
    queries
}

/// Generates every pattern of [`Pattern::ALL`] under the same spec —
/// convenient for experiment sweeps.
pub fn generate_all(spec: &WorkloadSpec) -> Vec<(Pattern, Vec<RangeQuery>)> {
    Pattern::ALL
        .iter()
        .map(|&p| (p, generate(p, spec)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: u64 = 1_000_000;

    fn spec(count: usize) -> WorkloadSpec {
        WorkloadSpec::range(DOMAIN, count)
    }

    #[test]
    fn all_patterns_generate_requested_count_within_domain() {
        for (pattern, queries) in generate_all(&spec(500)) {
            assert_eq!(queries.len(), 500, "{pattern}");
            for q in &queries {
                assert!(q.low <= q.high, "{pattern}: {q:?}");
                assert!(q.high < DOMAIN, "{pattern}: {q:?}");
            }
        }
    }

    #[test]
    fn fixed_selectivity_patterns_have_constant_width() {
        for pattern in [
            Pattern::Random,
            Pattern::SeqOver,
            Pattern::Skew,
            Pattern::Periodic,
            Pattern::ZoomOutAlt,
            Pattern::ZoomInAlt,
        ] {
            let queries = generate(pattern, &spec(100));
            let width = queries[0].width();
            assert!(
                queries.iter().all(|q| q.width() == width),
                "{pattern} should have constant width"
            );
            let expected = (DOMAIN as f64 * 0.1) as u64;
            assert_eq!(width, expected, "{pattern}");
        }
    }

    #[test]
    fn zoom_in_ranges_are_nested_and_shrinking() {
        let queries = generate(Pattern::ZoomIn, &spec(100));
        for pair in queries.windows(2) {
            assert!(pair[1].low >= pair[0].low);
            assert!(pair[1].high <= pair[0].high);
            assert!(pair[1].width() <= pair[0].width());
        }
    }

    #[test]
    fn seq_over_is_monotonically_increasing_within_a_sweep() {
        let queries = generate(Pattern::SeqOver, &spec(200));
        for pair in queries.windows(2) {
            assert!(pair[1].low >= pair[0].low, "{pair:?}");
        }
    }

    #[test]
    fn zoom_in_alt_alternates_between_the_ends() {
        let queries = generate(Pattern::ZoomInAlt, &spec(10));
        assert!(queries[0].low < DOMAIN / 2);
        assert!(queries[1].high > DOMAIN / 2);
        assert!(queries[2].low >= queries[0].low);
        assert!(queries[3].high <= queries[1].high);
    }

    #[test]
    fn skew_pattern_concentrates_queries_near_the_centre() {
        let queries = generate(Pattern::Skew, &spec(1_000));
        let near_center = queries
            .iter()
            .filter(|q| {
                let mid = q.low + q.width() / 2;
                mid > DOMAIN * 4 / 10 && mid < DOMAIN * 6 / 10
            })
            .count();
        assert!(near_center as f64 > 0.8 * queries.len() as f64);
    }

    #[test]
    fn point_query_specs_produce_point_queries() {
        for pattern in Pattern::POINT_QUERY_PATTERNS {
            let queries = generate(pattern, &WorkloadSpec::point(DOMAIN, 100));
            assert!(queries.iter().all(RangeQuery::is_point), "{pattern}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(Pattern::Random, &spec(100).with_seed(5));
        let b = generate(Pattern::Random, &spec(100).with_seed(5));
        let c = generate(Pattern::Random, &spec(100).with_seed(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_query_helpers() {
        let q = RangeQuery::new(10, 5);
        assert_eq!(q, RangeQuery { low: 5, high: 10 });
        assert_eq!(q.width(), 6);
        assert!(!q.is_point());
        assert!(RangeQuery::new(3, 3).is_point());
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn invalid_selectivity_rejected() {
        let _ = spec(10).with_selectivity(0.0);
    }
}
