//! Float and string key-domain workloads.
//!
//! The paper evaluates on integer keys; the serving stack opens float and
//! string columns through order-preserving encodings
//! (`pi_storage::encoding`). This module generates the data sets and
//! query streams for those domains, mirroring [`crate::data`]'s contract:
//! deterministic per seed, sized by parameters, with a uniform and a
//! skewed variant of each distribution.
//!
//! * **Floats** — values over a symmetric domain `[-half, half)` so both
//!   encoding branches (negative: all bits flipped; non-negative: sign
//!   bit flipped) are exercised; the skewed variant concentrates 90% of
//!   the mass in the middle tenth, like the paper's skewed integers.
//! * **Strings** — lowercase words of bounded length; the skewed variant
//!   gives 90% of the rows a shared hot prefix, which both drifts the
//!   equi-depth shard weights *and* piles rows onto neighbouring (or,
//!   for prefixes ≥ 8 bytes, identical) codes — the stress case for the
//!   typed layer's exact-match tie-break path.
//!
//! Query streams are closed ranges in the key domain (`(low, high)` with
//! `low <= high` under the domain's total order), generated independently
//! of the data so selectivity varies the way served traffic does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Distribution;

/// Generates `n` floats over the symmetric domain `[-half, half)`.
///
/// `Distribution::UniformRandom` draws uniformly over the whole domain;
/// `Distribution::Skewed` puts 90% of the values in the middle tenth
/// (straddling zero, so the sign-handling paths of the encoding stay
/// hot).
pub fn float_data(distribution: Distribution, n: usize, half: f64, seed: u64) -> Vec<f64> {
    assert!(half > 0.0, "float domain half-width must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let u = match distribution {
            Distribution::UniformRandom => rng.gen::<f64>(),
            Distribution::Skewed => {
                if rng.gen::<f64>() < 0.9 {
                    // Middle tenth of the [0, 1) unit domain.
                    0.45 + rng.gen::<f64>() * 0.1
                } else {
                    rng.gen::<f64>()
                }
            }
        };
        values.push(u * 2.0 * half - half);
    }
    values
}

/// Generates `count` float range queries over `[-half, half)`: each query
/// is `width`-wide (as a fraction of the domain) with a uniformly random
/// position.
pub fn float_ranges(count: usize, half: f64, width: f64, seed: u64) -> Vec<(f64, f64)> {
    assert!(half > 0.0, "float domain half-width must be positive");
    assert!(
        (0.0..=1.0).contains(&width),
        "range width is a domain fraction, got {width}"
    );
    let span = 2.0 * half * width;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let low = rng.gen::<f64>() * (2.0 * half - span) - half;
            (low, low + span)
        })
        .collect()
}

/// Length bounds of generated strings (inclusive).
const STRING_LEN: std::ops::RangeInclusive<u64> = 1..=12;

/// The hot prefix of the skewed string distribution. Ten bytes — longer
/// than the 8-byte encoded prefix — so every hot row shares one code and
/// boundary queries into the hot set exercise the exact-match tie-break
/// path, not just the encoded scan.
pub const HOT_PREFIX: &str = "progressiv";

fn random_word(rng: &mut StdRng) -> String {
    let len = rng.gen_range(STRING_LEN) as usize;
    (0..len)
        .map(|_| (b'a' + (rng.gen_range(0..26u64) as u8)) as char)
        .collect()
}

/// Generates `n` lowercase strings.
///
/// `Distribution::UniformRandom` draws independent words of 1–12
/// characters; `Distribution::Skewed` prefixes 90% of them with
/// [`HOT_PREFIX`], concentrating the rows on one encoded code.
pub fn string_data(distribution: Distribution, n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let word = random_word(&mut rng);
            match distribution {
                Distribution::UniformRandom => word,
                Distribution::Skewed => {
                    if rng.gen::<f64>() < 0.9 {
                        format!("{HOT_PREFIX}{word}")
                    } else {
                        word
                    }
                }
            }
        })
        .collect()
}

/// Generates `count` string range queries: bounds drawn from the same
/// `distribution` as the data (so a skewed workload also *queries* into
/// its hot prefix), ordered per pair.
pub fn string_ranges(distribution: Distribution, count: usize, seed: u64) -> Vec<(String, String)> {
    let bounds = string_data(distribution, 2 * count, seed ^ 0x5157_u64);
    bounds
        .chunks_exact(2)
        .map(|pair| {
            let (a, b) = (pair[0].clone(), pair[1].clone());
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_data_is_deterministic_and_in_domain() {
        let a = float_data(Distribution::UniformRandom, 5_000, 1_000.0, 7);
        let b = float_data(Distribution::UniformRandom, 5_000, 1_000.0, 7);
        assert_eq!(a, b);
        assert_ne!(
            a,
            float_data(Distribution::UniformRandom, 5_000, 1_000.0, 8)
        );
        assert!(a.iter().all(|v| (-1_000.0..1_000.0).contains(v)));
        // Both signs are exercised (the two encoding branches).
        assert!(a.iter().any(|&v| v < 0.0) && a.iter().any(|&v| v >= 0.0));
    }

    #[test]
    fn skewed_floats_concentrate_in_the_middle_tenth() {
        let v = float_data(Distribution::Skewed, 50_000, 500.0, 3);
        let hot = v.iter().filter(|&&x| (-50.0..50.0).contains(&x)).count();
        let fraction = hot as f64 / v.len() as f64;
        assert!(
            (0.85..0.96).contains(&fraction),
            "hot fraction was {fraction}"
        );
    }

    #[test]
    fn float_ranges_are_ordered_and_sized() {
        let q = float_ranges(200, 1_000.0, 0.05, 11);
        assert_eq!(q.len(), 200);
        for &(low, high) in &q {
            assert!(low <= high);
            assert!((high - low - 100.0).abs() < 1e-6, "width {}", high - low);
            assert!((-1_000.0..=1_000.0).contains(&low));
            assert!((-1_000.0..=1_000.0).contains(&high));
        }
    }

    #[test]
    fn string_data_is_deterministic_lowercase_and_bounded() {
        let a = string_data(Distribution::UniformRandom, 2_000, 5);
        assert_eq!(a, string_data(Distribution::UniformRandom, 2_000, 5));
        assert!(a
            .iter()
            .all(|s| !s.is_empty() && s.len() <= 12 && s.bytes().all(|b| b.is_ascii_lowercase())));
    }

    #[test]
    fn skewed_strings_share_the_hot_prefix() {
        assert!(
            HOT_PREFIX.len() >= 8,
            "hot prefix must exceed the code width"
        );
        let v = string_data(Distribution::Skewed, 20_000, 9);
        let hot = v.iter().filter(|s| s.starts_with(HOT_PREFIX)).count();
        let fraction = hot as f64 / v.len() as f64;
        assert!(
            (0.85..0.95).contains(&fraction),
            "hot fraction was {fraction}"
        );
    }

    #[test]
    fn string_ranges_are_ordered_and_follow_the_distribution() {
        let q = string_ranges(Distribution::Skewed, 500, 13);
        assert_eq!(q.len(), 500);
        assert!(q.iter().all(|(low, high)| low <= high));
        let into_hot = q
            .iter()
            .filter(|(low, high)| low.starts_with(HOT_PREFIX) || high.starts_with(HOT_PREFIX))
            .count();
        assert!(into_hot > 250, "skewed bounds must query the hot prefix");
    }
}
