//! Multi-client query streams for the serving engine.
//!
//! The paper evaluates a single query stream; the `pi-engine` serving
//! layer executes batches submitted by many concurrent clients. This
//! module turns one [`WorkloadSpec`] into C per-client streams: every
//! client follows its own Figure-6 pattern (or all follow the same one)
//! with a seed derived deterministically from the base seed and the client
//! id, so multi-client experiments are exactly repeatable.

use crate::patterns::{self, Pattern, RangeQuery, WorkloadSpec};

/// How query patterns are assigned to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternAssignment {
    /// Every client runs the same pattern.
    Uniform(Pattern),
    /// Client `i` runs `patterns[i % patterns.len()]`.
    RoundRobin(Vec<Pattern>),
    /// Client `i` runs `Pattern::ALL[i % 8]` — the paper's full pattern mix.
    AllPatterns,
}

/// Specification of a multi-client workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClientSpec {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Per-client workload parameters (domain, query count, selectivity,
    /// base seed).
    pub base: WorkloadSpec,
    /// Pattern assignment across clients.
    pub assignment: PatternAssignment,
}

/// One client's query stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientStream {
    /// Client identifier, `0..clients`.
    pub client: usize,
    /// The pattern this client follows.
    pub pattern: Pattern,
    /// The client's query sequence.
    pub queries: Vec<RangeQuery>,
}

impl MultiClientSpec {
    /// A multi-client workload where every client runs a different
    /// Figure-6 pattern over the same domain.
    pub fn mixed(clients: usize, domain: u64, queries_per_client: usize) -> Self {
        MultiClientSpec {
            clients,
            base: WorkloadSpec::range(domain, queries_per_client),
            assignment: PatternAssignment::AllPatterns,
        }
    }

    /// The pattern client `client` is assigned.
    pub fn pattern_for(&self, client: usize) -> Pattern {
        match &self.assignment {
            PatternAssignment::Uniform(p) => *p,
            PatternAssignment::RoundRobin(ps) => {
                assert!(
                    !ps.is_empty(),
                    "round-robin assignment needs at least one pattern"
                );
                ps[client % ps.len()]
            }
            PatternAssignment::AllPatterns => Pattern::ALL[client % Pattern::ALL.len()],
        }
    }
}

/// Derives a per-client seed that decorrelates the clients' stochastic
/// patterns (SplitMix64 finalizer over base seed and client id).
fn client_seed(base: u64, client: usize) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(client as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates every client's query stream for `spec`.
///
/// # Panics
/// Panics when `spec.clients == 0`.
pub fn generate(spec: &MultiClientSpec) -> Vec<ClientStream> {
    assert!(
        spec.clients > 0,
        "a multi-client workload needs at least one client"
    );
    (0..spec.clients)
        .map(|client| {
            let pattern = spec.pattern_for(client);
            let client_spec = spec.base.with_seed(client_seed(spec.base.seed, client));
            ClientStream {
                client,
                pattern,
                queries: patterns::generate(pattern, &client_spec),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_client_gets_its_own_stream() {
        let spec = MultiClientSpec::mixed(8, 100_000, 50);
        let streams = generate(&spec);
        assert_eq!(streams.len(), 8);
        for (i, s) in streams.iter().enumerate() {
            assert_eq!(s.client, i);
            assert_eq!(s.pattern, Pattern::ALL[i]);
            assert_eq!(s.queries.len(), 50);
            for q in &s.queries {
                assert!(q.high < 100_000);
            }
        }
    }

    #[test]
    fn same_pattern_clients_are_decorrelated() {
        let spec = MultiClientSpec {
            clients: 2,
            base: WorkloadSpec::range(1_000_000, 100),
            assignment: PatternAssignment::Uniform(Pattern::Random),
        };
        let streams = generate(&spec);
        assert_ne!(streams[0].queries, streams[1].queries);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = MultiClientSpec::mixed(4, 10_000, 20);
        assert_eq!(generate(&spec), generate(&spec));
        let reseeded = MultiClientSpec {
            base: spec.base.with_seed(99),
            ..spec.clone()
        };
        assert_ne!(generate(&spec), generate(&reseeded));
    }

    #[test]
    fn round_robin_cycles_patterns() {
        let spec = MultiClientSpec {
            clients: 5,
            base: WorkloadSpec::range(10_000, 10),
            assignment: PatternAssignment::RoundRobin(vec![Pattern::ZoomIn, Pattern::SeqOver]),
        };
        let streams = generate(&spec);
        assert_eq!(streams[0].pattern, Pattern::ZoomIn);
        assert_eq!(streams[1].pattern, Pattern::SeqOver);
        assert_eq!(streams[4].pattern, Pattern::ZoomIn);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        let _ = generate(&MultiClientSpec::mixed(0, 1_000, 10));
    }
}
