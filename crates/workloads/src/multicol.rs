//! Multi-column workloads: row sets and conjunction streams.
//!
//! The multi-column engine (`pi_engine::multicol`) executes conjunctions
//! (`WHERE a BETWEEN .. AND b BETWEEN ..`) over row-aligned column sets.
//! This module generates the matching workloads, under the crate's usual
//! contract — deterministic per seed, sized by parameters:
//!
//! * [`u64_columns`] — k row-aligned `u64` columns, independently
//!   uniform, so a predicate covering a fraction `s` of the value domain
//!   matches ≈ `s` of the rows (the selectivity knob the conjunction
//!   planner is benched against).
//! * [`conjunction_ranges`] — conjunction streams with a **target
//!   selectivity per column**: the skewed-selectivity sweep drives one
//!   column at 90% and another at 0.1%, which is exactly the case where
//!   driving the wrong column costs ~900× the validation work.
//! * [`hetero_rows`] — row-aligned u64 + f64 + string columns (reusing
//!   the [`crate::domains`] generators) for heterogeneous-table
//!   conjunctions through the column-erased facade.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Distribution;
use crate::domains::{float_data, string_data};

/// Generates `columns` row-aligned `u64` columns of `rows` values each,
/// independently uniform over `[0, domain)`. Column `c` uses seed
/// `seed + c`, so streams are reproducible per column as well as per
/// table.
pub fn u64_columns(columns: usize, rows: usize, domain: u64, seed: u64) -> Vec<Vec<u64>> {
    assert!(domain > 0, "value domain must be non-empty");
    (0..columns)
        .map(|c| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(c as u64));
            (0..rows).map(|_| rng.gen_range(0..domain)).collect()
        })
        .collect()
}

/// Generates `count` conjunctions over `[0, domain)`, one `(low, high)`
/// bound pair per entry of `selectivities`: predicate `c` covers the
/// fraction `selectivities[c]` of the domain at a uniformly random
/// position. Over uniform data ([`u64_columns`]) the domain fraction is
/// the expected row selectivity.
pub fn conjunction_ranges(
    selectivities: &[f64],
    domain: u64,
    count: usize,
    seed: u64,
) -> Vec<Vec<(u64, u64)>> {
    assert!(domain > 0, "value domain must be non-empty");
    assert!(
        selectivities.iter().all(|s| (0.0..=1.0).contains(s)),
        "selectivities are domain fractions"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            selectivities
                .iter()
                .map(|&s| {
                    // At least one value wide, never wider than the domain.
                    let span = ((domain as f64 * s) as u64).clamp(1, domain);
                    let low = rng.gen_range(0..domain.saturating_sub(span).max(1));
                    (low, low + span - 1)
                })
                .collect()
        })
        .collect()
}

/// Generates `rows` row-aligned heterogeneous rows: a `u64` id-like
/// column over `[0, rows)`, an `f64` measurement column over the
/// symmetric domain `[-half, half)`, and a lowercase string column —
/// the three key domains a heterogeneous conjunction must mix. The
/// string column uses `distribution` (its skewed variant piles 90% of
/// rows onto one hot 8-byte-prefix code, the over-selection stress case
/// for code-space candidate scans).
pub fn hetero_rows(
    distribution: Distribution,
    rows: usize,
    half: f64,
    seed: u64,
) -> (Vec<u64>, Vec<f64>, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = (0..rows)
        .map(|_| rng.gen_range(0..rows.max(1) as u64))
        .collect();
    let floats = float_data(distribution, rows, half, seed.wrapping_add(1));
    let strings = string_data(distribution, rows, seed.wrapping_add(2));
    (ids, floats, strings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_deterministic_and_row_aligned() {
        let a = u64_columns(3, 500, 10_000, 7);
        let b = u64_columns(3, 500, 10_000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|col| col.len() == 500));
        assert!(a[0] != a[1], "columns draw independent streams");
        assert!(a.iter().flatten().all(|&v| v < 10_000));
    }

    #[test]
    fn conjunction_ranges_hit_their_target_widths() {
        let domain = 1_000_000u64;
        let ranges = conjunction_ranges(&[0.9, 0.001], domain, 50, 11);
        assert_eq!(ranges.len(), 50);
        for conj in &ranges {
            assert_eq!(conj.len(), 2);
            let (lo0, hi0) = conj[0];
            let (lo1, hi1) = conj[1];
            assert_eq!(hi0 - lo0 + 1, (domain as f64 * 0.9) as u64);
            assert_eq!(hi1 - lo1 + 1, (domain as f64 * 0.001) as u64);
            assert!(hi0 < domain && hi1 < domain);
        }
    }

    #[test]
    fn degenerate_selectivities_stay_in_domain() {
        for conj in conjunction_ranges(&[0.0, 1.0], 100, 20, 3) {
            for &(low, high) in &conj {
                assert!(low <= high);
                assert!(high < 200, "span clamps keep bounds near the domain");
            }
        }
    }

    #[test]
    fn hetero_rows_are_aligned_and_deterministic() {
        let (ids, floats, strings) = hetero_rows(Distribution::UniformRandom, 300, 100.0, 5);
        assert_eq!(ids.len(), 300);
        assert_eq!(floats.len(), 300);
        assert_eq!(strings.len(), 300);
        assert!(floats.iter().all(|f| f.is_finite()));
        let again = hetero_rows(Distribution::UniformRandom, 300, 100.0, 5);
        assert_eq!(ids, again.0);
        assert_eq!(strings, again.2);
    }
}
