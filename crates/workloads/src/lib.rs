//! # pi-workloads — data sets and query workloads
//!
//! Generators for everything Section 4.1 of the Progressive Indexes paper
//! evaluates on:
//!
//! * [`data`] — the synthetic column distributions: uniformly random
//!   unique integers and a skewed distribution with 90% of the values in
//!   the middle of the domain.
//! * [`patterns`] — the eight synthetic query patterns of Figure 6
//!   (SeqOver, ZoomOutAlt, Skew, Random, SeqZoomIn, Periodic, ZoomInAlt,
//!   ZoomIn), as range- or point-query workloads.
//! * [`skyserver`] — a synthetic substitute for the SkyServer benchmark of
//!   Figure 5: a clustered, multi-modal data distribution plus a
//!   dwell-drift-jump query log.
//! * [`multi_client`] — per-client query streams (deterministic per seed)
//!   for the `pi-engine` concurrent serving layer.
//! * [`closed_loop`] — a transport-agnostic closed-loop driver running C
//!   concurrent clients against any submit function (raw executor or
//!   `pi-sched` server), reporting served/rejected counts, throughput and
//!   per-batch latency percentiles (p50/p95/p99).
//! * [`mixed`] — mixed read/write streams: range queries interleaved with
//!   inserts, deletes and updates at a configurable write fraction, for
//!   exercising mutation support on the serving stack.
//! * [`domains`] — float and string key-domain generators (uniform and
//!   skewed data, range-query streams) for the typed serving layer built
//!   on order-preserving encodings.
//! * [`multicol`] — row-aligned multi-column data sets and conjunction
//!   streams with per-column target selectivities (plus heterogeneous
//!   u64/f64/string row sets) for the multi-column query engine.
//!
//! All generators are deterministic given a seed, and all sizes are
//! parameters so the same code scales from unit tests to full experiment
//! runs.
//!
//! ## Example
//!
//! ```
//! use pi_workloads::data::{generate, Distribution};
//! use pi_workloads::patterns::{self, Pattern, WorkloadSpec};
//!
//! let column = generate(Distribution::UniformRandom, 10_000, 42);
//! let queries = patterns::generate(Pattern::SeqOver, &WorkloadSpec::range(10_000, 100));
//! assert_eq!(column.len(), 10_000);
//! assert_eq!(queries.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod closed_loop;
pub mod data;
pub mod domains;
pub mod mixed;
pub mod multi_client;
pub mod multicol;
pub mod patterns;
pub mod skyserver;

pub use closed_loop::{BatchOutcome, ClosedLoopReport, LatencyPercentiles};
pub use data::Distribution;
pub use mixed::{MixedOp, MixedSpec, WriteOp};
pub use multi_client::{ClientStream, MultiClientSpec, PatternAssignment};
pub use patterns::{Pattern, RangeQuery, WorkloadSpec};
pub use skyserver::{SkyServerConfig, SkyServerWorkload};
