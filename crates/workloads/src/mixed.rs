//! Mixed read/write workload streams.
//!
//! The paper evaluates read-only query streams; the serving stack now
//! supports interleaved mutations, so this module generates the matching
//! workload: a deterministic stream of [`MixedOp`]s — range queries
//! interleaved with inserts, deletes and updates at a configurable write
//! fraction. Like the SkyServer traces the paper evaluates against, real
//! workloads interleave writes with the query stream; this generator is
//! the substrate for benchmarking the engine under exactly that.
//!
//! The crate stays engine-agnostic (as with [`crate::closed_loop`]):
//! writes are described by the plain [`WriteOp`] value type, which the
//! engine layer maps 1:1 onto its `Mutation` type.
//!
//! Deletes and updates draw their victim values from the same domain the
//! data was generated over, so some will miss (no live occurrence); the
//! engine reports those as rejected, which is itself worth exercising.
//! [`MixedSpec::insert_domain`] lets inserts draw from a wider domain than
//! the base data to exercise digest widening and shard-boundary drift.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::patterns::RangeQuery;

/// One write against a column, as a plain value type (the engine converts
/// to its `Mutation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// Add one occurrence of the value.
    Insert(u64),
    /// Remove one live occurrence of the value.
    Delete(u64),
    /// Replace one live occurrence of `old` with `new`.
    Update {
        /// The value to remove.
        old: u64,
        /// The value to insert in its place.
        new: u64,
    },
}

/// One operation of a mixed read/write stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixedOp {
    /// A range query.
    Read(RangeQuery),
    /// A mutation.
    Write(WriteOp),
}

/// Specification of a mixed read/write stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSpec {
    /// Value domain of the base data: reads and delete/update victims are
    /// drawn from `[0, domain)`.
    pub domain: u64,
    /// Upper bound (exclusive) for inserted and updated-in values;
    /// defaults to `domain`. Set wider to push values past the original
    /// shard boundaries.
    pub insert_domain: u64,
    /// Total number of operations.
    pub ops: usize,
    /// Fraction of operations that are writes, in `[0, 1]`.
    pub write_fraction: f64,
    /// Relative weights of insert/delete/update among the writes.
    pub write_mix: (u32, u32, u32),
    /// Half-width of the generated range queries (queries are
    /// `[v, v + 2 · half_width]`, clamped to the domain).
    pub half_width: u64,
    /// Base seed; streams are exactly reproducible per seed.
    pub seed: u64,
}

impl MixedSpec {
    /// A balanced default: `ops` operations over `[0, domain)` at the
    /// given write fraction, equal insert/delete/update weights, 1%
    /// selectivity reads.
    pub fn new(domain: u64, ops: usize, write_fraction: f64) -> Self {
        MixedSpec {
            domain,
            insert_domain: domain,
            ops,
            write_fraction,
            write_mix: (1, 1, 1),
            half_width: (domain / 200).max(1),
            seed: 0xD1CE,
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the insert domain (builder style).
    pub fn with_insert_domain(mut self, insert_domain: u64) -> Self {
        self.insert_domain = insert_domain;
        self
    }

    /// Sets the insert/delete/update weights (builder style).
    ///
    /// # Panics
    /// Panics when all three weights are zero while
    /// [`MixedSpec::write_fraction`] is positive (there would be no write
    /// to generate).
    pub fn with_write_mix(mut self, insert: u32, delete: u32, update: u32) -> Self {
        self.write_mix = (insert, delete, update);
        self
    }
}

/// Generates the mixed operation stream for `spec`.
///
/// # Panics
/// Panics when `write_fraction` is outside `[0, 1]`, when the domain is
/// zero, or when a positive write fraction comes with an all-zero write
/// mix.
pub fn generate(spec: &MixedSpec) -> Vec<MixedOp> {
    assert!(
        (0.0..=1.0).contains(&spec.write_fraction),
        "write fraction must lie in [0, 1], got {}",
        spec.write_fraction
    );
    assert!(spec.domain > 0, "mixed workload needs a non-empty domain");
    let (wi, wd, wu) = spec.write_mix;
    let mix_total = wi as u64 + wd as u64 + wu as u64;
    assert!(
        spec.write_fraction == 0.0 || mix_total > 0,
        "a positive write fraction needs a non-zero write mix"
    );
    let insert_domain = spec.insert_domain.max(spec.domain);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.ops)
        .map(|_| {
            if spec.write_fraction > 0.0 && rng.gen_bool(spec.write_fraction) {
                let pick = rng.gen_range(0..mix_total);
                let write = if pick < wi as u64 {
                    WriteOp::Insert(rng.gen_range(0..insert_domain))
                } else if pick < wi as u64 + wd as u64 {
                    WriteOp::Delete(rng.gen_range(0..spec.domain))
                } else {
                    WriteOp::Update {
                        old: rng.gen_range(0..spec.domain),
                        new: rng.gen_range(0..insert_domain),
                    }
                };
                MixedOp::Write(write)
            } else {
                let low = rng.gen_range(0..spec.domain);
                let high = low
                    .saturating_add(2 * spec.half_width)
                    .min(spec.domain.saturating_sub(1));
                MixedOp::Read(RangeQuery { low, high })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let spec = MixedSpec::new(10_000, 500, 0.3);
        assert_eq!(generate(&spec), generate(&spec));
        let other = generate(&spec.clone().with_seed(9));
        assert_ne!(generate(&spec), other);
    }

    #[test]
    fn write_fraction_is_roughly_respected() {
        let spec = MixedSpec::new(10_000, 4_000, 0.25);
        let ops = generate(&spec);
        assert_eq!(ops.len(), 4_000);
        let writes = ops
            .iter()
            .filter(|op| matches!(op, MixedOp::Write(_)))
            .count();
        let fraction = writes as f64 / ops.len() as f64;
        assert!(
            (fraction - 0.25).abs() < 0.05,
            "write fraction {fraction} far from 0.25"
        );
    }

    #[test]
    fn extremes_generate_pure_streams() {
        let reads = generate(&MixedSpec::new(1_000, 200, 0.0));
        assert!(reads.iter().all(|op| matches!(op, MixedOp::Read(_))));
        let writes = generate(&MixedSpec::new(1_000, 200, 1.0));
        assert!(writes.iter().all(|op| matches!(op, MixedOp::Write(_))));
    }

    #[test]
    fn values_respect_their_domains() {
        let spec = MixedSpec::new(1_000, 2_000, 0.5).with_insert_domain(5_000);
        for op in generate(&spec) {
            match op {
                MixedOp::Read(q) => {
                    assert!(q.low <= q.high && q.high < 1_000);
                }
                MixedOp::Write(WriteOp::Insert(v)) => assert!(v < 5_000),
                MixedOp::Write(WriteOp::Delete(v)) => assert!(v < 1_000),
                MixedOp::Write(WriteOp::Update { old, new }) => {
                    assert!(old < 1_000 && new < 5_000);
                }
            }
        }
    }

    #[test]
    fn write_mix_weights_bias_the_ops() {
        let spec = MixedSpec::new(1_000, 3_000, 1.0).with_write_mix(1, 0, 0);
        assert!(generate(&spec)
            .iter()
            .all(|op| matches!(op, MixedOp::Write(WriteOp::Insert(_)))));
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn out_of_range_fraction_rejected() {
        let _ = generate(&MixedSpec::new(100, 10, 1.5));
    }
}
