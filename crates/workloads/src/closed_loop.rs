//! Closed-loop multi-client load driver.
//!
//! The serving stack (`pi-engine` executor behind a `pi-sched` server) is
//! exercised by C concurrent clients, each submitting its query stream in
//! fixed-size batches and waiting for every batch's results before
//! sending the next — the classic closed-loop model, where offered load
//! adapts to service rate and backpressure shows up as explicit
//! rejections rather than unbounded queueing.
//!
//! The driver is transport-agnostic: it calls a caller-supplied `submit`
//! closure per `(client, batch)` and only counts outcomes, so the same
//! driver measures a raw `Executor`, a `Server` front-end (blocking
//! `submit` or load-shedding `try_submit`), or any future transport,
//! without this crate depending on the engine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use pi_obs::{Histogram, HistogramSnapshot};

use crate::multi_client::ClientStream;
use crate::patterns::RangeQuery;

/// Outcome of one submitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The batch was executed and its results returned.
    Served,
    /// The batch was shed (e.g. the server reported a full queue and the
    /// client chose not to retry).
    Rejected,
}

/// Per-batch latency percentiles of one closed-loop run, measured from
/// batch submission to batch completion (served batches only). Read out
/// of a [`pi_obs::Histogram`], so each value is a √2 bucket upper bound:
/// never below the exact nearest-rank latency, at most one bucket above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyPercentiles {
    /// Median batch latency.
    pub p50: Duration,
    /// 95th-percentile batch latency.
    pub p95: Duration,
    /// 99th-percentile batch latency — the paper's robustness story at
    /// serving granularity: progressive budgets exist precisely to keep
    /// the tail close to the median.
    pub p99: Duration,
}

impl LatencyPercentiles {
    /// Computes percentiles from raw per-batch latencies (any order) by
    /// folding them through a [`pi_obs::Histogram`] — the same estimator
    /// the serving stack exports, so driver reports and server metrics
    /// agree on what "p99" means. Each reported percentile is the √2
    /// bucket upper bound: never below the exact nearest-rank sample and
    /// at most one bucket above it. Returns all-zero percentiles for an
    /// empty sample.
    pub fn from_samples(samples: Vec<Duration>) -> Self {
        let histogram = Histogram::new();
        for sample in samples {
            histogram.record_duration(sample);
        }
        LatencyPercentiles::from_histogram(&histogram.snapshot())
    }

    /// Reads percentiles out of an already-aggregated histogram snapshot,
    /// e.g. a server-side `*_ns` latency histogram merged across workers.
    pub fn from_histogram(snapshot: &HistogramSnapshot) -> Self {
        LatencyPercentiles {
            p50: snapshot.quantile_duration(0.50),
            p95: snapshot.quantile_duration(0.95),
            p99: snapshot.quantile_duration(0.99),
        }
    }
}

/// Aggregate result of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopReport {
    /// Queries whose batch was served.
    pub served: usize,
    /// Queries whose batch was shed.
    pub rejected: usize,
    /// Wall-clock duration of the whole run (all clients).
    pub elapsed: Duration,
    /// Per-batch latency percentiles over the served batches.
    pub latency: LatencyPercentiles,
}

impl ClosedLoopReport {
    /// Served queries per second of wall-clock time.
    pub fn queries_per_second(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.served as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs every client stream to completion, one OS thread per client, each
/// submitting batches of `batch_size` queries back-to-back.
///
/// `submit` is called as `submit(client, batch)` and must block until the
/// batch has been served (closed loop), returning how the batch fared.
///
/// # Panics
/// Panics when `batch_size == 0`.
pub fn drive<F>(streams: &[ClientStream], batch_size: usize, submit: F) -> ClosedLoopReport
where
    F: Fn(usize, &[RangeQuery]) -> BatchOutcome + Sync,
{
    let items: Vec<(usize, &[RangeQuery])> = streams
        .iter()
        .map(|s| (s.client, s.queries.as_slice()))
        .collect();
    drive_items(&items, batch_size, submit)
}

/// The item-generic closed loop behind [`drive`]: each `(client, stream)`
/// pair runs on its own OS thread, submitting `batch_size`-item chunks
/// back to back. Typed key-domain workloads (float or string ranges from
/// [`crate::domains`]) and mixed read/write streams drive the same loop
/// as plain integer range queries.
///
/// # Panics
/// Panics when `batch_size == 0`.
pub fn drive_items<Q, F>(
    streams: &[(usize, &[Q])],
    batch_size: usize,
    submit: F,
) -> ClosedLoopReport
where
    Q: Sync,
    F: Fn(usize, &[Q]) -> BatchOutcome + Sync,
{
    assert!(batch_size > 0, "batch size must be positive");
    let served = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    // One shared concurrent histogram instead of a locked sample buffer:
    // recording is a single relaxed atomic increment, so latency
    // accounting never serialises the clients.
    let latency = Histogram::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for &(client, stream) in streams {
            let submit = &submit;
            let served = &served;
            let rejected = &rejected;
            let latency = &latency;
            scope.spawn(move || {
                for batch in stream.chunks(batch_size) {
                    let submitted = Instant::now();
                    match submit(client, batch) {
                        BatchOutcome::Served => {
                            latency.record_duration(submitted.elapsed());
                            served.fetch_add(batch.len(), Ordering::Relaxed)
                        }
                        BatchOutcome::Rejected => {
                            rejected.fetch_add(batch.len(), Ordering::Relaxed)
                        }
                    };
                }
            });
        }
    });
    ClosedLoopReport {
        served: served.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: LatencyPercentiles::from_histogram(&latency.snapshot()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_client::{self, MultiClientSpec};

    #[test]
    fn drives_every_query_of_every_client() {
        let streams = multi_client::generate(&MultiClientSpec::mixed(4, 10_000, 25));
        let report = drive(&streams, 10, |_client, _batch| BatchOutcome::Served);
        assert_eq!(report.served, 4 * 25);
        assert_eq!(report.rejected, 0);
        assert!(report.queries_per_second() > 0.0);
    }

    #[test]
    fn rejected_batches_are_counted_separately() {
        let streams = multi_client::generate(&MultiClientSpec::mixed(2, 1_000, 30));
        // Client 0 is always shed, client 1 always served.
        let report = drive(&streams, 10, |client, _batch| {
            if client == 0 {
                BatchOutcome::Rejected
            } else {
                BatchOutcome::Served
            }
        });
        assert_eq!(report.served, 30);
        assert_eq!(report.rejected, 30);
    }

    #[test]
    fn trailing_partial_batch_is_submitted() {
        let streams = multi_client::generate(&MultiClientSpec::mixed(1, 1_000, 25));
        let sizes = std::sync::Mutex::new(Vec::new());
        drive(&streams, 10, |_c, batch| {
            sizes.lock().unwrap().push(batch.len());
            BatchOutcome::Served
        });
        assert_eq!(*sizes.lock().unwrap(), vec![10, 10, 5]);
    }

    #[test]
    fn drive_items_accepts_typed_streams() {
        let a: Vec<(f64, f64)> = (0..25).map(|i| (i as f64, i as f64 + 1.0)).collect();
        let b: Vec<(f64, f64)> = (0..15).map(|i| (-(i as f64), i as f64)).collect();
        let streams = [(0usize, a.as_slice()), (1, b.as_slice())];
        let report = drive_items(&streams, 10, |_client, batch: &[(f64, f64)]| {
            assert!(!batch.is_empty() && batch.len() <= 10);
            BatchOutcome::Served
        });
        assert_eq!(report.served, 40);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = drive(&[], 0, |_c, _b| BatchOutcome::Served);
    }

    #[test]
    fn latency_percentiles_are_ordered_and_populated() {
        let streams = multi_client::generate(&MultiClientSpec::mixed(2, 1_000, 40));
        let report = drive(&streams, 10, |_c, _b| {
            std::hint::black_box((0..2_000u64).sum::<u64>());
            BatchOutcome::Served
        });
        let l = report.latency;
        assert!(l.p50 > Duration::ZERO, "p50 must be measured");
        assert!(
            l.p50 <= l.p95 && l.p95 <= l.p99,
            "percentiles must be ordered"
        );
    }

    /// `[exact, 2·exact]`: a histogram quantile is the √2-bucket upper
    /// bound, never below the exact nearest-rank sample and at most one
    /// bucket (≤ ×2) above it.
    fn within_one_bucket(approx: Duration, exact: Duration) {
        assert!(approx >= exact, "{approx:?} below exact {exact:?}");
        assert!(
            approx.as_nanos() <= (exact.as_nanos() * 2).max(6),
            "{approx:?} more than one bucket above exact {exact:?}"
        );
    }

    #[test]
    fn percentiles_from_known_samples() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let l = LatencyPercentiles::from_samples(samples);
        within_one_bucket(l.p50, Duration::from_micros(50));
        within_one_bucket(l.p95, Duration::from_micros(95));
        within_one_bucket(l.p99, Duration::from_micros(99));
        assert_eq!(
            LatencyPercentiles::from_samples(Vec::new()),
            LatencyPercentiles::default()
        );
        let single = LatencyPercentiles::from_samples(vec![Duration::from_millis(3)]);
        within_one_bucket(single.p50, Duration::from_millis(3));
        within_one_bucket(single.p99, Duration::from_millis(3));
    }

    #[test]
    fn percentiles_track_exact_sort_within_one_bucket() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(1usize..500);
            let samples: Vec<Duration> = (0..n)
                .map(|_| Duration::from_nanos(rng.gen_range(1u64..50_000_000)))
                .collect();
            let approx = LatencyPercentiles::from_samples(samples.clone());
            let mut sorted = samples;
            sorted.sort_unstable();
            let exact_at = |p: f64| {
                let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            };
            within_one_bucket(approx.p50, exact_at(0.50));
            within_one_bucket(approx.p95, exact_at(0.95));
            within_one_bucket(approx.p99, exact_at(0.99));
        }
    }

    #[test]
    fn rejected_batches_do_not_contribute_latency() {
        let streams = multi_client::generate(&MultiClientSpec::mixed(1, 1_000, 20));
        let report = drive(&streams, 10, |_c, _b| BatchOutcome::Rejected);
        assert_eq!(report.latency, LatencyPercentiles::default());
        assert_eq!(report.served, 0);
    }
}
