//! A SkyServer-like workload (Section 4.1, Figure 5 of the paper).
//!
//! The paper's real-world benchmark uses the Sloan Digital Sky Survey:
//! range queries from the public SkyServer query log applied to the
//! *Right Ascension* column of `PhotoObjAll` (~600 million rows, ~160,000
//! queries). Neither the data nor the log ships with this repository, so
//! this module generates a synthetic substitute that preserves the two
//! properties the indexing algorithms are sensitive to:
//!
//! 1. **Data distribution** (Figure 5a): right ascension is not uniform —
//!    observations cluster around the survey's scan stripes. The generator
//!    produces a multi-modal mixture of Gaussian-like clusters over the
//!    domain with a uniform background.
//! 2. **Query pattern** (Figure 5b): the query log dwells on one region of
//!    the sky for a stretch of queries, drifts slowly within it, then
//!    jumps to a different region. The generator produces exactly that
//!    dwell-drift-jump structure.
//!
//! Scale is a parameter: the defaults target laptop-scale runs
//! (10^6 elements, 10^4 queries), and the experiment binaries accept
//! larger sizes to approach the paper's setting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Value;
use crate::patterns::RangeQuery;

/// Configuration of the synthetic SkyServer substitute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkyServerConfig {
    /// Number of column elements to generate.
    pub column_size: usize,
    /// Number of queries in the workload.
    pub query_count: usize,
    /// Value domain `[0, domain)` (the paper's right-ascension values are
    /// mapped onto an integer domain).
    pub domain: u64,
    /// Number of value clusters ("scan stripes") in the data distribution.
    pub clusters: usize,
    /// Number of focus regions the query log visits.
    pub focus_regions: usize,
    /// Fraction of the domain a single range query covers on average.
    pub query_width_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkyServerConfig {
    fn default() -> Self {
        SkyServerConfig {
            column_size: 1_000_000,
            query_count: 10_000,
            domain: 1_000_000,
            clusters: 12,
            focus_regions: 20,
            query_width_fraction: 0.02,
            seed: 0x5C1,
        }
    }
}

impl SkyServerConfig {
    /// A small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        SkyServerConfig {
            column_size: 50_000,
            query_count: 500,
            domain: 100_000,
            clusters: 6,
            focus_regions: 8,
            query_width_fraction: 0.02,
            seed: 0x5C1,
        }
    }

    /// Scales column size and query count relative to the default
    /// configuration, keeping the shape parameters.
    pub fn scaled(column_size: usize, query_count: usize) -> Self {
        SkyServerConfig {
            column_size,
            query_count,
            domain: column_size.max(2) as u64,
            ..Self::default()
        }
    }
}

/// The generated workload: the column data and the query log.
#[derive(Debug, Clone)]
pub struct SkyServerWorkload {
    /// Column values (multi-modal, clustered distribution).
    pub data: Vec<Value>,
    /// Query log (dwell-drift-jump range queries).
    pub queries: Vec<RangeQuery>,
    /// The configuration that produced this workload.
    pub config: SkyServerConfig,
}

/// Generates the SkyServer-like data column and query log.
pub fn generate(config: SkyServerConfig) -> SkyServerWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let data = generate_data(&config, &mut rng);
    let queries = generate_queries(&config, &mut rng);
    SkyServerWorkload {
        data,
        queries,
        config,
    }
}

/// Multi-modal data distribution: a mixture of `clusters` Gaussian-like
/// clusters (centres spread over the domain, widths a few percent of the
/// domain) plus a 10% uniform background.
fn generate_data(config: &SkyServerConfig, rng: &mut StdRng) -> Vec<Value> {
    let domain = config.domain.max(2);
    let clusters = config.clusters.max(1);
    // Cluster centres roughly evenly spaced but jittered, with random
    // weights so some "stripes" are denser than others (as in Fig. 5a).
    let mut centres = Vec::with_capacity(clusters);
    let mut weights = Vec::with_capacity(clusters);
    for i in 0..clusters {
        let base = domain * (2 * i as u64 + 1) / (2 * clusters as u64);
        let jitter_span = (domain / (4 * clusters as u64)).max(1);
        let jitter = rng.gen_range(0..jitter_span);
        centres.push((base + jitter).min(domain - 1));
        weights.push(rng.gen_range(1..=4u32));
    }
    let total_weight: u32 = weights.iter().sum();
    let sigma = (domain / (6 * clusters as u64)).max(1);

    let mut data = Vec::with_capacity(config.column_size);
    for _ in 0..config.column_size {
        if rng.gen::<f64>() < 0.1 {
            data.push(rng.gen_range(0..domain));
            continue;
        }
        // Pick a cluster proportionally to its weight.
        let mut pick = rng.gen_range(0..total_weight);
        let mut cluster = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                cluster = i;
                break;
            }
            pick -= w;
        }
        // Approximate a Gaussian around the centre with the sum of three
        // uniform draws (Irwin–Hall), cheap and fully deterministic.
        let spread = sigma * 3;
        let offset: i64 = (0..3)
            .map(|_| rng.gen_range(0..=2 * spread) as i64 - spread as i64)
            .sum::<i64>()
            / 3;
        let value = centres[cluster] as i64 + offset;
        data.push(value.clamp(0, domain as i64 - 1) as Value);
    }
    data
}

/// Dwell-drift-jump query log: the workload dwells on a focus region for a
/// stretch of queries, drifting slowly within it, then jumps to the next
/// focus region (as in Fig. 5b).
fn generate_queries(config: &SkyServerConfig, rng: &mut StdRng) -> Vec<RangeQuery> {
    let domain = config.domain.max(2);
    let width = ((domain as f64 * config.query_width_fraction) as u64).clamp(1, domain - 1);
    let regions = config.focus_regions.max(1);
    let per_region = (config.query_count / regions).max(1);
    let mut queries = Vec::with_capacity(config.query_count);

    let mut region_centre = rng.gen_range(0..domain);
    let drift = (domain / 200).max(1);
    for i in 0..config.query_count {
        if i % per_region == 0 {
            // Jump to a new focus region.
            region_centre = rng.gen_range(0..domain);
        } else {
            // Drift slowly within the current region.
            let step = rng.gen_range(0..=drift);
            region_centre = if rng.gen::<bool>() {
                region_centre.saturating_add(step).min(domain - 1)
            } else {
                region_centre.saturating_sub(step)
            };
        }
        let jitter = rng.gen_range(0..=width / 2);
        let low = region_centre.saturating_sub(width / 2 + jitter);
        let low = low.min(domain - width);
        queries.push(RangeQuery::new(low, low + width - 1));
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sizes_match_config() {
        let w = generate(SkyServerConfig::tiny());
        assert_eq!(w.data.len(), w.config.column_size);
        assert_eq!(w.queries.len(), w.config.query_count);
        assert!(w.data.iter().all(|&v| v < w.config.domain));
        assert!(w.queries.iter().all(|q| q.high < w.config.domain));
    }

    #[test]
    fn data_distribution_is_not_uniform() {
        let w = generate(SkyServerConfig::tiny());
        // Split the domain into 20 histogram bins; a clustered distribution
        // must have markedly uneven bins.
        let bins = 20usize;
        let mut histogram = vec![0usize; bins];
        for &v in &w.data {
            let b = (v as u128 * bins as u128 / w.config.domain as u128) as usize;
            histogram[b.min(bins - 1)] += 1;
        }
        let max = *histogram.iter().max().unwrap();
        let min = *histogram.iter().min().unwrap();
        assert!(
            max > 2 * min.max(1),
            "expected a clustered histogram, got {histogram:?}"
        );
    }

    #[test]
    fn query_log_dwells_before_jumping() {
        let w = generate(SkyServerConfig::tiny());
        // Consecutive queries within a dwell move by much less than the
        // domain; count how many "big jumps" occur — it should be roughly
        // the number of focus regions, far fewer than the query count.
        let domain = w.config.domain;
        let big_jumps = w
            .queries
            .windows(2)
            .filter(|p| {
                let a = p[0].low as i64;
                let b = p[1].low as i64;
                (a - b).unsigned_abs() > domain / 10
            })
            .count();
        assert!(big_jumps < w.queries.len() / 5, "{big_jumps} jumps");
        assert!(big_jumps >= 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(SkyServerConfig::tiny());
        let b = generate(SkyServerConfig::tiny());
        assert_eq!(a.data, b.data);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn scaled_config_adjusts_domain() {
        let c = SkyServerConfig::scaled(5_000, 100);
        assert_eq!(c.column_size, 5_000);
        assert_eq!(c.query_count, 100);
        assert_eq!(c.domain, 5_000);
    }
}
