//! WAL record types and their byte codec.
//!
//! The write-ahead log is a sequence of length-framed, CRC-protected
//! records (framing lives in [`crate::wal`]); this module owns what goes
//! *inside* a frame. Three record kinds exist:
//!
//! * [`WalRecord::MutationBatch`] — one durable write batch against one
//!   column, exactly as submitted. Replay re-applies the batch through
//!   the same serial path the live system used, so rejected mutations
//!   (deletes of absent values) are re-rejected deterministically.
//! * [`WalRecord::Checkpoint`] — a marker that snapshot `snapshot_id`
//!   was made durable; everything before it is already reflected in that
//!   snapshot. Informational during replay (recovery trusts the
//!   snapshot's own WAL sequence number, not the marker).
//! * [`WalRecord::Rebalance`] — the named columns re-drew their
//!   equi-depth shard boundaries at this point of the mutation stream.
//!   Boundary re-draws are deterministic functions of the live values,
//!   so logging *that* a re-balance happened (and where in the stream)
//!   is enough for replay to reproduce the exact boundaries — recovery
//!   can never resurrect stale pre-rebalance shard layouts.

use pi_core::mutation::Mutation;
use pi_storage::snapshot::{put_str, put_u32, put_u64, ByteReader, CodecError};

/// One logical entry of the write-ahead log. See the [module
/// docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A durable mutation batch against `column`.
    MutationBatch {
        /// Name of the mutated column.
        column: String,
        /// The batch, in submission order.
        ops: Vec<Mutation>,
    },
    /// Snapshot `snapshot_id` was made durable before this point.
    Checkpoint {
        /// Identifier of the durable snapshot.
        snapshot_id: u64,
    },
    /// The named columns re-drew their shard boundaries here.
    Rebalance {
        /// Names of the re-balanced columns.
        columns: Vec<String>,
    },
}

const TAG_MUTATION_BATCH: u8 = 1;
const TAG_CHECKPOINT: u8 = 2;
const TAG_REBALANCE: u8 = 3;

const MUT_INSERT: u8 = 1;
const MUT_DELETE: u8 = 2;
const MUT_UPDATE: u8 = 3;

fn put_mutation(out: &mut Vec<u8>, m: &Mutation) {
    match *m {
        Mutation::Insert(v) => {
            out.push(MUT_INSERT);
            put_u64(out, v);
        }
        Mutation::Delete(v) => {
            out.push(MUT_DELETE);
            put_u64(out, v);
        }
        Mutation::Update { old, new } => {
            out.push(MUT_UPDATE);
            put_u64(out, old);
            put_u64(out, new);
        }
    }
}

fn read_mutation(r: &mut ByteReader<'_>) -> Result<Mutation, CodecError> {
    match r.take(1)?[0] {
        MUT_INSERT => Ok(Mutation::Insert(r.u64()?)),
        MUT_DELETE => Ok(Mutation::Delete(r.u64()?)),
        MUT_UPDATE => Ok(Mutation::Update {
            old: r.u64()?,
            new: r.u64()?,
        }),
        _ => Err(CodecError::Invalid("unknown mutation tag")),
    }
}

impl WalRecord {
    /// Appends this record's payload encoding (no framing, no checksum —
    /// [`crate::wal::WalWriter`] adds both).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::MutationBatch { column, ops } => {
                out.push(TAG_MUTATION_BATCH);
                put_str(out, column);
                put_u32(out, ops.len() as u32);
                for m in ops {
                    put_mutation(out, m);
                }
            }
            WalRecord::Checkpoint { snapshot_id } => {
                out.push(TAG_CHECKPOINT);
                put_u64(out, *snapshot_id);
            }
            WalRecord::Rebalance { columns } => {
                out.push(TAG_REBALANCE);
                put_u32(out, columns.len() as u32);
                for name in columns {
                    put_str(out, name);
                }
            }
        }
    }

    /// Decodes one record payload, requiring the reader to be fully
    /// consumed (a frame must hold exactly one record).
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let record = match r.take(1)?[0] {
            TAG_MUTATION_BATCH => {
                let column = r.str()?;
                let count = r.u32()? as usize;
                // Each mutation takes at least 9 bytes.
                if r.remaining() / 9 < count {
                    return Err(CodecError::Truncated);
                }
                let mut ops = Vec::with_capacity(count);
                for _ in 0..count {
                    ops.push(read_mutation(&mut r)?);
                }
                WalRecord::MutationBatch { column, ops }
            }
            TAG_CHECKPOINT => WalRecord::Checkpoint {
                snapshot_id: r.u64()?,
            },
            TAG_REBALANCE => {
                let count = r.u32()? as usize;
                if r.remaining() / 4 < count {
                    return Err(CodecError::Truncated);
                }
                let mut columns = Vec::with_capacity(count);
                for _ in 0..count {
                    columns.push(r.str()?);
                }
                WalRecord::Rebalance { columns }
            }
            _ => return Err(CodecError::Invalid("unknown record tag")),
        };
        if !r.is_empty() {
            return Err(CodecError::Invalid("trailing bytes in record frame"));
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(record: WalRecord) {
        let mut out = Vec::new();
        record.encode(&mut out);
        assert_eq!(WalRecord::decode(&out).unwrap(), record);
    }

    #[test]
    fn all_record_kinds_round_trip() {
        round_trip(WalRecord::MutationBatch {
            column: "ra".into(),
            ops: vec![
                Mutation::Insert(42),
                Mutation::Delete(7),
                Mutation::Update { old: 1, new: 9 },
            ],
        });
        round_trip(WalRecord::MutationBatch {
            column: String::new(),
            ops: vec![],
        });
        round_trip(WalRecord::Checkpoint { snapshot_id: 3 });
        round_trip(WalRecord::Rebalance {
            columns: vec!["ra".into(), "dec".into()],
        });
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let mut out = Vec::new();
        WalRecord::MutationBatch {
            column: "a".into(),
            ops: vec![Mutation::Insert(5)],
        }
        .encode(&mut out);
        for cut in 0..out.len() {
            assert!(WalRecord::decode(&out[..cut]).is_err(), "cut at {cut}");
        }
        assert!(WalRecord::decode(&[0xFF, 0, 0]).is_err(), "unknown tag");
        // Trailing bytes after a well-formed record are an error too.
        let mut padded = out.clone();
        padded.push(0);
        assert!(WalRecord::decode(&padded).is_err());
    }

    #[test]
    fn announced_counts_are_sanity_checked() {
        // A batch announcing 2^32-1 mutations with a near-empty payload
        // must fail before any allocation.
        let mut out = vec![TAG_MUTATION_BATCH];
        put_str(&mut out, "a");
        put_u32(&mut out, u32::MAX);
        assert_eq!(WalRecord::decode(&out), Err(CodecError::Truncated));
    }
}
