//! The append-only write-ahead log: storage abstraction, record framing,
//! group commit and tail validation.
//!
//! ## Frame format
//!
//! Every record occupies one frame:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [seq: u64 LE] [payload: len-8 bytes]
//! ```
//!
//! `len` counts the `seq` field plus the payload; `crc` is
//! CRC-32/ISO-HDLC ([`crate::crc::crc32`]) over those same bytes.
//! Sequence numbers are assigned by the writer and strictly increase for
//! the lifetime of the log — across checkpoint truncations too — which is
//! how the reader rejects duplicated or reordered suffixes (a torn
//! re-append of an old frame decodes fine but fails the monotonicity
//! check).
//!
//! ## Durability model
//!
//! [`WalWriter`] appends frames into a group-commit buffer and lets the
//! [`FsyncPolicy`] decide when the buffer is pushed to the
//! [`WalStorage`] and fsynced. Everything up to the last sync is the
//! *durable prefix*; a crash loses at most the buffered/unsynced suffix,
//! and recovery ([`scan_wal`] + truncation) restores exactly the durable
//! prefix — never a torn or corrupt tail.
//!
//! ## Fault injection
//!
//! [`MemWal`] implements the storage trait in memory behind a shared
//! [`MemWalHandle`], which can simulate a crash (drop everything after
//! the last fsync), truncate to an arbitrary offset (torn write), flip a
//! bit (media corruption) or duplicate a suffix (misdirected re-append).
//! The recovery tests drive every crash scenario deterministically,
//! without a real crash.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pi_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::crc::crc32;
use crate::record::WalRecord;

/// Frame header size: `len` (4) + `crc` (4).
const FRAME_HEADER: usize = 8;
/// `seq` field size inside the measured region.
const SEQ_BYTES: usize = 8;
/// Upper bound on a single frame's measured length; anything larger is
/// treated as corruption rather than allocated.
const MAX_FRAME_LEN: u32 = 1 << 30;

/// Byte-level storage under the write-ahead log. Implementations only
/// need append/sync/read/truncate — the framing, checksums and
/// group-commit policy all live in [`WalWriter`] / [`scan_wal`].
pub trait WalStorage: Send {
    /// Appends raw bytes at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Makes every appended byte durable (fsync).
    fn sync(&mut self) -> io::Result<()>;
    /// Current log length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// `true` when the log holds no bytes.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Reads the whole log.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;
    /// Truncates the log to `len` bytes (drops the suffix) and makes the
    /// truncation durable.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// File-backed [`WalStorage`]: a single append-only file.
pub struct FileWal {
    file: std::fs::File,
}

impl FileWal {
    /// Opens (creating if missing) the log file at `path`.
    pub fn open(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileWal { file })
    }
}

impl WalStorage for FileWal {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut out = Vec::new();
        self.file.read_to_end(&mut out)?;
        Ok(out)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()
    }
}

/// Shared state behind [`MemWal`] and its fault-injection handle.
#[derive(Debug, Clone, Default)]
struct MemWalState {
    bytes: Vec<u8>,
    /// Length of the durable prefix: everything at or before the last
    /// [`WalStorage::sync`] (or truncation).
    synced_len: usize,
}

/// Handle onto an in-memory WAL: clone it freely, hand
/// [`MemWalHandle::storage`] to a writer, and keep the handle to inspect
/// the log or inject faults between a simulated crash and recovery.
#[derive(Debug, Clone, Default)]
pub struct MemWalHandle {
    state: Arc<Mutex<MemWalState>>,
}

impl MemWalHandle {
    /// A fresh, empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A [`WalStorage`] view over this log.
    pub fn storage(&self) -> MemWal {
        MemWal {
            handle: self.clone(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemWalState> {
        self.state.lock().expect("mem-wal state poisoned")
    }

    /// Current log length in bytes.
    pub fn len(&self) -> usize {
        self.lock().bytes.len()
    }

    /// `true` when the log holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of the durable (fsynced) prefix.
    pub fn synced_len(&self) -> usize {
        self.lock().synced_len
    }

    /// Simulates a crash: every byte appended after the last fsync is
    /// lost (the OS page cache never reached the platter).
    pub fn crash(&self) {
        let mut state = self.lock();
        let synced = state.synced_len;
        state.bytes.truncate(synced);
    }

    /// Truncates the log to exactly `len` bytes — a torn write that cut
    /// a frame (or the tail of one) in half.
    pub fn truncate_to(&self, len: usize) {
        let mut state = self.lock();
        state.bytes.truncate(len);
        state.synced_len = state.synced_len.min(len);
    }

    /// Flips one bit of the stored log — silent media corruption.
    pub fn flip_bit(&self, byte: usize, bit: u8) {
        let mut state = self.lock();
        if let Some(b) = state.bytes.get_mut(byte) {
            *b ^= 1 << (bit % 8);
        }
    }

    /// An independent deep copy of the current log state, for crash
    /// matrices that mutilate many copies of the same history.
    pub fn fork(&self) -> MemWalHandle {
        let state = self.lock();
        MemWalHandle {
            state: Arc::new(Mutex::new(state.clone())),
        }
    }

    /// Re-appends the suffix starting at `from` — a misdirected or
    /// replayed write duplicating already-logged frames.
    pub fn duplicate_suffix(&self, from: usize) {
        let mut state = self.lock();
        if from < state.bytes.len() {
            let dup = state.bytes[from..].to_vec();
            state.bytes.extend_from_slice(&dup);
        }
    }
}

/// In-memory [`WalStorage`]; create through [`MemWalHandle::storage`].
#[derive(Debug, Clone)]
pub struct MemWal {
    handle: MemWalHandle,
}

impl MemWal {
    /// The fault-injection handle sharing this storage's state.
    pub fn handle(&self) -> MemWalHandle {
        self.handle.clone()
    }
}

impl WalStorage for MemWal {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.handle.lock().bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut state = self.handle.lock();
        state.synced_len = state.bytes.len();
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.handle.len() as u64)
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.handle.lock().bytes.clone())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut state = self.handle.lock();
        state.bytes.truncate(len as usize);
        state.synced_len = state.bytes.len();
        Ok(())
    }
}

/// When the group-commit buffer is pushed to storage and fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every appended record is flushed and fsynced before the append
    /// returns: zero loss window, one fsync per record.
    Always,
    /// Flush and fsync once `n` records have accumulated (group commit);
    /// a crash loses at most the last `n - 1` records.
    EveryN(usize),
    /// Flush and fsync when at least this much time has passed since the
    /// last sync; a crash loses at most one interval of records.
    Interval(Duration),
}

/// The `wal.*` metric handles (see [`WalMetrics::register`]). Counters
/// and gauges are always live; `group_commit_size` records per flush and
/// `recovery_ms` is stamped by recovery.
pub struct WalMetrics {
    /// Records appended to the log.
    pub appends: Arc<Counter>,
    /// Framed bytes pushed to storage.
    pub bytes: Arc<Counter>,
    /// Fsync calls issued by the writer.
    pub fsyncs: Arc<Counter>,
    /// Checkpoints completed (snapshot durable + log truncated).
    pub checkpoints: Arc<Counter>,
    /// Records per group-commit flush.
    pub group_commit_size: Arc<Histogram>,
    /// Records replayed by the last recovery.
    pub replay_records: Arc<Counter>,
    /// Wall time of the last recovery, milliseconds.
    pub recovery_ms: Arc<Gauge>,
}

impl WalMetrics {
    /// Registers the `wal.*` namespace in `registry`:
    /// `wal.appends`, `wal.bytes`, `wal.fsyncs`, `wal.checkpoints`,
    /// `wal.group_commit_size`, `wal.replay_records`, `wal.recovery_ms`.
    pub fn register(registry: &MetricsRegistry) -> Arc<WalMetrics> {
        Arc::new(WalMetrics {
            appends: registry.counter("wal.appends"),
            bytes: registry.counter("wal.bytes"),
            fsyncs: registry.counter("wal.fsyncs"),
            checkpoints: registry.counter("wal.checkpoints"),
            group_commit_size: registry.histogram("wal.group_commit_size"),
            replay_records: registry.counter("wal.replay_records"),
            recovery_ms: registry.gauge("wal.recovery_ms"),
        })
    }
}

/// The framing, sequencing and group-commit layer over a
/// [`WalStorage`]. See the [module docs](self) for the frame format and
/// durability model.
pub struct WalWriter {
    storage: Box<dyn WalStorage>,
    policy: FsyncPolicy,
    /// Sequence number the next appended record receives.
    next_seq: u64,
    /// Encoded frames not yet pushed to storage.
    buffer: Vec<u8>,
    buffered_records: usize,
    last_sync: Instant,
    /// Monotone count of framed bytes pushed to storage (never reset by
    /// checkpoint truncation — checkpoint policies diff it).
    bytes_appended: u64,
    metrics: Option<Arc<WalMetrics>>,
}

impl WalWriter {
    /// A writer over `storage` whose next record receives sequence
    /// number `next_seq` (`1` for a fresh log; recovery resumes after
    /// the highest replayed sequence).
    pub fn new(storage: Box<dyn WalStorage>, policy: FsyncPolicy, next_seq: u64) -> Self {
        WalWriter {
            storage,
            policy,
            next_seq: next_seq.max(1),
            buffer: Vec::new(),
            buffered_records: 0,
            last_sync: Instant::now(),
            bytes_appended: 0,
            metrics: None,
        }
    }

    /// Attaches (or detaches) the `wal.*` metric handles.
    pub fn set_metrics(&mut self, metrics: Option<Arc<WalMetrics>>) {
        self.metrics = metrics;
    }

    /// Frames `record`, stamps it with the next sequence number and
    /// appends it to the group-commit buffer; the [`FsyncPolicy`]
    /// decides whether the buffer is committed before returning. Returns
    /// the record's sequence number.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut measured = Vec::with_capacity(SEQ_BYTES + 64);
        measured.extend_from_slice(&seq.to_le_bytes());
        record.encode(&mut measured);
        self.buffer
            .extend_from_slice(&(measured.len() as u32).to_le_bytes());
        self.buffer
            .extend_from_slice(&crc32(&measured).to_le_bytes());
        self.buffer.extend_from_slice(&measured);
        self.buffered_records += 1;
        if let Some(metrics) = &self.metrics {
            metrics.appends.inc();
        }
        match self.policy {
            FsyncPolicy::Always => self.commit()?,
            FsyncPolicy::EveryN(n) => {
                if self.buffered_records >= n.max(1) {
                    self.commit()?;
                }
            }
            FsyncPolicy::Interval(interval) => {
                if self.last_sync.elapsed() >= interval {
                    self.commit()?;
                }
            }
        }
        Ok(seq)
    }

    /// Pushes the group-commit buffer to storage and fsyncs: everything
    /// appended so far becomes part of the durable prefix.
    pub fn commit(&mut self) -> io::Result<()> {
        if !self.buffer.is_empty() {
            self.storage.append(&self.buffer)?;
            self.bytes_appended += self.buffer.len() as u64;
            if let Some(metrics) = &self.metrics {
                metrics.bytes.add(self.buffer.len() as u64);
                metrics
                    .group_commit_size
                    .record(self.buffered_records as u64);
            }
            self.buffer.clear();
            self.buffered_records = 0;
        }
        self.storage.sync()?;
        if let Some(metrics) = &self.metrics {
            metrics.fsyncs.inc();
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Sequence number of the most recently appended record (`0` when
    /// nothing was appended yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Monotone count of framed bytes pushed to storage; checkpoint
    /// policies diff it across checkpoints (truncation does not reset
    /// it).
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Drops every logged byte (checkpoint truncation: the snapshot now
    /// owns the history). Buffered-but-uncommitted records are dropped
    /// too — callers commit first. Sequence numbers keep increasing
    /// across the truncation.
    pub fn truncate_all(&mut self) -> io::Result<()> {
        self.buffer.clear();
        self.buffered_records = 0;
        self.storage.truncate(0)
    }

    /// The underlying storage (e.g. to measure the on-log byte length).
    pub fn storage(&self) -> &dyn WalStorage {
        self.storage.as_ref()
    }
}

/// How the readable tail of a log ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The log ended exactly at a frame boundary.
    Clean,
    /// The last frame was cut short (torn write); the bytes before it
    /// are intact.
    TornTail,
    /// A frame failed its CRC or decoded to garbage; the bytes before it
    /// are intact.
    CorruptRecord,
    /// A frame carried a non-increasing sequence number (duplicated or
    /// reordered suffix); the bytes before it are intact.
    OutOfOrder,
}

/// Result of validating a log's bytes: the records of the longest valid
/// prefix, that prefix's byte length, and how the tail ended. Recovery
/// replays `records` and truncates the log to `valid_len`.
#[derive(Debug)]
pub struct WalScan {
    /// `(sequence number, record)` pairs of the valid prefix, in log
    /// order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// How the tail ended.
    pub tail: TailStatus,
}

/// Validates `bytes` frame by frame, stopping at the first torn,
/// corrupt or out-of-order frame. Never panics: every failure mode maps
/// to a [`TailStatus`] and a shorter valid prefix.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut last_seq = 0u64;
    let tail = loop {
        if at == bytes.len() {
            break TailStatus::Clean;
        }
        if bytes.len() - at < FRAME_HEADER {
            break TailStatus::TornTail;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len < SEQ_BYTES as u32 || len > MAX_FRAME_LEN {
            break TailStatus::CorruptRecord;
        }
        let len = len as usize;
        if bytes.len() - at - FRAME_HEADER < len {
            break TailStatus::TornTail;
        }
        let measured = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len];
        if crc32(measured) != crc {
            break TailStatus::CorruptRecord;
        }
        let seq = u64::from_le_bytes(measured[..SEQ_BYTES].try_into().expect("8 bytes"));
        if seq <= last_seq {
            break TailStatus::OutOfOrder;
        }
        let record = match WalRecord::decode(&measured[SEQ_BYTES..]) {
            Ok(record) => record,
            Err(_) => break TailStatus::CorruptRecord,
        };
        last_seq = seq;
        records.push((seq, record));
        at += FRAME_HEADER + len;
    };
    WalScan {
        records,
        valid_len: at as u64,
        tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::mutation::Mutation;

    fn batch(column: &str, values: &[u64]) -> WalRecord {
        WalRecord::MutationBatch {
            column: column.into(),
            ops: values.iter().map(|&v| Mutation::Insert(v)).collect(),
        }
    }

    #[test]
    fn append_scan_round_trips_in_order() {
        let handle = MemWalHandle::new();
        let mut writer = WalWriter::new(Box::new(handle.storage()), FsyncPolicy::Always, 1);
        let records = vec![
            batch("a", &[1, 2, 3]),
            WalRecord::Checkpoint { snapshot_id: 0 },
            batch("b", &[9]),
            WalRecord::Rebalance {
                columns: vec!["a".into()],
            },
        ];
        for (i, record) in records.iter().enumerate() {
            assert_eq!(writer.append(record).unwrap(), i as u64 + 1);
        }
        assert_eq!(writer.last_seq(), 4);
        let bytes = handle.storage().read_all().unwrap();
        let scan = scan_wal(&bytes);
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        let decoded: Vec<WalRecord> = scan.records.iter().map(|(_, r)| r.clone()).collect();
        assert_eq!(decoded, records);
        let seqs: Vec<u64> = scan.records.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn always_policy_makes_every_record_durable() {
        let handle = MemWalHandle::new();
        let mut writer = WalWriter::new(Box::new(handle.storage()), FsyncPolicy::Always, 1);
        writer.append(&batch("a", &[1])).unwrap();
        assert_eq!(handle.synced_len(), handle.len());
        handle.crash();
        assert_eq!(
            scan_wal(&handle.storage().read_all().unwrap())
                .records
                .len(),
            1
        );
    }

    #[test]
    fn group_commit_buffers_until_the_nth_record() {
        let handle = MemWalHandle::new();
        let mut writer = WalWriter::new(Box::new(handle.storage()), FsyncPolicy::EveryN(3), 1);
        writer.append(&batch("a", &[1])).unwrap();
        writer.append(&batch("a", &[2])).unwrap();
        // Nothing pushed yet: a crash here loses both records.
        assert_eq!(handle.len(), 0);
        writer.append(&batch("a", &[3])).unwrap();
        assert!(!handle.is_empty());
        assert_eq!(handle.synced_len(), handle.len());
        // Explicit commit drains a partial group.
        writer.append(&batch("a", &[4])).unwrap();
        assert_eq!(handle.synced_len(), handle.len());
        let before = handle.len();
        writer.commit().unwrap();
        assert!(handle.len() > before);
        assert_eq!(
            scan_wal(&handle.storage().read_all().unwrap())
                .records
                .len(),
            4
        );
    }

    #[test]
    fn crash_drops_exactly_the_unsynced_suffix() {
        let handle = MemWalHandle::new();
        let mut writer = WalWriter::new(Box::new(handle.storage()), FsyncPolicy::EveryN(2), 1);
        for i in 0..5u64 {
            writer.append(&batch("a", &[i])).unwrap();
        }
        // 4 records durable (two groups of 2), the 5th buffered.
        handle.crash();
        let scan = scan_wal(&handle.storage().read_all().unwrap());
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.records.len(), 4);
    }

    #[test]
    fn torn_tail_is_cut_at_the_last_whole_frame() {
        let handle = MemWalHandle::new();
        let mut writer = WalWriter::new(Box::new(handle.storage()), FsyncPolicy::Always, 1);
        writer.append(&batch("a", &[1, 2, 3])).unwrap();
        let first = handle.len();
        writer.append(&batch("a", &[4, 5, 6])).unwrap();
        // Cut anywhere strictly inside the second frame.
        for cut in first + 1..handle.len() {
            let bytes = handle.storage().read_all().unwrap();
            let scan = scan_wal(&bytes[..cut]);
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, first as u64, "cut at {cut}");
            assert_eq!(scan.tail, TailStatus::TornTail, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_stop_the_scan_at_the_corrupt_frame() {
        let handle = MemWalHandle::new();
        let mut writer = WalWriter::new(Box::new(handle.storage()), FsyncPolicy::Always, 1);
        writer.append(&batch("a", &[1])).unwrap();
        let first = handle.len();
        writer.append(&batch("a", &[2])).unwrap();
        writer.append(&batch("a", &[3])).unwrap();
        let pristine = handle.storage().read_all().unwrap();
        // Flip one bit in the middle frame: the scan must keep record 1,
        // reject record 2, and never panic.
        for byte in first..pristine.len() - first {
            let mut copy = pristine.clone();
            copy[byte] ^= 0x10;
            let scan = scan_wal(&copy);
            assert!(scan.records.len() <= 1, "byte {byte} resurrected data");
            assert_ne!(scan.tail, TailStatus::Clean, "byte {byte} undetected");
        }
    }

    #[test]
    fn duplicated_suffix_is_rejected_as_out_of_order() {
        let handle = MemWalHandle::new();
        let mut writer = WalWriter::new(Box::new(handle.storage()), FsyncPolicy::Always, 1);
        writer.append(&batch("a", &[1])).unwrap();
        let first = handle.len();
        writer.append(&batch("a", &[2])).unwrap();
        let clean_len = handle.len();
        handle.duplicate_suffix(first);
        let scan = scan_wal(&handle.storage().read_all().unwrap());
        assert_eq!(scan.tail, TailStatus::OutOfOrder);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len, clean_len as u64);
    }

    #[test]
    fn sequence_numbers_survive_checkpoint_truncation() {
        let handle = MemWalHandle::new();
        let mut writer = WalWriter::new(Box::new(handle.storage()), FsyncPolicy::Always, 1);
        writer.append(&batch("a", &[1])).unwrap();
        writer.append(&batch("a", &[2])).unwrap();
        writer.truncate_all().unwrap();
        writer.append(&batch("a", &[3])).unwrap();
        let scan = scan_wal(&handle.storage().read_all().unwrap());
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].0, 3, "seq keeps increasing after truncate");
        assert_eq!(scan.tail, TailStatus::Clean);
    }

    #[test]
    fn file_wal_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("pi-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        {
            let mut writer = WalWriter::new(
                Box::new(FileWal::open(&path).unwrap()),
                FsyncPolicy::Always,
                1,
            );
            writer.append(&batch("a", &[7, 8])).unwrap();
            writer
                .append(&WalRecord::Checkpoint { snapshot_id: 1 })
                .unwrap();
        }
        let mut reopened = FileWal::open(&path).unwrap();
        let scan = scan_wal(&reopened.read_all().unwrap());
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.records.len(), 2);
        reopened.truncate(scan.valid_len).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_count_appends_bytes_and_fsyncs() {
        let registry = MetricsRegistry::new();
        let handle = MemWalHandle::new();
        let mut writer = WalWriter::new(Box::new(handle.storage()), FsyncPolicy::EveryN(2), 1);
        writer.set_metrics(Some(WalMetrics::register(&registry)));
        writer.append(&batch("a", &[1])).unwrap();
        writer.append(&batch("a", &[2])).unwrap();
        writer.append(&batch("a", &[3])).unwrap();
        writer.commit().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("wal.appends"), Some(3));
        assert_eq!(snap.counter("wal.bytes"), Some(handle.len() as u64));
        // One policy-driven fsync (group of 2) + one explicit commit.
        assert_eq!(snap.counter("wal.fsyncs"), Some(2));
    }
}
