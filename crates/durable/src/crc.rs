//! CRC-32 (ISO-HDLC): the checksum guarding every WAL record frame and
//! snapshot body.
//!
//! This is the ubiquitous reflected CRC-32 — polynomial `0xEDB88320`,
//! initial value and final XOR `0xFFFF_FFFF` — the same parameterisation
//! zlib, Ethernet and PNG use, table-driven with a 256-entry table built
//! at compile time. The build environment is offline, so the few lines
//! are vendored rather than pulled from crates.io.

/// The 256-entry lookup table for the reflected polynomial `0xEDB88320`.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/ISO-HDLC over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Feeds more bytes into a running (pre-final-XOR) CRC state. Start from
/// `0xFFFF_FFFF`, XOR with `0xFFFF_FFFF` when done; [`crc32`] is the
/// one-shot form.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_check_vector() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_updates_match_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let state = crc32_update(0xFFFF_FFFF, &data[..split]);
            let state = crc32_update(state, &data[split..]);
            assert_eq!(state ^ 0xFFFF_FFFF, crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let data = b"progressive indexes";
        let reference = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), reference, "flip {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
