//! # pi-durable — write-ahead logging, snapshots and crash recovery
//!
//! Durability for progressive indexes, built around the observation that
//! the mutable-index model (`pi_core::mutation::MutableIndex`) already
//! splits every column into exactly the two halves a recovery log wants:
//! an **immutable base** that only changes at merge boundaries, and a
//! **pending delta sidecar** that absorbs every mutation in between. So:
//! *log the delta, snapshot the merged base.*
//!
//! * [`record`] — what goes in the log: mutation batches, checkpoint
//!   markers and rebalance markers.
//! * [`wal`] — the append-only log itself: CRC-protected frames, group
//!   commit under an [`wal::FsyncPolicy`], tail validation
//!   ([`wal::scan_wal`]) and deterministic fault injection
//!   ([`wal::MemWalHandle`]).
//! * [`snapshot`] — whole-table checkpoints: per-shard base + sidecar
//!   under a checksummed, versioned envelope, stored through a
//!   [`snapshot::SnapshotStore`].
//! * [`crc`] — the CRC-32 shared by frames and snapshots.
//!
//! The recovery invariant the engine layer (`pi-engine`) builds on top:
//! after a crash at *any* byte offset of the log, loading the latest
//! valid snapshot and replaying the valid WAL suffix past the snapshot's
//! `wal_seq` reconstructs a table that answers every query exactly like
//! one that applied the durable prefix of mutations in memory — and the
//! torn/corrupt tail (at most the records since the last fsync) is
//! truncated, never partially applied.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use record::WalRecord;
pub use snapshot::{
    latest_valid_snapshot, ColumnState, DirStore, MemStore, ShardState, SnapshotStore,
    TableSnapshot,
};
pub use wal::{
    scan_wal, FileWal, FsyncPolicy, MemWal, MemWalHandle, TailStatus, WalMetrics, WalScan,
    WalStorage, WalWriter,
};
