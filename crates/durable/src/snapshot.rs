//! Whole-table snapshots: the checkpointed half of "log the delta,
//! snapshot the merged base".
//!
//! A [`TableSnapshot`] captures, per column, exactly what the
//! delta-sidecar model already maintains: the immutable base
//! [`Column`] each shard's progressive index refines plus the pending
//! [`DeltaSidecar`] not yet merged into it — along with the shard
//! boundaries and index configuration needed to rebuild the sharded
//! column. Refinement state (pivot trees, radix buckets, merge progress)
//! is deliberately *not* captured: it is a cache rebuilt from the base
//! by querying, and recovery restarting the refinement lifecycle loses
//! no data and changes no answer.
//!
//! The byte format wraps the [`pi_storage::snapshot`] primitives in a
//! self-validating envelope: magic, version, a CRC over the body, and
//! the WAL sequence number the snapshot reflects (`wal_seq`) so recovery
//! knows exactly which WAL suffix still needs replaying. A snapshot that
//! fails any check decodes to [`CodecError`] — recovery then falls back
//! to the previous snapshot ([`latest_valid_snapshot`]), which is why
//! checkpointing always writes the new snapshot before pruning old ones.

use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Mutex};

use pi_core::budget::BudgetPolicy;
use pi_core::decision::Algorithm;
use pi_storage::column::{Column, Value};
use pi_storage::delta::DeltaSidecar;
use pi_storage::snapshot::{
    put_column, put_sidecar, put_str, put_u32, put_u64, put_values, read_column, read_sidecar,
    ByteReader, CodecError,
};

use crate::crc::crc32;

/// First bytes of every encoded snapshot: `b"PSNP"`.
const MAGIC: u32 = u32::from_le_bytes(*b"PSNP");
/// Current snapshot format version.
const VERSION: u32 = 1;

const ALG_QUICKSORT: u8 = 1;
const ALG_RADIX_MSD: u8 = 2;
const ALG_RADIX_LSD: u8 = 3;
const ALG_BUCKETSORT: u8 = 4;

const POLICY_FIXED_DELTA: u8 = 1;
const POLICY_FIXED_BUDGET: u8 = 2;
const POLICY_ADAPTIVE: u8 = 3;

/// One shard's durable state: the immutable base the progressive index
/// refines, plus the pending delta not yet merged into it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// The merged, immutable base column.
    pub base: Arc<Column>,
    /// Inserts and tombstones awaiting the next merge.
    pub sidecar: DeltaSidecar,
}

/// One column's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnState {
    /// Column name.
    pub name: String,
    /// Progressive algorithm the column's shards refine with.
    pub algorithm: Algorithm,
    /// Per-query indexing budget policy.
    pub policy: BudgetPolicy,
    /// Ascending split points of the range partition (empty for a
    /// single-shard column).
    pub boundaries: Vec<Value>,
    /// Per-shard base + sidecar, in partition order.
    pub shards: Vec<ShardState>,
}

/// A whole-table snapshot: everything recovery needs apart from the WAL
/// suffix logged after `wal_seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Monotonically increasing snapshot identifier.
    pub snapshot_id: u64,
    /// Highest WAL sequence number reflected in this snapshot; replay
    /// skips records at or below it.
    pub wal_seq: u64,
    /// Per-column state, in table order.
    pub columns: Vec<ColumnState>,
}

fn put_algorithm(out: &mut Vec<u8>, algorithm: Algorithm) {
    out.push(match algorithm {
        Algorithm::Quicksort => ALG_QUICKSORT,
        Algorithm::RadixsortMsd => ALG_RADIX_MSD,
        Algorithm::RadixsortLsd => ALG_RADIX_LSD,
        Algorithm::Bucketsort => ALG_BUCKETSORT,
    });
}

fn read_algorithm(r: &mut ByteReader<'_>) -> Result<Algorithm, CodecError> {
    match r.take(1)?[0] {
        ALG_QUICKSORT => Ok(Algorithm::Quicksort),
        ALG_RADIX_MSD => Ok(Algorithm::RadixsortMsd),
        ALG_RADIX_LSD => Ok(Algorithm::RadixsortLsd),
        ALG_BUCKETSORT => Ok(Algorithm::Bucketsort),
        _ => Err(CodecError::Invalid("unknown algorithm tag")),
    }
}

fn put_policy(out: &mut Vec<u8>, policy: BudgetPolicy) {
    let (tag, value) = match policy {
        BudgetPolicy::FixedDelta(v) => (POLICY_FIXED_DELTA, v),
        BudgetPolicy::FixedBudget(v) => (POLICY_FIXED_BUDGET, v),
        BudgetPolicy::Adaptive(v) => (POLICY_ADAPTIVE, v),
    };
    out.push(tag);
    put_u64(out, value.to_bits());
}

fn read_policy(r: &mut ByteReader<'_>) -> Result<BudgetPolicy, CodecError> {
    let tag = r.take(1)?[0];
    let value = f64::from_bits(r.u64()?);
    if !value.is_finite() {
        return Err(CodecError::Invalid("non-finite budget value"));
    }
    match tag {
        POLICY_FIXED_DELTA => Ok(BudgetPolicy::FixedDelta(value)),
        POLICY_FIXED_BUDGET => Ok(BudgetPolicy::FixedBudget(value)),
        POLICY_ADAPTIVE => Ok(BudgetPolicy::Adaptive(value)),
        _ => Err(CodecError::Invalid("unknown policy tag")),
    }
}

impl TableSnapshot {
    /// Encodes the snapshot into its self-validating envelope:
    /// `[magic][version][body_crc][body]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.snapshot_id);
        put_u64(&mut body, self.wal_seq);
        put_u32(&mut body, self.columns.len() as u32);
        for column in &self.columns {
            put_str(&mut body, &column.name);
            put_algorithm(&mut body, column.algorithm);
            put_policy(&mut body, column.policy);
            put_values(&mut body, &column.boundaries);
            put_u32(&mut body, column.shards.len() as u32);
            for shard in &column.shards {
                put_column(&mut body, &shard.base);
                put_sidecar(&mut body, &shard.sidecar);
            }
        }
        let mut out = Vec::with_capacity(12 + body.len());
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Decodes an envelope written by [`TableSnapshot::encode`],
    /// rejecting bad magic, unknown versions, checksum mismatches and
    /// structural corruption.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(CodecError::Invalid("bad snapshot magic"));
        }
        if r.u32()? != VERSION {
            return Err(CodecError::Invalid("unknown snapshot version"));
        }
        let crc = r.u32()?;
        let body = &bytes[12..];
        if crc32(body) != crc {
            return Err(CodecError::Invalid("snapshot checksum mismatch"));
        }
        let snapshot_id = r.u64()?;
        let wal_seq = r.u64()?;
        let column_count = r.u32()? as usize;
        if r.remaining() / 8 < column_count {
            return Err(CodecError::Truncated);
        }
        let mut columns = Vec::with_capacity(column_count);
        for _ in 0..column_count {
            let name = r.str()?;
            let algorithm = read_algorithm(&mut r)?;
            let policy = read_policy(&mut r)?;
            let boundaries = r.values()?;
            if boundaries.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CodecError::Invalid("non-ascending shard boundaries"));
            }
            let shard_count = r.u32()? as usize;
            if shard_count != boundaries.len() + 1 {
                return Err(CodecError::Invalid("shard count vs boundaries mismatch"));
            }
            let mut shards = Vec::with_capacity(shard_count);
            for _ in 0..shard_count {
                let base = Arc::new(read_column(&mut r)?);
                let sidecar = read_sidecar(&mut r)?;
                shards.push(ShardState { base, sidecar });
            }
            columns.push(ColumnState {
                name,
                algorithm,
                policy,
                boundaries,
                shards,
            });
        }
        if !r.is_empty() {
            return Err(CodecError::Invalid("trailing bytes in snapshot"));
        }
        Ok(TableSnapshot {
            snapshot_id,
            wal_seq,
            columns,
        })
    }
}

/// Durable storage for encoded snapshots, keyed by snapshot id.
pub trait SnapshotStore: Send {
    /// Durably stores `bytes` under `id` (atomically: a crash mid-save
    /// must not corrupt an older snapshot).
    fn save(&mut self, id: u64, bytes: &[u8]) -> io::Result<()>;
    /// Stored snapshot ids, ascending.
    fn ids(&self) -> io::Result<Vec<u64>>;
    /// Reads the snapshot stored under `id`.
    fn load(&self, id: u64) -> io::Result<Vec<u8>>;
    /// Deletes the snapshot stored under `id` (missing ids are fine).
    fn remove(&mut self, id: u64) -> io::Result<()>;
}

/// Directory-backed [`SnapshotStore`]: one `NNNN.snap` file per
/// snapshot, written to a temporary name and renamed into place so a
/// crash mid-write never leaves a half-written file under a live name.
pub struct DirStore {
    dir: std::path::PathBuf,
}

impl DirStore {
    /// Opens (creating if missing) the snapshot directory at `dir`.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirStore { dir })
    }

    fn path(&self, id: u64) -> std::path::PathBuf {
        self.dir.join(format!("{id:020}.snap"))
    }
}

impl SnapshotStore for DirStore {
    fn save(&mut self, id: u64, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{id:020}.tmp"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, bytes)?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, self.path(id))?;
        // Make the rename itself durable.
        std::fs::File::open(&self.dir)?.sync_data()?;
        Ok(())
    }

    fn ids(&self) -> io::Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".snap")) {
                if let Ok(id) = stem.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn load(&self, id: u64) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(id))
    }

    fn remove(&mut self, id: u64) -> io::Result<()> {
        match std::fs::remove_file(self.path(id)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// In-memory [`SnapshotStore`] for tests and fault injection; clones
/// share the same underlying map, so a handle kept aside still sees
/// snapshots saved through the store after a simulated crash.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    snaps: Arc<Mutex<BTreeMap<u64, Vec<u8>>>>,
}

impl MemStore {
    /// A fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An independent deep copy of the stored snapshots, for crash
    /// matrices that mutilate many copies of the same history.
    pub fn fork(&self) -> MemStore {
        let snaps = self.snaps.lock().expect("mem-store poisoned");
        MemStore {
            snaps: Arc::new(Mutex::new(snaps.clone())),
        }
    }

    /// Flips one bit of the snapshot stored under `id` — simulated
    /// media corruption for recovery tests.
    pub fn corrupt(&self, id: u64, byte: usize, bit: u8) {
        let mut snaps = self.snaps.lock().expect("mem-store poisoned");
        if let Some(bytes) = snaps.get_mut(&id) {
            if let Some(b) = bytes.get_mut(byte) {
                *b ^= 1 << (bit % 8);
            }
        }
    }
}

impl SnapshotStore for MemStore {
    fn save(&mut self, id: u64, bytes: &[u8]) -> io::Result<()> {
        self.snaps
            .lock()
            .expect("mem-store poisoned")
            .insert(id, bytes.to_vec());
        Ok(())
    }

    fn ids(&self) -> io::Result<Vec<u64>> {
        Ok(self
            .snaps
            .lock()
            .expect("mem-store poisoned")
            .keys()
            .copied()
            .collect())
    }

    fn load(&self, id: u64) -> io::Result<Vec<u8>> {
        self.snaps
            .lock()
            .expect("mem-store poisoned")
            .get(&id)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("snapshot {id}")))
    }

    fn remove(&mut self, id: u64) -> io::Result<()> {
        self.snaps.lock().expect("mem-store poisoned").remove(&id);
        Ok(())
    }
}

/// Loads the newest snapshot that decodes and validates, skipping
/// corrupt or torn ones (which checkpointing's save-before-prune order
/// guarantees leaves an older valid snapshot behind, except on a
/// brand-new store). Returns `Ok(None)` when no valid snapshot exists.
pub fn latest_valid_snapshot(store: &dyn SnapshotStore) -> io::Result<Option<TableSnapshot>> {
    for id in store.ids()?.into_iter().rev() {
        let bytes = match store.load(id) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        if let Ok(snapshot) = TableSnapshot::decode(&bytes) {
            return Ok(Some(snapshot));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TableSnapshot {
        let mut sidecar = DeltaSidecar::new();
        sidecar.insert(42);
        sidecar.insert(7);
        sidecar.add_tombstone(99);
        TableSnapshot {
            snapshot_id: 3,
            wal_seq: 17,
            columns: vec![
                ColumnState {
                    name: "ra".into(),
                    algorithm: Algorithm::Quicksort,
                    policy: BudgetPolicy::FixedDelta(0.25),
                    boundaries: vec![100, 200],
                    shards: vec![
                        ShardState {
                            base: Arc::new(Column::from_vec(vec![5, 50, 99])),
                            sidecar: sidecar.clone(),
                        },
                        ShardState {
                            base: Arc::new(Column::from_vec(vec![150])),
                            sidecar: DeltaSidecar::new(),
                        },
                        ShardState {
                            base: Arc::new(Column::from_vec(vec![])),
                            sidecar: DeltaSidecar::new(),
                        },
                    ],
                },
                ColumnState {
                    name: "dec".into(),
                    algorithm: Algorithm::Bucketsort,
                    policy: BudgetPolicy::Adaptive(0.001),
                    boundaries: vec![],
                    shards: vec![ShardState {
                        base: Arc::new(Column::from_vec(vec![1, 2, 3])),
                        sidecar: DeltaSidecar::new(),
                    }],
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snapshot = sample_snapshot();
        let bytes = snapshot.encode();
        assert_eq!(TableSnapshot::decode(&bytes).unwrap(), snapshot);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sample_snapshot().encode();
        for byte in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[byte] ^= 0x08;
            assert!(TableSnapshot::decode(&copy).is_err(), "byte {byte}");
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample_snapshot().encode();
        for cut in 0..bytes.len() {
            assert!(TableSnapshot::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn mem_store_returns_newest_valid_snapshot() {
        let mut store = MemStore::new();
        let mut old = sample_snapshot();
        old.snapshot_id = 1;
        let mut new = sample_snapshot();
        new.snapshot_id = 2;
        store.save(1, &old.encode()).unwrap();
        store.save(2, &new.encode()).unwrap();
        assert_eq!(
            latest_valid_snapshot(&store).unwrap().unwrap().snapshot_id,
            2
        );
        // Corrupting the newest falls back to the older one.
        store.corrupt(2, 40, 3);
        assert_eq!(
            latest_valid_snapshot(&store).unwrap().unwrap().snapshot_id,
            1
        );
        assert_eq!(store.ids().unwrap(), vec![1, 2]);
    }

    #[test]
    fn dir_store_round_trips_and_prunes() {
        let dir = std::env::temp_dir().join(format!("pi-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DirStore::open(&dir).unwrap();
        let snapshot = sample_snapshot();
        store.save(3, &snapshot.encode()).unwrap();
        store.save(4, &snapshot.encode()).unwrap();
        assert_eq!(store.ids().unwrap(), vec![3, 4]);
        assert_eq!(latest_valid_snapshot(&store).unwrap().unwrap(), snapshot);
        store.remove(3).unwrap();
        store.remove(3).unwrap(); // idempotent
        assert_eq!(store.ids().unwrap(), vec![4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_recovers_to_none() {
        assert!(latest_valid_snapshot(&MemStore::new()).unwrap().is_none());
    }
}
