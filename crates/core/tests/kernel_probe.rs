//! Dev probe (ignored): rough tuned-vs-scalar timings at bench scale.
//! Run with `cargo test -p pi-core --release --test kernel_probe -- --ignored --nocapture`.

use std::sync::Arc;
use std::time::Instant;

use pi_core::prelude::*;
use pi_core::testing::random_column;

#[test]
#[ignore]
fn refine_step_probe() {
    let rows = 100_000;
    let column = Arc::new(random_column(rows, rows as u64, 57));
    for (label, tuning) in [
        ("tuned", TuningParameters::default()),
        ("scalar", TuningParameters::scalar()),
    ] {
        let mut best = f64::INFINITY;
        let point = column.min();
        for _ in 0..5 {
            let mut index = Algorithm::RadixsortLsd.build_tuned(
                Arc::clone(&column),
                BudgetPolicy::FixedDelta(0.25),
                CostConstants::synthetic(),
                tuning,
            );
            let mut guard = 0;
            while index.status().phase == Phase::Creation {
                std::hint::black_box(index.query(point, point));
                guard += 1;
                assert!(guard < 10_000);
            }
            let start = Instant::now();
            while index.status().phase == Phase::Refinement {
                std::hint::black_box(index.query(point, point));
                guard += 1;
                assert!(guard < 10_000);
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        println!("{label}: {:.3} ms", best * 1e3);
    }
}

#[test]
#[ignore]
fn ska_sort_probe() {
    let rows = 100_000;
    let values = pi_core::testing::random_column(rows, u64::MAX, 57).into_vec();
    let threshold = TuningParameters::default().comparison_sort_threshold;
    for (label, radix) in [("ska", true), ("std_sort", false)] {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let mut data = values.clone();
            let start = Instant::now();
            if radix {
                pi_core::kernels::ska_sort_by_level(&mut data, 7, threshold);
            } else {
                data.sort_unstable();
            }
            std::hint::black_box(data[0]);
            best = best.min(start.elapsed().as_secs_f64());
        }
        println!("{label}: {:.3} ms", best * 1e3);
    }
}
