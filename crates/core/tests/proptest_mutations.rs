//! Property-based oracle for mutable progressive indexes: range-query
//! answers must be exact after **arbitrary** interleavings of inserts,
//! deletes, updates, refinement steps and queries, at every refinement
//! stage, for all four progressive algorithms — including mutations
//! applied after the index has fully converged.
//!
//! The ground truth is a sorted `Vec` of the live values: every query is
//! double-checked against a binary-search range sum over it, and delete
//! victims are removed by binary search, so the oracle itself is
//! O(log n + k) per operation and cannot drift.

use std::sync::Arc;

use proptest::prelude::*;

use pi_core::mutation::{MutableConfig, MutableIndex, Mutation};
use pi_core::{Algorithm, BudgetPolicy};
use pi_storage::scan::ScanResult;
use pi_storage::{Column, Value};

/// Sorted-Vec ground truth over the live multiset.
struct SortedOracle {
    live: Vec<Value>,
}

impl SortedOracle {
    fn new(mut values: Vec<Value>) -> Self {
        values.sort_unstable();
        SortedOracle { live: values }
    }

    fn apply(&mut self, m: &Mutation) -> bool {
        match *m {
            Mutation::Insert(v) => {
                let at = self.live.partition_point(|&x| x <= v);
                self.live.insert(at, v);
                true
            }
            Mutation::Delete(v) => {
                let at = self.live.partition_point(|&x| x < v);
                if self.live.get(at) == Some(&v) {
                    self.live.remove(at);
                    true
                } else {
                    false
                }
            }
            Mutation::Update { old, new } => {
                if self.apply(&Mutation::Delete(old)) {
                    self.apply(&Mutation::Insert(new));
                    true
                } else {
                    false
                }
            }
        }
    }

    fn query(&self, low: Value, high: Value) -> ScanResult {
        if low > high {
            return ScanResult::EMPTY;
        }
        let start = self.live.partition_point(|&x| x < low);
        let end = self.live.partition_point(|&x| x <= high);
        let slice = &self.live[start..end];
        ScanResult {
            sum: slice.iter().map(|&v| v as u128).sum(),
            count: slice.len() as u64,
        }
    }
}

const DOMAIN: u64 = 4_096;

/// One scripted step of the interleaving, decoded from generated tuples
/// (the shim has no enum strategies; a small integer tag picks the op).
fn decode(tag: u64, a: u64, b: u64) -> Op {
    match tag % 6 {
        0 => Op::Apply(Mutation::Insert(a)),
        1 => Op::Apply(Mutation::Delete(a)),
        2 => Op::Apply(Mutation::Update { old: a, new: b }),
        3 => Op::Advance,
        // Two query variants: narrow and full-domain (the latter crosses
        // every pivot/bucket boundary).
        4 => Op::Query(a.min(b), a.max(b)),
        _ => Op::Query(0, DOMAIN * 2),
    }
}

enum Op {
    Apply(Mutation),
    Advance,
    Query(Value, Value),
}

fn run_script(algorithm: Algorithm, base: &[u64], script: &[(u64, u64, u64)], merge_min: usize) {
    let column = Arc::new(Column::from_vec(base.to_vec()));
    let mut oracle = SortedOracle::new(base.to_vec());
    let mut index = MutableIndex::with_config(
        column,
        algorithm,
        BudgetPolicy::FixedDelta(0.3),
        MutableConfig {
            merge_min_pending: merge_min,
            ..MutableConfig::default()
        },
    );
    for (step, &(tag, a, b)) in script.iter().enumerate() {
        match decode(tag, a, b) {
            Op::Apply(m) => {
                let got = index.apply(&m);
                let want = oracle.apply(&m);
                assert_eq!(got, want, "{}: step {} {:?}", algorithm, step, m);
            }
            Op::Advance => {
                index.advance();
            }
            Op::Query(low, high) => {
                let got = index.query(low, high).scan_result();
                let want = oracle.query(low, high);
                assert_eq!(
                    got, want,
                    "{}: step {} query [{}, {}]",
                    algorithm, step, low, high
                );
            }
        }
    }
    // Drive to the terminal state and re-verify: convergence is reached
    // and the merged snapshot serves the exact live multiset.
    let mut guard = 0;
    while index.advance() {
        guard += 1;
        assert!(guard < 1_000_000, "{}: did not converge", algorithm);
    }
    assert!(index.is_converged());
    for (low, high) in [(0, DOMAIN * 2), (DOMAIN / 4, DOMAIN / 2), (7, 7)] {
        assert_eq!(
            index.query(low, high).scan_result(),
            oracle.query(low, high),
            "{}: post-convergence query [{}, {}]",
            algorithm,
            low,
            high
        );
    }
    assert_eq!(index.live_rows(), oracle.live.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The oracle property over all four algorithms, with merges forced
    /// often (tiny merge threshold) so scripts exercise mid-merge
    /// queries, mutations during merges, and repeated lifecycle restarts.
    #[test]
    fn mutation_interleavings_match_sorted_vec_oracle(
        base in prop::collection::vec(0..DOMAIN, 0..600),
        script in prop::collection::vec((0..6u64, 0..DOMAIN, 0..DOMAIN), 1..120),
        merge_min in 1..64usize,
    ) {
        for algorithm in Algorithm::ALL {
            run_script(algorithm, &base, &script, merge_min);
        }
    }

    /// Mutating an index *after* convergence keeps answers exact and
    /// re-converges — the "mutated converged shard re-enters maintenance"
    /// property at the single-index level, for all four algorithms.
    #[test]
    fn mutations_after_convergence_stay_exact(
        base in prop::collection::vec(0..DOMAIN, 1..400),
        script in prop::collection::vec((0..6u64, 0..DOMAIN, 0..DOMAIN), 1..60),
    ) {
        for algorithm in Algorithm::ALL {
            let column = Arc::new(Column::from_vec(base.clone()));
            let mut oracle = SortedOracle::new(base.clone());
            let mut index = MutableIndex::new(
                Arc::clone(&column),
                algorithm,
                BudgetPolicy::FixedDelta(0.5),
            );
            // Converge first.
            let mut guard = 0;
            while index.advance() {
                guard += 1;
                assert!(guard < 1_000_000);
            }
            assert!(index.is_converged(), "{}", algorithm);
            // Then run the script against the converged index.
            for &(tag, a, b) in &script {
                match decode(tag, a, b) {
                    Op::Apply(m) => {
                        let got = index.apply(&m);
                        let want = oracle.apply(&m);
                        assert_eq!(got, want, "{}: {:?}", algorithm, m);
                    }
                    Op::Advance => {
                        index.advance();
                    }
                    Op::Query(low, high) => {
                        assert_eq!(
                            index.query(low, high).scan_result(),
                            oracle.query(low, high),
                            "{}: query [{}, {}]", algorithm, low, high
                        );
                    }
                }
            }
            // A converged verdict implies no pending deltas (the reverse
            // doesn't hold: a completed merge leaves a delta-free but
            // freshly rebuilt — unconverged — inner index).
            if index.is_converged() {
                assert!(!index.has_pending(), "{}", algorithm);
            }
            while index.advance() {}
            assert!(index.is_converged(), "{}", algorithm);
            assert_eq!(
                index.query(0, DOMAIN * 2).scan_result(),
                oracle.query(0, DOMAIN * 2),
                "{}", algorithm
            );
        }
    }
}
