//! Property-based oracle for the tuned refinement kernels: with the same
//! query script, an index running the tuned kernels must be
//! **bit-identical** in every observable to the same index running the
//! scalar reference loops — same answers, same indexing-ops accounting,
//! same phase trajectory — at every refinement stage, for all four
//! algorithms. [`pi_core::tuning::KernelMode`] selects speed, never
//! results.
//!
//! The kernel-level primitives are pinned the same way: the unrolled
//! unchecked scatter against the checked `Vec<Vec<_>>` counting sort,
//! and the ska-style radix sort against `sort_unstable`.

use std::sync::Arc;

use proptest::prelude::*;

use pi_core::kernels::{self, ScatterScratch};
use pi_core::{Algorithm, BudgetPolicy, CostConstants, TuningParameters};
use pi_storage::{Column, Value};

const DOMAIN: u64 = 1 << 20;

/// Drives tuned and scalar twins of one algorithm through the same query
/// script and asserts every observable matches step for step.
fn assert_twins_agree(
    algorithm: Algorithm,
    base: &[Value],
    script: &[(u64, u64)],
    tuned: TuningParameters,
    scalar: TuningParameters,
) {
    let column = Arc::new(Column::from_vec(base.to_vec()));
    let policy = BudgetPolicy::FixedDelta(0.3);
    let constants = CostConstants::synthetic();
    let mut a = algorithm.build_tuned(Arc::clone(&column), policy, constants, tuned);
    let mut b = algorithm.build_tuned(Arc::clone(&column), policy, constants, scalar);
    for (step, &(x, y)) in script.iter().enumerate() {
        // Mix of narrow ranges, point queries (x == y collapses), and the
        // occasional full-domain sweep.
        let (low, high) = if x % 7 == 0 {
            (0, DOMAIN * 2)
        } else {
            (x.min(y), x.max(y))
        };
        let ra = a.query(low, high);
        let rb = b.query(low, high);
        assert_eq!(
            ra.scan_result(),
            rb.scan_result(),
            "{algorithm}: step {step} answer [{low}, {high}]"
        );
        assert_eq!(
            ra.indexing_ops, rb.indexing_ops,
            "{algorithm}: step {step} ops accounting"
        );
        assert_eq!(
            ra.phase, rb.phase,
            "{algorithm}: step {step} phase trajectory"
        );
        assert_eq!(a.status(), b.status(), "{algorithm}: step {step} status");
    }
    // Converge both and re-verify terminal answers.
    let mut guard = 0;
    while !a.is_converged() || !b.is_converged() {
        a.query(1, 0);
        b.query(1, 0);
        guard += 1;
        assert!(guard < 1_000_000, "{algorithm}: did not converge");
    }
    for (low, high) in [(0, DOMAIN * 2), (DOMAIN / 4, DOMAIN / 2), (7, 7), (5, 3)] {
        assert_eq!(
            a.query(low, high).scan_result(),
            b.query(low, high).scan_result(),
            "{algorithm}: post-convergence [{low}, {high}]"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tuned vs scalar over all four algorithms, arbitrary data and
    /// arbitrary refinement stages (script length varies, so the twins
    /// are compared mid-creation, mid-refinement, mid-merge and after
    /// convergence).
    #[test]
    fn tuned_and_scalar_kernels_are_result_identical(
        base in prop::collection::vec(0..DOMAIN, 0..800),
        script in prop::collection::vec((0..DOMAIN, 0..DOMAIN), 1..40),
    ) {
        for algorithm in Algorithm::ALL {
            assert_twins_agree(
                algorithm,
                &base,
                &script,
                TuningParameters::default(),
                TuningParameters::scalar(),
            );
        }
    }

    /// The startup calibration probe may pick any thresholds it likes —
    /// it must never change a single answer.
    #[test]
    fn calibration_never_changes_results(
        base in prop::collection::vec(0..DOMAIN, 0..400),
        script in prop::collection::vec((0..DOMAIN, 0..DOMAIN), 1..20),
    ) {
        for algorithm in Algorithm::ALL {
            assert_twins_agree(
                algorithm,
                &base,
                &script,
                TuningParameters::calibrated(),
                TuningParameters::scalar(),
            );
        }
    }

    /// Kernel-level pin: the unrolled unchecked scatter is a stable
    /// grouping identical to the checked counting-sort reference, for
    /// both unroll widths and arbitrary bucket counts.
    #[test]
    fn scatter_matches_scalar_reference(
        values in prop::collection::vec(any::<u64>(), 0..2_000),
        bucket_bits in 1..8u32,
        unroll_tag in 0..2u64,
    ) {
        // The shim has no value-list strategy; a small tag picks the width.
        let unroll = if unroll_tag == 0 { 1 } else { 8 };
        let buckets = 1usize << bucket_bits;
        let mask = (buckets - 1) as u64;
        let digit = move |v: u64| (v & mask) as u8;
        let mut scratch = ScatterScratch::new();
        let (grouped, offsets) = scratch.scatter(&values, buckets, unroll, &digit);
        let (want_grouped, want_offsets) = kernels::scatter_scalar(&values, buckets, &digit);
        prop_assert_eq!(grouped, &want_grouped[..]);
        prop_assert_eq!(&offsets[..=buckets], &want_offsets[..]);
    }

    /// Kernel-level pin: the ska-style radix sort sorts exactly like the
    /// standard sort for any threshold (including 0 — pure radix — and
    /// huge — pure comparison fallback).
    #[test]
    fn ska_sort_matches_sort_unstable(
        mut values in prop::collection::vec(any::<u64>(), 0..2_000),
        threshold_tag in 0..5u64,
    ) {
        let threshold = [0usize, 1, 64, 1 << 14, usize::MAX][threshold_tag as usize];
        let mut want = values.clone();
        want.sort_unstable();
        kernels::ska_sort_by_level(&mut values, 7, threshold);
        prop_assert_eq!(values, want);
    }
}

/// Degenerate shapes the random strategies rarely hit exactly.
#[test]
fn degenerate_inputs_are_result_identical() {
    let cases: Vec<Vec<Value>> = vec![
        vec![],
        vec![42],
        vec![7; 500],
        (0..500).collect(),
        (0..500).rev().collect(),
    ];
    let script = [(3u64, 900u64), (5, 5), (0, 0), (11, 400)];
    for base in &cases {
        for algorithm in Algorithm::ALL {
            assert_twins_agree(
                algorithm,
                base,
                &script,
                TuningParameters::default(),
                TuningParameters::scalar(),
            );
        }
    }
}
