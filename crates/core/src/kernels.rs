//! Memory-bound refinement kernels: unrolled radix scatter, histogram
//! counting with level skipping, and ska-sort-style in-place swaps.
//!
//! The paper's refinement loops are *branch-bound*: one element per
//! iteration, a bounds-checked block lookup (`i / cap`, `i % cap` — an
//! integer division per element) and an unpredictable per-bucket branch.
//! The kernels here restructure the same work to be *memory-bound*:
//!
//! * [`ScatterScratch::scatter`] — two passes over a contiguous slice:
//!   an 8-wide unrolled counting pass that also records each element's
//!   digit, then an unchecked scatter into a reused output buffer. The
//!   result groups elements by digit, so callers append whole runs per
//!   bucket (memcpy-class) instead of pushing one element at a time.
//! * [`histogram`] — the standalone unrolled counting pass.
//! * [`counts_and_level_descending`] — all byte-level histograms in one
//!   pass, returning the highest level whose histogram is non-degenerate
//!   (the `get_counts_and_level_descending` pattern): levels where every
//!   key shares one byte are skipped entirely.
//! * [`ska_sort`] — in-place byte-radix sort using american-flag cycle
//!   swaps, falling back to `sort_unstable` below the machine's measured
//!   comparison-sort crossover ([`TuningParameters`]).
//! * [`sort_region`] — the façade the algorithms call for small-node
//!   sorts; picks comparison vs radix sort from the tuning constants.
//!
//! Every kernel is bit-identical to its scalar reference (kept here as
//! `*_scalar` functions and pinned by `tests/proptest_kernels.rs`), so
//! [`KernelMode`] only selects speed, never answers.
//!
//! # Safety
//!
//! The single `unsafe` block (the scatter's write pass) does not trust
//! the caller's digit closure to be pure. The counting pass *stores*
//! every digit it counted in a `Vec<u8>`; the write pass re-reads those
//! stored digits instead of re-invoking the closure. Counts and
//! destinations therefore agree by construction, and each bucket cursor
//! writes exactly `counts[d]` elements into its reserved range.

use crate::tuning::{KernelMode, TuningParameters};
use pi_storage::Value;

/// Maximum digit fan-out the scatter kernels support (one byte).
pub const MAX_SCATTER_BUCKETS: usize = 256;

/// Unrolled histogram: counts `digit_of(v)` over `values`.
///
/// `unroll` selects the 8-wide unrolled pass (`8`) or the plain loop
/// (anything else); both return identical counts — the probe in
/// [`TuningParameters::calibrated`] times them against each other.
/// Digits must be `< MAX_SCATTER_BUCKETS`; the returned array is indexed
/// by digit.
pub fn histogram<F: Fn(Value) -> u8>(
    values: &[Value],
    unroll: usize,
    digit_of: &F,
) -> [usize; 256] {
    let mut counts = [0usize; 256];
    if unroll == 8 {
        let mut chunks = values.chunks_exact(8);
        for chunk in &mut chunks {
            // Manually unrolled: 8 independent increments per iteration
            // keep the loop throughput-bound on the store port instead
            // of the loop-carried branch.
            counts[digit_of(chunk[0]) as usize] += 1;
            counts[digit_of(chunk[1]) as usize] += 1;
            counts[digit_of(chunk[2]) as usize] += 1;
            counts[digit_of(chunk[3]) as usize] += 1;
            counts[digit_of(chunk[4]) as usize] += 1;
            counts[digit_of(chunk[5]) as usize] += 1;
            counts[digit_of(chunk[6]) as usize] += 1;
            counts[digit_of(chunk[7]) as usize] += 1;
        }
        for &v in chunks.remainder() {
            counts[digit_of(v) as usize] += 1;
        }
    } else {
        for &v in values {
            counts[digit_of(v) as usize] += 1;
        }
    }
    counts
}

/// All eight byte-level histograms of `data` in a single pass, plus the
/// highest level `<= max_level` whose histogram is non-degenerate (more
/// than one occupied bucket).
///
/// Returns `None` when every level at or below `max_level` is degenerate
/// — i.e. all keys are equal in those bytes and no radix pass is needed
/// at all. This is the level-skipping pattern: a dataset whose keys
/// share their top bytes skips straight to the first byte that actually
/// discriminates.
pub fn counts_and_level_descending(data: &[Value], max_level: u32) -> Option<(u32, [usize; 256])> {
    debug_assert!(max_level < 8);
    let levels = max_level as usize + 1;
    let mut counts = vec![[0usize; 256]; levels];
    for &v in data {
        let bytes = v.to_le_bytes();
        for (level, c) in counts.iter_mut().enumerate() {
            c[bytes[level] as usize] += 1;
        }
    }
    for level in (0..levels).rev() {
        let occupied = counts[level].iter().filter(|&&c| c > 0).count();
        if occupied > 1 {
            return Some((level as u32, counts[level]));
        }
    }
    None
}

/// Reusable scratch for [`ScatterScratch::scatter`]: counts, bucket
/// cursors, the per-element digit buffer and the grouped output.
///
/// Hold one per index and reuse it across refinement steps — the buffers
/// only ever grow to the largest step observed, so steady-state
/// refinement allocates nothing.
///
/// # Examples
///
/// ```
/// use pi_core::kernels::ScatterScratch;
///
/// let mut scratch = ScatterScratch::new();
/// let values = [3u64, 1, 2, 1, 3, 0];
/// let (grouped, offsets) = scratch.scatter(&values, 4, 8, &|v| v as u8);
/// assert_eq!(grouped, &[0, 1, 1, 2, 3, 3]);
/// // `offsets[d]..offsets[d + 1]` is digit d's run.
/// assert_eq!(&offsets[..5], &[0, 1, 3, 4, 6]);
/// ```
#[derive(Debug)]
pub struct ScatterScratch {
    /// Per-bucket write cursor during the write pass; rebuilt into the
    /// returned offsets table (`offsets[d]` = start of digit `d`'s run,
    /// trailing entries = `n`) before `scatter` returns.
    cursors: [usize; 257],
    digits: Vec<u8>,
    out: Vec<Value>,
}

impl Default for ScatterScratch {
    fn default() -> Self {
        ScatterScratch {
            cursors: [0; 257],
            digits: Vec::new(),
            out: Vec::new(),
        }
    }
}

impl ScatterScratch {
    /// Empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        ScatterScratch::default()
    }

    /// Groups `values` by digit in two passes and returns
    /// `(grouped, offsets)`: `grouped` is a permutation of `values`
    /// stable within each digit, and `offsets[d]..offsets[d + 1]` (for
    /// `d < buckets`) is digit `d`'s run inside it.
    ///
    /// `digit_of` must return digits `< buckets`; `buckets` must be
    /// `<= MAX_SCATTER_BUCKETS`. Panics otherwise (the counting pass is
    /// fully checked). `unroll` follows [`histogram`].
    pub fn scatter<F: Fn(Value) -> u8>(
        &mut self,
        values: &[Value],
        buckets: usize,
        unroll: usize,
        digit_of: &F,
    ) -> (&[Value], &[usize; 257]) {
        assert!(buckets <= MAX_SCATTER_BUCKETS, "scatter fan-out too wide");
        let n = values.len();

        // Pass 1 (checked): count digits AND record them, so pass 2
        // never has to trust `digit_of` again.
        self.digits.clear();
        self.digits.reserve(n);
        let mut counts = [0usize; 256];
        let mut push_digit = |v: Value| {
            let d = digit_of(v);
            assert!((d as usize) < buckets, "digit out of range");
            counts[d as usize] += 1;
            self.digits.push(d);
        };
        if unroll == 8 {
            let mut chunks = values.chunks_exact(8);
            for chunk in &mut chunks {
                push_digit(chunk[0]);
                push_digit(chunk[1]);
                push_digit(chunk[2]);
                push_digit(chunk[3]);
                push_digit(chunk[4]);
                push_digit(chunk[5]);
                push_digit(chunk[6]);
                push_digit(chunk[7]);
            }
            for &v in chunks.remainder() {
                push_digit(v);
            }
        } else {
            for &v in values {
                push_digit(v);
            }
        }

        // Prefix sums -> per-bucket write cursors + final offsets.
        let mut sum = 0usize;
        for (cursor, &count) in self.cursors.iter_mut().zip(&counts[..buckets]) {
            *cursor = sum;
            sum += count;
        }
        for c in self.cursors[buckets..].iter_mut() {
            *c = sum;
        }
        debug_assert_eq!(sum, n);

        // Pass 2: unchecked scatter using the *stored* digits.
        self.out.clear();
        self.out.reserve(n);
        // SAFETY: `digits` holds exactly `n` entries, each asserted
        // `< buckets` in pass 1, and `cursors` was built from the counts
        // of those same stored digits — so each bucket cursor advances
        // exactly `counts[d]` times within its reserved `[start, end)`
        // range and every slot in `0..n` is written exactly once. `out`
        // has capacity `n` (reserved above); `set_len` runs after all
        // `n` writes.
        unsafe {
            let out = self.out.spare_capacity_mut();
            for (i, &d) in self.digits.iter().enumerate() {
                let cursor = self.cursors.get_unchecked_mut(d as usize);
                out.get_unchecked_mut(*cursor)
                    .write(*values.get_unchecked(i));
                *cursor += 1;
            }
            self.out.set_len(n);
        }

        // Rebuild offsets (cursors were consumed): offsets[d] = start of
        // bucket d, offsets[buckets..] = n so `offsets[d + 1]` is always
        // valid for `d < buckets`.
        let mut sum = 0usize;
        for (cursor, &count) in self.cursors.iter_mut().zip(&counts[..buckets]) {
            *cursor = sum;
            sum += count;
        }
        for c in self.cursors[buckets..].iter_mut() {
            *c = sum;
        }
        (&self.out, &self.cursors)
    }
}

/// Scalar reference for [`ScatterScratch::scatter`]: stable counting
/// sort by digit using only checked indexing. The proptest oracle pins
/// the tuned scatter to this.
pub fn scatter_scalar<F: Fn(Value) -> u8>(
    values: &[Value],
    buckets: usize,
    digit_of: &F,
) -> (Vec<Value>, Vec<usize>) {
    assert!(buckets <= MAX_SCATTER_BUCKETS, "scatter fan-out too wide");
    let mut groups: Vec<Vec<Value>> = vec![Vec::new(); buckets];
    for &v in values {
        let d = digit_of(v) as usize;
        assert!(d < buckets, "digit out of range");
        groups[d].push(v);
    }
    let mut offsets = Vec::with_capacity(buckets + 1);
    let mut out = Vec::with_capacity(values.len());
    offsets.push(0);
    for group in groups {
        out.extend_from_slice(&group);
        offsets.push(out.len());
    }
    (out, offsets)
}

/// In-place byte-radix sort with american-flag cycle swaps and level
/// skipping; equivalent to `sort_unstable` on `u64` keys.
///
/// Regions at or below `tuning.comparison_sort_threshold` (and every
/// call in [`KernelMode::Scalar`]) use `sort_unstable` directly — the
/// calibration probe measures where the crossover sits on this machine.
///
/// # Examples
///
/// ```
/// use pi_core::{kernels::ska_sort, TuningParameters};
///
/// let mut data = vec![5u64, 3, 9, 1, 3];
/// ska_sort(&mut data, &TuningParameters::default());
/// assert_eq!(data, [1, 3, 3, 5, 9]);
/// ```
pub fn ska_sort(data: &mut [Value], tuning: &TuningParameters) {
    if tuning.mode == KernelMode::Scalar {
        data.sort_unstable();
        return;
    }
    ska_sort_by_level(data, 7, tuning.comparison_sort_threshold);
}

/// Recursive worker behind [`ska_sort`]: sorts `data` by bytes
/// `level, level - 1, …, 0` (most significant first). Exposed for the
/// calibration probe and the kernel benches; normal callers use
/// [`ska_sort`] / [`sort_region`].
pub fn ska_sort_by_level(data: &mut [Value], level: u32, comparison_sort_threshold: usize) {
    if data.len() <= comparison_sort_threshold.max(1) {
        data.sort_unstable();
        return;
    }
    // Level skipping: jump straight to the highest byte that actually
    // discriminates; if none does, all keys are equal — done.
    let Some((level, counts)) = counts_and_level_descending(data, level) else {
        return;
    };
    let shift = level * 8;

    // Bucket boundaries from the histogram.
    let mut starts = [0usize; 256];
    let mut ends = [0usize; 256];
    let mut sum = 0usize;
    for b in 0..256 {
        starts[b] = sum;
        sum += counts[b];
        ends[b] = sum;
    }

    // American-flag permutation: walk each bucket's unplaced region and
    // cycle-swap elements home. Every swap places at least one element
    // into its final bucket, so the whole pass is <= 2n moves and O(1)
    // extra space.
    let mut next = starts;
    for b in 0..256 {
        while next[b] < ends[b] {
            let d = ((data[next[b]] >> shift) & 0xff) as usize;
            if d == b {
                next[b] += 1;
            } else {
                data.swap(next[b], next[d]);
                next[d] += 1;
            }
        }
    }

    // Recurse into each bucket on the next discriminating byte.
    if level > 0 {
        for b in 0..256 {
            let bucket = &mut data[starts[b]..ends[b]];
            if bucket.len() > 1 {
                ska_sort_by_level(bucket, level - 1, comparison_sort_threshold);
            }
        }
    }
}

/// Sorts one small-node region: the façade [`crate::sorter`] and the
/// MSD merge path call. Comparison sort below the tuned threshold (or in
/// scalar mode), in-place radix above it. Output is always identical to
/// `sort_unstable`.
pub fn sort_region(data: &mut [Value], tuning: &TuningParameters) {
    if tuning.mode == KernelMode::Scalar || data.len() <= tuning.comparison_sort_threshold {
        data.sort_unstable();
    } else {
        ska_sort_by_level(data, 7, tuning.comparison_sort_threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(len: usize, seed: u64) -> Vec<Value> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn histogram_unrolled_matches_plain() {
        let data = probe(1013, 7);
        let digit = |v: Value| (v >> 13) as u8;
        assert_eq!(histogram(&data, 8, &digit), histogram(&data, 1, &digit));
    }

    #[test]
    fn histogram_counts_every_element() {
        let data = probe(777, 3);
        let counts = histogram(&data, 8, &|v| v as u8);
        assert_eq!(counts.iter().sum::<usize>(), data.len());
    }

    #[test]
    fn scatter_matches_scalar_reference() {
        for unroll in [1usize, 8] {
            let mut scratch = ScatterScratch::new();
            for (len, buckets) in [(0usize, 64usize), (1, 64), (7, 3), (1000, 64), (4096, 256)] {
                let data = probe(len, len as u64 + 1);
                let digit = move |v: Value| ((v >> 5) as usize % buckets) as u8;
                let (grouped, offsets) = scratch.scatter(&data, buckets, unroll, &digit);
                let (want, want_offsets) = scatter_scalar(&data, buckets, &digit);
                assert_eq!(grouped, &want[..]);
                assert_eq!(&offsets[..=buckets], &want_offsets[..]);
            }
        }
    }

    #[test]
    fn scatter_is_stable_within_buckets() {
        // Values sharing a digit must keep their input order (the
        // algorithms' scalar loops preserve arrival order per bucket).
        let data = vec![0x10, 0x11, 0x12, 0x20, 0x13, 0x21];
        let mut scratch = ScatterScratch::new();
        let (grouped, _) = scratch.scatter(&data, 16, 8, &|v| (v >> 4) as u8);
        assert_eq!(grouped, &[0x10, 0x11, 0x12, 0x13, 0x20, 0x21]);
    }

    #[test]
    fn scatter_scratch_is_reusable() {
        let mut scratch = ScatterScratch::new();
        let a = probe(500, 1);
        let b = probe(300, 2);
        let digit = |v: Value| v as u8;
        scratch.scatter(&a, 256, 8, &digit);
        let (grouped, _) = scratch.scatter(&b, 256, 8, &digit);
        let (want, _) = scatter_scalar(&b, 256, &digit);
        assert_eq!(grouped, &want[..]);
    }

    #[test]
    #[should_panic(expected = "digit out of range")]
    fn scatter_rejects_out_of_range_digits() {
        let mut scratch = ScatterScratch::new();
        scratch.scatter(&[300], 4, 8, &|v| v as u8);
    }

    #[test]
    fn counts_and_level_skips_degenerate_levels() {
        // Keys differ only in byte 0: every higher level is degenerate.
        let data = vec![0xAA00u64 + 3, 0xAA00 + 1, 0xAA00 + 2];
        let (level, counts) = counts_and_level_descending(&data, 7).unwrap();
        assert_eq!(level, 0);
        assert_eq!(counts[1] + counts[2] + counts[3], 3);
    }

    #[test]
    fn counts_and_level_none_when_all_equal() {
        assert!(counts_and_level_descending(&[42, 42, 42], 7).is_none());
        assert!(counts_and_level_descending(&[], 7).is_none());
        assert!(counts_and_level_descending(&[9], 7).is_none());
    }

    #[test]
    fn counts_and_level_respects_max_level() {
        // Keys differ only in byte 6; capped at level 5 that's invisible.
        let data = vec![1u64 << 48, 2u64 << 48];
        assert_eq!(counts_and_level_descending(&data, 7).unwrap().0, 6);
        assert!(counts_and_level_descending(&data, 5).is_none());
    }

    #[test]
    fn ska_sort_matches_sort_unstable() {
        let tuning = TuningParameters {
            comparison_sort_threshold: 16, // force the radix path
            ..TuningParameters::default()
        };
        for len in [0usize, 1, 2, 15, 16, 17, 1000, 5000] {
            let mut data = probe(len, len as u64);
            let mut want = data.clone();
            want.sort_unstable();
            ska_sort(&mut data, &tuning);
            assert_eq!(data, want, "len {len}");
        }
    }

    #[test]
    fn ska_sort_handles_degenerate_inputs() {
        let tuning = TuningParameters {
            comparison_sort_threshold: 1,
            ..TuningParameters::default()
        };
        let mut all_equal = vec![7u64; 4096];
        ska_sort(&mut all_equal, &tuning);
        assert!(all_equal.iter().all(|&v| v == 7));

        let mut sorted: Vec<Value> = (0..4096).collect();
        ska_sort(&mut sorted, &tuning);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

        let mut reversed: Vec<Value> = (0..4096).rev().collect();
        ska_sort(&mut reversed, &tuning);
        assert!(reversed.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sort_region_scalar_and_tuned_agree() {
        let data = probe(3000, 99);
        let mut tuned = data.clone();
        let mut scalar = data;
        sort_region(
            &mut tuned,
            &TuningParameters {
                comparison_sort_threshold: 64,
                ..TuningParameters::default()
            },
        );
        sort_region(&mut scalar, &TuningParameters::scalar());
        assert_eq!(tuned, scalar);
    }
}
