//! Linked-block buckets shared by the radix- and bucket-based progressive
//! indexes.
//!
//! Section 3.2 of the paper: "To avoid having to allocate large regions of
//! sequential data for every bucket, the buckets are implemented as a
//! linked list of blocks of memory that each hold up to `s_b` elements.
//! When a block is filled, another block is added to the list." The block
//! layout trades a small per-`s_b`-elements allocation and random access
//! (`τ` and `φ` in the cost model) for never having to grow or move bucket
//! contents.
//!
//! The paper also fixes the number of buckets: with 512 L1 cache lines and
//! 64 TLB entries on its machine, it uses `b = 64` buckets so that all
//! bucket write heads stay cache- and TLB-resident
//! ([`DEFAULT_BUCKET_COUNT`]).

use pi_storage::scan::ScanResult;
use pi_storage::Value;

/// Default number of buckets `b` (one radix digit of `log2 64 = 6` bits).
pub const DEFAULT_BUCKET_COUNT: usize = 64;

/// Default block capacity `s_b` in elements (128 KiB of 8-byte values per
/// block).
pub const DEFAULT_BLOCK_CAPACITY: usize = 16 * 1024;

/// Width in bits of the **encoded key domain**: every key type served by
/// the stack — `u64` itself, sign-flipped `i64`, total-ordered `f64`,
/// big-endian string prefixes — maps into `u64` through an
/// order-preserving encoding (`pi_storage::encoding::OrderedKey`), so no
/// value a radix planner can meet ever carries more than this many
/// significant bits.
///
/// The constant matters because encoded domains are *wide by
/// construction*: a column of floats straddling zero spans nearly the
/// full code space (negative values encode near `0`, positive values
/// near `u64::MAX`), unlike the paper's dense integer domains `[0, n)`.
/// Radix planning must therefore size its recursion depth / pass count
/// from [`domain_bits`] with this as the ceiling, never from the row
/// count.
pub const ENCODED_DOMAIN_BITS: u32 = 64;

/// Number of significant bits of the normalised domain `[min, max]` —
/// the quantity radix bucket planning is sized by (MSD recursion depth,
/// LSD pass count). `0` when the domain holds a single value; at most
/// [`ENCODED_DOMAIN_BITS`].
pub fn domain_bits(min: Value, max: Value) -> u32 {
    if max <= min {
        0
    } else {
        ENCODED_DOMAIN_BITS - (max - min).leading_zeros()
    }
}

/// Worst-case number of radix levels (MSD) or passes (LSD) over a full
/// encoded domain with `log2 b = radix_bits` bits consumed per level:
/// `⌈ENCODED_DOMAIN_BITS / radix_bits⌉`. With the paper's `b = 64` this
/// is 11 — the bound under which every encoded key domain converges.
///
/// # Panics
/// Panics when `radix_bits == 0`.
pub const fn max_radix_levels(radix_bits: u32) -> u32 {
    assert!(radix_bits > 0, "radix digit must cover at least one bit");
    ENCODED_DOMAIN_BITS.div_ceil(radix_bits)
}

/// Number of radix rounds needed to fully partition a domain of
/// `domain_bits` significant bits with `radix_bits` consumed per round:
/// `⌈domain_bits / radix_bits⌉`, at least one round, capped by
/// [`max_radix_levels`]. Both radix variants size their planning through
/// this single helper (LSD pass count, MSD recursion depth bound).
///
/// # Panics
/// Panics when `radix_bits == 0`.
pub const fn radix_rounds(domain_bits: u32, radix_bits: u32) -> u32 {
    let rounds = domain_bits.div_ceil(radix_bits);
    let rounds = if rounds == 0 { 1 } else { rounds };
    let cap = max_radix_levels(radix_bits);
    if rounds > cap {
        cap
    } else {
        rounds
    }
}

/// A bucket stored as a list of fixed-capacity blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockBucket {
    blocks: Vec<Vec<Value>>,
    block_capacity: usize,
    len: usize,
}

impl BlockBucket {
    /// Creates an empty bucket whose blocks hold up to `block_capacity`
    /// elements.
    ///
    /// # Panics
    /// Panics when `block_capacity == 0`.
    pub fn new(block_capacity: usize) -> Self {
        assert!(block_capacity > 0, "bucket block capacity must be positive");
        BlockBucket {
            blocks: Vec::new(),
            block_capacity,
            len: 0,
        }
    }

    /// Creates an empty bucket with [`DEFAULT_BLOCK_CAPACITY`].
    pub fn with_default_blocks() -> Self {
        Self::new(DEFAULT_BLOCK_CAPACITY)
    }

    /// Appends a value, allocating a new block when the current one is
    /// full. Returns `true` when the push triggered a block allocation
    /// (the `τ` event of the cost model).
    #[inline]
    pub fn push(&mut self, value: Value) -> bool {
        let allocated = match self.blocks.last() {
            Some(last) if last.len() < self.block_capacity => false,
            _ => {
                self.blocks.push(Vec::with_capacity(self.block_capacity));
                true
            }
        };
        // The block pushed or found above always has spare capacity.
        self.blocks
            .last_mut()
            .expect("bucket always has a current block after the allocation check")
            .push(value);
        self.len += 1;
        allocated
    }

    /// Number of elements stored in the bucket.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bucket holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks currently allocated.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block capacity `s_b` this bucket was created with.
    #[inline]
    pub fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    /// Element at insertion position `i` (0-based, insertion order).
    ///
    /// # Panics
    /// Panics when `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        assert!(
            i < self.len,
            "bucket index {i} out of bounds (len {})",
            self.len
        );
        self.blocks[i / self.block_capacity][i % self.block_capacity]
    }

    /// Iterator over the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.blocks.iter().flat_map(|b| b.iter().copied())
    }

    /// Predicated range-sum over all elements of the bucket.
    pub fn range_sum(&self, low: Value, high: Value) -> ScanResult {
        let mut result = ScanResult::EMPTY;
        for block in &self.blocks {
            result = result.merge(pi_storage::scan::scan_range_sum(block, low, high));
        }
        result
    }

    /// Predicated range-sum over the elements at insertion positions
    /// `[from, len)`. Used when a bucket is being drained into the next
    /// structure and only its unconsumed tail still holds live data.
    pub fn range_sum_from(&self, from: usize, low: Value, high: Value) -> ScanResult {
        if from >= self.len {
            return ScanResult::EMPTY;
        }
        let mut result = ScanResult::EMPTY;
        let mut skip = from;
        for block in &self.blocks {
            if skip >= block.len() {
                skip -= block.len();
                continue;
            }
            result = result.merge(pi_storage::scan::scan_range_sum(&block[skip..], low, high));
            skip = 0;
        }
        result
    }

    /// Appends a whole run of values block-wise (memcpy-class, no
    /// per-element capacity branch). Returns the number of block
    /// allocations performed — the `τ` events of the cost model, so the
    /// caller's accounting matches an equivalent sequence of
    /// [`BlockBucket::push`] calls exactly.
    pub fn extend_from_slice(&mut self, mut values: &[Value]) -> u64 {
        let mut allocations = 0u64;
        while !values.is_empty() {
            let spare = match self.blocks.last() {
                Some(last) if last.len() < self.block_capacity => self.block_capacity - last.len(),
                _ => {
                    self.blocks.push(Vec::with_capacity(self.block_capacity));
                    allocations += 1;
                    self.block_capacity
                }
            };
            let take = spare.min(values.len());
            let block = self
                .blocks
                .last_mut()
                .expect("bucket always has a current block after the allocation check");
            block.extend_from_slice(&values[..take]);
            self.len += take;
            values = &values[take..];
        }
        allocations
    }

    /// Copies all elements into `out` in insertion order.
    pub fn append_to(&self, out: &mut Vec<Value>) {
        for block in &self.blocks {
            out.extend_from_slice(block);
        }
    }

    /// Copies the elements at insertion positions `[from, from + out.len())`
    /// into `out`, block-wise. The merge loops use this instead of a
    /// per-element [`BlockBucket::get`] (which costs an integer division
    /// per element).
    ///
    /// # Panics
    /// Panics when the requested range reaches past `self.len()`.
    pub fn copy_range_to(&self, from: usize, out: &mut [Value]) {
        assert!(
            from + out.len() <= self.len,
            "copy range {}..{} out of bounds (len {})",
            from,
            from + out.len(),
            self.len
        );
        let mut written = 0usize;
        for slice in self.block_slices(from, out.len()) {
            out[written..written + slice.len()].copy_from_slice(slice);
            written += slice.len();
        }
    }

    /// Iterator over the contiguous block sub-slices covering insertion
    /// positions `[from, from + len)`. This is the bucket-drain primitive:
    /// the tuned refinement kernels pull whole slices out of the source
    /// bucket and scatter them, instead of calling [`BlockBucket::get`]
    /// once per element.
    ///
    /// # Panics
    /// Panics when `from + len > self.len()`.
    pub fn block_slices(&self, from: usize, len: usize) -> impl Iterator<Item = &[Value]> {
        assert!(
            from + len <= self.len,
            "slice range {}..{} out of bounds (len {})",
            from,
            from + len,
            self.len
        );
        let first_block = from / self.block_capacity;
        let mut skip = from % self.block_capacity;
        let mut remaining = len;
        self.blocks[first_block.min(self.blocks.len())..]
            .iter()
            .map_while(move |block| {
                if remaining == 0 {
                    return None;
                }
                let start = skip;
                skip = 0;
                let take = (block.len() - start).min(remaining);
                remaining -= take;
                Some(&block[start..start + take])
            })
            .filter(|s| !s.is_empty())
    }

    /// Drops all blocks, releasing their memory.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.len = 0;
    }
}

/// A fixed-size set of [`BlockBucket`]s plus the routing metadata needed to
/// map a value to its bucket. Construction of the per-algorithm routing
/// (radix shift, equi-height bounds) lives with the algorithms; this type
/// only manages storage.
#[derive(Debug, Clone)]
pub struct BucketSet {
    buckets: Vec<BlockBucket>,
    /// Total number of elements across all buckets.
    len: usize,
    /// Number of block allocations performed so far (for cost accounting).
    allocations: u64,
}

impl BucketSet {
    /// Creates `bucket_count` empty buckets with the given block capacity.
    pub fn new(bucket_count: usize, block_capacity: usize) -> Self {
        assert!(bucket_count > 0, "bucket count must be positive");
        BucketSet {
            buckets: (0..bucket_count)
                .map(|_| BlockBucket::new(block_capacity))
                .collect(),
            len: 0,
            allocations: 0,
        }
    }

    /// Number of buckets.
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total number of elements across all buckets.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bucket holds any element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of block allocations performed so far.
    #[inline]
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Appends `value` to bucket `bucket`.
    ///
    /// # Panics
    /// Panics when `bucket` is out of range.
    #[inline]
    pub fn push(&mut self, bucket: usize, value: Value) {
        if self.buckets[bucket].push(value) {
            self.allocations += 1;
        }
        self.len += 1;
    }

    /// Appends a whole run of values to bucket `bucket` block-wise,
    /// keeping the allocation count identical to pushing them one by
    /// one. The tuned refinement kernels land each scatter group with
    /// one call.
    ///
    /// # Panics
    /// Panics when `bucket` is out of range.
    #[inline]
    pub fn extend_from_slice(&mut self, bucket: usize, values: &[Value]) {
        self.allocations += self.buckets[bucket].extend_from_slice(values);
        self.len += values.len();
    }

    /// Immutable access to bucket `i`.
    #[inline]
    pub fn bucket(&self, i: usize) -> &BlockBucket {
        &self.buckets[i]
    }

    /// Sizes of all buckets, in bucket order.
    pub fn sizes(&self) -> Vec<usize> {
        self.buckets.iter().map(BlockBucket::len).collect()
    }

    /// Predicated range-sum over a contiguous range of buckets
    /// `[first, last]` (inclusive).
    pub fn range_sum_buckets(
        &self,
        first: usize,
        last: usize,
        low: Value,
        high: Value,
    ) -> ScanResult {
        let mut result = ScanResult::EMPTY;
        for bucket in &self.buckets[first..=last.min(self.buckets.len() - 1)] {
            result = result.merge(bucket.range_sum(low, high));
        }
        result
    }

    /// Releases the storage of bucket `i` (used once a bucket has been
    /// merged into its successor structure).
    pub fn clear_bucket(&mut self, i: usize) {
        self.len -= self.buckets[i].len();
        self.buckets[i].clear();
    }

    /// Iterator over the buckets in order.
    pub fn iter(&self) -> impl Iterator<Item = &BlockBucket> {
        self.buckets.iter()
    }

    /// Consumes the set and returns its buckets in order.
    pub fn into_buckets(self) -> Vec<BlockBucket> {
        self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_allocates_blocks_lazily() {
        let mut b = BlockBucket::new(4);
        assert_eq!(b.block_count(), 0);
        assert!(b.push(1)); // first push allocates
        assert!(!b.push(2));
        assert!(!b.push(3));
        assert!(!b.push(4));
        assert!(b.push(5)); // fifth push allocates a second block
        assert_eq!(b.block_count(), 2);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn get_and_iter_follow_insertion_order() {
        let mut b = BlockBucket::new(3);
        for v in [9, 7, 5, 3, 1] {
            b.push(v);
        }
        assert_eq!(b.get(0), 9);
        assert_eq!(b.get(3), 3);
        let collected: Vec<Value> = b.iter().collect();
        assert_eq!(collected, vec![9, 7, 5, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let b = BlockBucket::new(2);
        let _ = b.get(0);
    }

    #[test]
    fn range_sum_matches_reference() {
        let mut b = BlockBucket::new(3);
        let values = [6, 3, 14, 13, 2, 1, 8, 19];
        for v in values {
            b.push(v);
        }
        let expected = pi_storage::scan::scan_range_sum(&values, 3, 13);
        assert_eq!(b.range_sum(3, 13), expected);
    }

    #[test]
    fn range_sum_from_skips_consumed_prefix() {
        let mut b = BlockBucket::new(2);
        let values = [10, 20, 30, 40, 50];
        for v in values {
            b.push(v);
        }
        // Skip the first three (already consumed) elements.
        let expected = pi_storage::scan::scan_range_sum(&values[3..], 0, 100);
        assert_eq!(b.range_sum_from(3, 0, 100), expected);
        assert_eq!(b.range_sum_from(5, 0, 100), ScanResult::EMPTY);
        assert_eq!(b.range_sum_from(7, 0, 100), ScanResult::EMPTY);
    }

    #[test]
    fn append_to_preserves_order_and_clear_releases() {
        let mut b = BlockBucket::new(2);
        for v in [3, 1, 2] {
            b.push(v);
        }
        let mut out = Vec::new();
        b.append_to(&mut out);
        assert_eq!(out, vec![3, 1, 2]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.block_count(), 0);
    }

    #[test]
    fn bucket_set_tracks_len_and_allocations() {
        let mut set = BucketSet::new(4, 2);
        assert!(set.is_empty());
        for i in 0..10u64 {
            set.push((i % 4) as usize, i);
        }
        assert_eq!(set.len(), 10);
        assert_eq!(set.bucket_count(), 4);
        // Buckets 0 and 1 hold 3 elements (2 blocks each); 2 and 3 hold 2
        // (1 block each) = 6 allocations.
        assert_eq!(set.allocations(), 6);
        assert_eq!(set.sizes(), vec![3, 3, 2, 2]);
    }

    #[test]
    fn bucket_set_range_sum_over_bucket_interval() {
        let mut set = BucketSet::new(4, 8);
        // Value v goes to bucket v / 25 (a simple range partitioning).
        for v in 0..100u64 {
            set.push((v / 25) as usize, v);
        }
        let expected = pi_storage::scan::scan_range_sum(&(0..100u64).collect::<Vec<_>>(), 30, 70);
        // Values 30..=70 live in buckets 1 and 2.
        assert_eq!(set.range_sum_buckets(1, 2, 30, 70), expected);
    }

    #[test]
    fn bucket_set_clear_bucket_updates_len() {
        let mut set = BucketSet::new(2, 4);
        for v in 0..8u64 {
            set.push((v % 2) as usize, v);
        }
        assert_eq!(set.len(), 8);
        set.clear_bucket(0);
        assert_eq!(set.len(), 4);
        assert!(set.bucket(0).is_empty());
        assert_eq!(set.bucket(1).len(), 4);
    }

    #[test]
    #[should_panic(expected = "block capacity")]
    fn zero_block_capacity_rejected() {
        let _ = BlockBucket::new(0);
    }

    #[test]
    fn domain_bits_spans_narrow_and_encoded_domains() {
        assert_eq!(domain_bits(0, 0), 0);
        assert_eq!(domain_bits(5, 5), 0);
        assert_eq!(domain_bits(0, 1), 1);
        assert_eq!(domain_bits(0, 63), 6);
        assert_eq!(domain_bits(100, 163), 6);
        assert_eq!(domain_bits(0, u64::MAX), ENCODED_DOMAIN_BITS);
        // Encoded key domains are wide by construction: a float column
        // straddling zero spans nearly the whole code space.
        use pi_storage::encoding::OrderedKey;
        let lo = (-1.0f64).encode();
        let hi = 1.0f64.encode();
        assert!(domain_bits(lo, hi) > 60);
        assert!(domain_bits(lo, hi) <= ENCODED_DOMAIN_BITS);
    }

    #[test]
    fn max_radix_levels_bounds_recursion_depth() {
        let radix_bits = (DEFAULT_BUCKET_COUNT as u32).trailing_zeros();
        assert_eq!(max_radix_levels(radix_bits), 11); // ⌈64 / 6⌉ with b = 64
        assert_eq!(max_radix_levels(1), ENCODED_DOMAIN_BITS);
        assert_eq!(max_radix_levels(64), 1);
        // Every encoded domain's planning stays within the bound.
        assert!(domain_bits(0, u64::MAX).div_ceil(radix_bits) <= max_radix_levels(radix_bits));
    }

    #[test]
    fn extend_from_slice_matches_push_sequence() {
        for (cap, runs) in [
            (4usize, vec![3usize, 5, 0, 4, 1]),
            (2, vec![7, 1]),
            (16, vec![1, 1, 1]),
        ] {
            let mut pushed = BlockBucket::new(cap);
            let mut extended = BlockBucket::new(cap);
            let mut pushed_allocs = 0u64;
            let mut extended_allocs = 0u64;
            let mut next = 0u64;
            for run in runs {
                let values: Vec<Value> = (next..next + run as u64).collect();
                next += run as u64;
                for &v in &values {
                    if pushed.push(v) {
                        pushed_allocs += 1;
                    }
                }
                extended_allocs += extended.extend_from_slice(&values);
            }
            assert_eq!(pushed_allocs, extended_allocs, "cap {cap}");
            assert_eq!(pushed.len(), extended.len());
            assert_eq!(pushed.block_count(), extended.block_count());
            assert_eq!(
                pushed.iter().collect::<Vec<_>>(),
                extended.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn copy_range_to_matches_per_element_get() {
        let mut b = BlockBucket::new(3);
        for v in 0..11u64 {
            b.push(v * 10);
        }
        for (from, len) in [(0usize, 11usize), (0, 0), (2, 5), (3, 3), (10, 1), (11, 0)] {
            let mut out = vec![0; len];
            b.copy_range_to(from, &mut out);
            let want: Vec<Value> = (from..from + len).map(|i| b.get(i)).collect();
            assert_eq!(out, want, "from {from} len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn copy_range_to_rejects_overrun() {
        let mut b = BlockBucket::new(2);
        b.push(1);
        let mut out = vec![0; 2];
        b.copy_range_to(0, &mut out);
    }

    #[test]
    fn block_slices_cover_range_in_order() {
        let mut b = BlockBucket::new(4);
        for v in 0..10u64 {
            b.push(v);
        }
        let flat: Vec<Value> = b.block_slices(3, 6).flatten().copied().collect();
        assert_eq!(flat, vec![3, 4, 5, 6, 7, 8]);
        assert_eq!(b.block_slices(0, 0).count(), 0);
        assert_eq!(b.block_slices(10, 0).count(), 0);
    }

    #[test]
    fn bucket_set_extend_tracks_len_and_allocations() {
        let mut pushed = BucketSet::new(2, 2);
        let mut extended = BucketSet::new(2, 2);
        for v in 0..7u64 {
            pushed.push((v % 2) as usize, v);
        }
        extended.extend_from_slice(0, &[0, 2, 4, 6]);
        extended.extend_from_slice(1, &[1, 3, 5]);
        assert_eq!(pushed.len(), extended.len());
        assert_eq!(pushed.allocations(), extended.allocations());
        assert_eq!(pushed.sizes(), extended.sizes());
    }

    #[test]
    fn radix_rounds_matches_lsd_formula_and_cap() {
        let radix_bits = (DEFAULT_BUCKET_COUNT as u32).trailing_zeros();
        assert_eq!(radix_rounds(0, radix_bits), 1); // single-value domain
        assert_eq!(radix_rounds(1, radix_bits), 1);
        assert_eq!(radix_rounds(6, radix_bits), 1);
        assert_eq!(radix_rounds(7, radix_bits), 2);
        assert_eq!(radix_rounds(12, radix_bits), 2);
        assert_eq!(
            radix_rounds(ENCODED_DOMAIN_BITS, radix_bits),
            max_radix_levels(radix_bits)
        );
    }

    #[test]
    fn range_sum_buckets_clamps_last_index() {
        let mut set = BucketSet::new(2, 4);
        set.push(0, 5);
        set.push(1, 10);
        let r = set.range_sum_buckets(0, 99, 0, 100);
        assert_eq!(r.sum, 15);
        assert_eq!(r.count, 2);
    }
}
