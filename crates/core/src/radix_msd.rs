//! Progressive Radixsort, Most Significant Digits first (§3.2).
//!
//! * **Creation** — `b = 64` buckets are allocated in separate memory
//!   regions (linked blocks of `s_b` elements). Every query moves another
//!   `δ · N` elements of the base column into the bucket selected by the
//!   element's most significant `log2 b` bits — a single shift. Because
//!   the buckets form a *range partitioning* of the value domain, a query
//!   only needs to scan the buckets whose value range intersects its
//!   predicate, plus the unconsumed tail of the base column.
//! * **Refinement** — each bucket is recursively re-partitioned by the
//!   next `log2 b` most significant bits. Buckets that fit in the L1 cache
//!   are not re-partitioned; they are sorted and written straight into
//!   their (already known) position in the final sorted array. A tree over
//!   the buckets answers queries on the intermediate structure.
//! * **Consolidation** — identical to Progressive Quicksort: a B+-tree is
//!   built over the final sorted array, `δ · N_copy` copies per query.

use std::collections::VecDeque;
use std::sync::Arc;

use pi_storage::btree::{BTreeBuilder, StaticBTree, DEFAULT_FANOUT};
use pi_storage::scan::{scan_range_sum, ScanResult};
use pi_storage::{sorted, Column, Value};

use crate::buckets::{
    domain_bits, BlockBucket, BucketSet, DEFAULT_BLOCK_CAPACITY, DEFAULT_BUCKET_COUNT,
};
use crate::budget::{BudgetController, BudgetPolicy};
use crate::cost_model::{CostConstants, CostModel};
use crate::index::RangeIndex;
use crate::kernels::{ScatterScratch, MAX_SCATTER_BUCKETS};
use crate::result::{IndexStatus, Phase, QueryResult};
use crate::sorter::DEFAULT_SMALL_NODE_ELEMENTS;
use crate::tuning::{KernelMode, TuningParameters};

/// Tuning parameters for [`ProgressiveRadixsortMsd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadixMsdConfig {
    /// Number of buckets `b` per partitioning level (must be a power of
    /// two, defaults to 64).
    pub bucket_count: usize,
    /// Elements per bucket block (`s_b`).
    pub block_capacity: usize,
    /// Buckets at most this large are sorted directly into the final array
    /// instead of being re-partitioned (L1-cache-sized pieces).
    pub small_bucket_elements: usize,
    /// Fan-out β of the consolidation-phase B+-tree.
    pub btree_fanout: usize,
    /// Kernel tuning constants for the partition/sort steps;
    /// result-neutral (see [`crate::tuning`]).
    pub tuning: TuningParameters,
}

impl Default for RadixMsdConfig {
    fn default() -> Self {
        RadixMsdConfig {
            bucket_count: DEFAULT_BUCKET_COUNT,
            block_capacity: DEFAULT_BLOCK_CAPACITY,
            small_bucket_elements: DEFAULT_SMALL_NODE_ELEMENTS,
            btree_fanout: DEFAULT_FANOUT,
            tuning: TuningParameters::default(),
        }
    }
}

/// One node of the refinement tree. Values are *normalised* (the column
/// minimum is subtracted) so nodes cover the normalised range
/// `[base, base + 2^width_bits)`.
#[derive(Debug)]
struct MsdNode {
    /// Smallest normalised value this node can contain.
    base: u64,
    /// Number of low-order bits in which this node's values may still vary.
    width_bits: u32,
    /// Number of elements in this node's subtree.
    len: usize,
    /// Start offset of this node's value range in the final sorted array.
    offset: usize,
    state: MsdNodeState,
}

#[derive(Debug)]
enum MsdNodeState {
    /// Raw bucket, not yet processed by the refinement phase.
    Pending { bucket: BlockBucket },
    /// Bucket being re-partitioned into `children` by `shift`.
    Refining {
        source: BlockBucket,
        consumed: usize,
        children: Vec<usize>,
    },
    /// All elements written (sorted) into the final array at
    /// `[offset, offset + len)`.
    Merged,
}

/// Phase-specific state of the index.
#[derive(Debug)]
enum State {
    Creation {
        buckets: BucketSet,
        consumed: usize,
    },
    Refinement {
        nodes: Vec<MsdNode>,
        /// Top-level node ids, in value order (one per creation bucket).
        top: Vec<usize>,
        /// Nodes waiting for refinement work, processed front to back.
        pending: VecDeque<usize>,
        /// The final sorted array under construction.
        merged: Vec<Value>,
        /// Total elements already written into `merged`.
        merged_len: usize,
    },
    Consolidation {
        sorted_data: Vec<Value>,
        builder: BTreeBuilder,
        total_copies: usize,
    },
    Converged {
        sorted_data: Vec<Value>,
        tree: StaticBTree,
    },
}

/// Progressive Radixsort (MSD) index over a single integer column.
pub struct ProgressiveRadixsortMsd {
    column: Arc<Column>,
    state: State,
    budget: BudgetController,
    model: CostModel,
    config: RadixMsdConfig,
    /// Column minimum (normalisation offset) and number of significant
    /// bits of the normalised domain.
    min: Value,
    domain_bits: u32,
    radix_bits: u32,
    queries_executed: u64,
    /// Reused scratch for the tuned scatter kernel.
    scratch: ScatterScratch,
}

impl ProgressiveRadixsortMsd {
    /// Creates a Progressive Radixsort (MSD) index with default
    /// configuration and synthetic cost constants.
    pub fn new(column: Arc<Column>, policy: BudgetPolicy) -> Self {
        Self::with_constants(column, policy, CostConstants::synthetic())
    }

    /// Creates the index with explicit cost constants.
    pub fn with_constants(
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
    ) -> Self {
        Self::with_config(column, policy, constants, RadixMsdConfig::default())
    }

    /// Creates the index with explicit cost constants and tuning knobs.
    pub fn with_config(
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
        config: RadixMsdConfig,
    ) -> Self {
        assert!(
            config.bucket_count.is_power_of_two() && config.bucket_count >= 2,
            "bucket count must be a power of two >= 2"
        );
        let n = column.len();
        let model = CostModel::new(constants, n);
        let min = column.min();
        let domain_bits = domain_bits(column.min(), column.max());
        let radix_bits = config.bucket_count.trailing_zeros();
        let state = if n == 0 {
            State::Converged {
                sorted_data: Vec::new(),
                tree: StaticBTree::build(&[], config.btree_fanout),
            }
        } else {
            State::Creation {
                buckets: BucketSet::new(config.bucket_count, config.block_capacity),
                consumed: 0,
            }
        };
        ProgressiveRadixsortMsd {
            column,
            state,
            budget: BudgetController::new(policy),
            model,
            config,
            min,
            domain_bits,
            radix_bits,
            queries_executed: 0,
            scratch: ScatterScratch::new(),
        }
    }

    /// The cost model used by this index.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Upper bound on the refinement tree's partitioning depth for this
    /// column: `⌈domain_bits / log2 b⌉`, capped by
    /// [`crate::buckets::max_radix_levels`]. Shares its sizing helper
    /// ([`crate::buckets::radix_rounds`]) with the LSD variant's
    /// [`crate::radix_lsd::ProgressiveRadixsortLsd::rounds_total`].
    pub fn levels_total(&self) -> u32 {
        crate::buckets::radix_rounds(self.domain_bits, self.radix_bits)
    }

    fn n(&self) -> usize {
        self.column.len()
    }

    /// Shift applied at the first (creation) partitioning level.
    fn creation_shift(&self) -> u32 {
        self.domain_bits.saturating_sub(self.radix_bits)
    }

    fn current_delta(&mut self) -> f64 {
        let unit_cost = match &self.state {
            State::Creation { .. } | State::Refinement { .. } => {
                self.model.t_bucketize(self.config.block_capacity)
            }
            State::Consolidation { total_copies, .. } => self.model.t_consolidate(*total_copies),
            State::Converged { .. } => return 0.0,
        };
        self.budget.delta_for_query(unit_cost)
    }

    // ------------------------------------------------------------------
    // Creation phase
    // ------------------------------------------------------------------

    fn query_creation(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let n = self.n();
        let min = self.min;
        let shift = self.creation_shift();
        let bucket_count = self.config.bucket_count;
        let State::Creation { buckets, consumed } = &mut self.state else {
            unreachable!("query_creation called outside the creation phase");
        };

        // 1. Scan the buckets that can contain qualifying values.
        let mut result = ScanResult::EMPTY;
        let mut scanned: u64 = 0;
        if low <= high && high >= min {
            let lo_b = ((low.saturating_sub(min) >> shift) as usize).min(bucket_count - 1);
            let hi_b = ((high - min) >> shift).min(bucket_count as u64 - 1) as usize;
            result = result.merge(buckets.range_sum_buckets(lo_b, hi_b, low, high));
            scanned += (lo_b..=hi_b)
                .map(|b| buckets.bucket(b).len() as u64)
                .sum::<u64>();
        }
        let alpha = scanned as f64 / n.max(1) as f64;
        let rho = *consumed as f64 / n.max(1) as f64;

        // 2. Move δ·N elements from the base column into the buckets,
        //    answering the predicate for them on the fly.
        let todo = ((delta * n as f64).ceil() as usize).min(n - *consumed);
        let data = self.column.data();
        for &value in &data[*consumed..*consumed + todo] {
            let qualifies = (value >= low) as u64 & (value <= high) as u64;
            result.sum += (value as u128) * (qualifies as u128);
            result.count += qualifies;
            let b = (((value - min) >> shift) as usize).min(bucket_count - 1);
            buckets.push(b, value);
        }
        *consumed += todo;

        // 3. Scan the rest of the base column.
        let tail = &data[*consumed..];
        result = result.merge(scan_range_sum(tail, low, high));
        scanned += (todo + tail.len()) as u64;

        let predicted = self
            .model
            .radix_creation(rho, alpha, delta, self.config.block_capacity);

        if *consumed == n {
            self.start_refinement();
        }

        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Creation,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: todo as u64,
            elements_scanned: scanned,
        }
    }

    /// Builds the refinement tree's top level from the creation buckets.
    fn start_refinement(&mut self) {
        let n = self.n();
        let State::Creation { buckets, .. } = &mut self.state else {
            return;
        };
        let shift = self.domain_bits.saturating_sub(self.radix_bits);
        let child_width = shift;
        let mut nodes = Vec::new();
        let mut top = Vec::new();
        let mut pending = VecDeque::new();
        let mut offset = 0usize;
        let old = std::mem::replace(buckets, BucketSet::new(1, 1));
        for (i, bucket) in old.into_buckets().into_iter().enumerate() {
            let len = bucket.len();
            let node = MsdNode {
                base: (i as u64) << shift,
                width_bits: child_width,
                len,
                offset,
                state: MsdNodeState::Pending { bucket },
            };
            offset += len;
            let id = nodes.len();
            nodes.push(node);
            top.push(id);
            if len > 0 {
                pending.push_back(id);
            }
        }
        self.state = State::Refinement {
            nodes,
            top,
            pending,
            merged: vec![0; n],
            merged_len: 0,
        };
        self.maybe_finish_refinement();
    }

    // ------------------------------------------------------------------
    // Refinement phase
    // ------------------------------------------------------------------

    fn query_refinement(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let n = self.n();
        let min = self.min;
        let block_capacity = self.config.block_capacity;
        let bucket_count = self.config.bucket_count;
        let small = self.config.small_bucket_elements;
        let tuning = self.config.tuning;

        let State::Refinement {
            nodes,
            top,
            pending,
            merged,
            merged_len,
        } = &mut self.state
        else {
            unreachable!("query_refinement called outside the refinement phase");
        };

        // 1. Answer the query from the intermediate structure.
        let (result, scanned) = if low > high {
            (ScanResult::EMPTY, 0)
        } else {
            let nlow = low.saturating_sub(min);
            let nhigh = high.saturating_sub(min);
            let mut result = ScanResult::EMPTY;
            let mut scanned = 0u64;
            if high >= min {
                for &id in top.iter() {
                    let (r, s) = query_msd_node(nodes, id, merged, nlow, nhigh, low, high);
                    result = result.merge(r);
                    scanned += s;
                }
            }
            (result, scanned)
        };
        let alpha = scanned as f64 / n.max(1) as f64;

        // 2. Budgeted refinement work.
        let budget = ((delta * n as f64).ceil() as usize).max(1);
        let mut ops = 0usize;
        while ops < budget {
            let Some(&node_id) = pending.front() else {
                break;
            };
            let (done, used) = refine_msd_node(
                nodes,
                node_id,
                merged,
                merged_len,
                pending,
                min,
                bucket_count,
                block_capacity,
                small,
                budget - ops,
                &tuning,
                &mut self.scratch,
            );
            ops += used;
            if done {
                pending.pop_front();
            }
        }

        let predicted = self.model.radix_refinement(alpha, delta, block_capacity);
        self.maybe_finish_refinement();

        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Refinement,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: ops as u64,
            elements_scanned: scanned,
        }
    }

    fn maybe_finish_refinement(&mut self) {
        let State::Refinement {
            pending,
            merged,
            merged_len,
            ..
        } = &mut self.state
        else {
            return;
        };
        if !pending.is_empty() || *merged_len < merged.len() {
            return;
        }
        let sorted_data = std::mem::take(merged);
        debug_assert!(sorted::is_sorted(&sorted_data));
        let total_copies = BTreeBuilder::total_copies(sorted_data.len(), self.config.btree_fanout);
        let builder = BTreeBuilder::new(sorted_data.len(), self.config.btree_fanout);
        self.state = State::Consolidation {
            sorted_data,
            builder,
            total_copies,
        };
        self.maybe_finish_consolidation();
    }

    // ------------------------------------------------------------------
    // Consolidation phase (shared structure with Progressive Quicksort)
    // ------------------------------------------------------------------

    fn query_consolidation(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let State::Consolidation {
            sorted_data,
            builder,
            total_copies,
        } = &mut self.state
        else {
            unreachable!("query_consolidation called outside the consolidation phase");
        };
        let result = sorted::sorted_range_sum(sorted_data, low, high);
        let scanned = result.count;
        let alpha = scanned as f64 / sorted_data.len().max(1) as f64;
        let copies = ((delta * *total_copies as f64).ceil() as usize).max(1);
        let performed = builder.step(sorted_data, copies);
        let predicted = self.model.consolidation(alpha, delta, *total_copies);
        self.maybe_finish_consolidation();
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Consolidation,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: performed as u64,
            elements_scanned: scanned,
        }
    }

    fn maybe_finish_consolidation(&mut self) {
        let State::Consolidation {
            sorted_data,
            builder,
            ..
        } = &mut self.state
        else {
            return;
        };
        if !builder.is_complete() {
            return;
        }
        let tree = builder
            .clone()
            .finish()
            .expect("complete builder must finish");
        let sorted_data = std::mem::take(sorted_data);
        self.state = State::Converged { sorted_data, tree };
    }

    fn query_converged(&self, low: Value, high: Value) -> QueryResult {
        let State::Converged { sorted_data, tree } = &self.state else {
            unreachable!("query_converged called before convergence");
        };
        let result = tree.range_sum(sorted_data, low, high);
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Converged,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: 0,
            elements_scanned: result.count,
        }
    }
}

/// Answers a range query over one refinement-tree node (recursively).
#[allow(clippy::too_many_arguments)]
fn query_msd_node(
    nodes: &[MsdNode],
    id: usize,
    merged: &[Value],
    nlow: u64,
    nhigh: u64,
    low: Value,
    high: Value,
) -> (ScanResult, u64) {
    let node = &nodes[id];
    // Normalised value range covered by this node.
    let node_lo = node.base;
    let node_hi = node_upper(node);
    if nlow > node_hi || nhigh < node_lo || node.len == 0 {
        return (ScanResult::EMPTY, 0);
    }
    match &node.state {
        MsdNodeState::Pending { bucket } => {
            let r = bucket.range_sum(low, high);
            (r, bucket.len() as u64)
        }
        MsdNodeState::Merged => {
            let slice = &merged[node.offset..node.offset + node.len];
            let r = sorted::sorted_range_sum(slice, low, high);
            (r, r.count)
        }
        MsdNodeState::Refining {
            source,
            consumed,
            children,
        } => {
            // Unconsumed elements still sit in the source bucket.
            let mut result = source.range_sum_from(*consumed, low, high);
            let mut scanned = (source.len() - consumed) as u64;
            for &child in children {
                let (r, s) = query_msd_node(nodes, child, merged, nlow, nhigh, low, high);
                result = result.merge(r);
                scanned += s;
            }
            (result, scanned)
        }
    }
}

/// Upper (inclusive) normalised value a node can contain.
fn node_upper(node: &MsdNode) -> u64 {
    if node.width_bits >= 64 {
        u64::MAX
    } else {
        node.base + ((1u64 << node.width_bits) - 1)
    }
}

/// Performs up to `budget` operations of refinement work on one node.
/// Returns `(node finished, operations used)`.
#[allow(clippy::too_many_arguments)]
fn refine_msd_node(
    nodes: &mut Vec<MsdNode>,
    id: usize,
    merged: &mut [Value],
    merged_len: &mut usize,
    pending: &mut VecDeque<usize>,
    min: Value,
    bucket_count: usize,
    block_capacity: usize,
    small: usize,
    budget: usize,
    tuning: &TuningParameters,
    scratch: &mut ScatterScratch,
) -> (bool, usize) {
    if budget == 0 {
        return (false, 0);
    }
    let node_len = nodes[id].len;
    let node_offset = nodes[id].offset;
    let node_base = nodes[id].base;
    let node_width = nodes[id].width_bits;

    // Small buckets — or buckets whose values can no longer differ — are
    // sorted straight into the final array.
    let merge_directly = node_len <= small || node_width == 0;
    let is_pending = matches!(nodes[id].state, MsdNodeState::Pending { .. });

    if is_pending && merge_directly {
        let state = std::mem::replace(&mut nodes[id].state, MsdNodeState::Merged);
        let MsdNodeState::Pending { bucket } = state else {
            unreachable!("state checked above");
        };
        let out = &mut merged[node_offset..node_offset + node_len];
        if tuning.mode == KernelMode::Tuned {
            bucket.copy_range_to(0, out);
        } else {
            for (slot, value) in out.iter_mut().zip(bucket.iter()) {
                *slot = value;
            }
        }
        crate::kernels::sort_region(out, tuning);
        *merged_len += node_len;
        return (true, node_len.max(1));
    }

    if is_pending {
        // Begin re-partitioning: convert Pending into Refining with freshly
        // allocated child nodes.
        let state = std::mem::replace(&mut nodes[id].state, MsdNodeState::Merged);
        let MsdNodeState::Pending { bucket } = state else {
            unreachable!("state checked above");
        };
        let radix_bits = bucket_count.trailing_zeros();
        let shift = node_width.saturating_sub(radix_bits);
        let child_count = bucket_count.min(1usize << (node_width - shift).min(63));
        let mut children = Vec::with_capacity(child_count);
        for c in 0..child_count {
            let child = MsdNode {
                base: node_base + ((c as u64) << shift),
                width_bits: shift,
                len: 0,
                offset: 0, // fixed up when the re-partitioning completes
                state: MsdNodeState::Pending {
                    bucket: BlockBucket::new(block_capacity),
                },
            };
            children.push(nodes.len());
            nodes.push(child);
        }
        nodes[id].state = MsdNodeState::Refining {
            source: bucket,
            consumed: 0,
            children,
        };
    }

    refine_msd_step(nodes, id, pending, min, budget, tuning, scratch)
}

/// Moves up to `budget` elements of a `Refining` node from its source
/// bucket into its children; finalises child offsets and enqueues the
/// children when the source is exhausted.
#[allow(clippy::too_many_arguments)]
fn refine_msd_step(
    nodes: &mut [MsdNode],
    id: usize,
    pending: &mut VecDeque<usize>,
    min: Value,
    budget: usize,
    tuning: &TuningParameters,
    scratch: &mut ScatterScratch,
) -> (bool, usize) {
    let node_base = nodes[id].base;
    let node_width = nodes[id].width_bits;
    let node_offset = nodes[id].offset;

    // Take the state out to side-step simultaneous borrows of the arena.
    let placeholder = MsdNodeState::Merged;
    let MsdNodeState::Refining {
        source,
        mut consumed,
        children,
    } = std::mem::replace(&mut nodes[id].state, placeholder)
    else {
        unreachable!("refine_msd_step requires a Refining node");
    };

    let radix_bits = (children.len().max(1)).next_power_of_two().trailing_zeros();
    let shift = node_width.saturating_sub(radix_bits);
    let child_count = children.len();
    let mut ops = 0usize;
    let take = (source.len() - consumed).min(budget);
    if tuning.mode == KernelMode::Tuned && child_count <= MAX_SCATTER_BUCKETS && take > 0 {
        // Tuned kernel: drain the source bucket block-wise, group each
        // slice by child digit with the unrolled scatter, then land each
        // group in its child with one block-wise append. Child contents
        // and lengths are bit-identical to the scalar loop below.
        let digit = |v: Value| {
            let local = ((v - min) - node_base) >> shift;
            (local as usize).min(child_count - 1) as u8
        };
        for slice in source.block_slices(consumed, take) {
            let (grouped, offsets) = scratch.scatter(slice, child_count, tuning.unroll, &digit);
            for c in 0..child_count {
                let group = &grouped[offsets[c]..offsets[c + 1]];
                if group.is_empty() {
                    continue;
                }
                let child_id = children[c];
                let MsdNodeState::Pending { bucket } = &mut nodes[child_id].state else {
                    unreachable!("children of a refining node are pending buckets");
                };
                bucket.extend_from_slice(group);
                nodes[child_id].len += group.len();
            }
        }
        consumed += take;
        ops = take;
    } else {
        while consumed < source.len() && ops < budget {
            let value = source.get(consumed);
            // Child index: the next radix digit of the value, relative to
            // the node's normalised base.
            let local = ((value - min) - node_base) >> shift;
            let c = (local as usize).min(child_count - 1);
            let child_id = children[c];
            let MsdNodeState::Pending { bucket } = &mut nodes[child_id].state else {
                unreachable!("children of a refining node are pending buckets");
            };
            bucket.push(value);
            nodes[child_id].len += 1;
            consumed += 1;
            ops += 1;
        }
    }

    if consumed == source.len() {
        // Fix up child offsets (value order == child order) and enqueue
        // non-empty children for further refinement.
        let mut offset = node_offset;
        for &child_id in &children {
            nodes[child_id].offset = offset;
            offset += nodes[child_id].len;
            if nodes[child_id].len > 0 {
                pending.push_back(child_id);
            }
        }
        // The source bucket is dropped; queries now route through the
        // children.
        nodes[id].state = MsdNodeState::Refining {
            source: BlockBucket::new(1),
            consumed: 0,
            children,
        };
        (true, ops)
    } else {
        nodes[id].state = MsdNodeState::Refining {
            source,
            consumed,
            children,
        };
        (false, ops)
    }
}

impl RangeIndex for ProgressiveRadixsortMsd {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        let delta = self.current_delta();
        match self.state {
            State::Creation { .. } => self.query_creation(low, high, delta),
            State::Refinement { .. } => self.query_refinement(low, high, delta),
            State::Consolidation { .. } => self.query_consolidation(low, high, delta),
            State::Converged { .. } => self.query_converged(low, high),
        }
    }

    fn status(&self) -> IndexStatus {
        let n = self.n().max(1) as f64;
        match &self.state {
            State::Creation { consumed, .. } => IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: *consumed as f64 / n,
                phase_progress: *consumed as f64 / n,
                converged: false,
            },
            State::Refinement { merged_len, .. } => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: *merged_len as f64 / n,
                converged: false,
            },
            State::Consolidation { builder, .. } => IndexStatus {
                phase: Phase::Consolidation,
                fraction_indexed: 1.0,
                phase_progress: builder.progress(),
                converged: false,
            },
            State::Converged { .. } => IndexStatus::converged(),
        }
    }

    fn name(&self) -> &'static str {
        "progressive-radixsort-msd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn domain_bits_examples() {
        assert_eq!(domain_bits(0, 0), 0);
        assert_eq!(domain_bits(5, 5), 0);
        assert_eq!(domain_bits(0, 1), 1);
        assert_eq!(domain_bits(0, 63), 6);
        assert_eq!(domain_bits(0, 64), 7);
        assert_eq!(domain_bits(100, 163), 6);
        assert_eq!(domain_bits(0, u64::MAX), 64);
    }

    #[test]
    fn levels_total_uses_shared_radix_sizing() {
        let mk = |max: u64| {
            ProgressiveRadixsortMsd::new(
                Arc::new(Column::from_vec(vec![0, max])),
                BudgetPolicy::FixedDelta(0.5),
            )
        };
        assert_eq!(mk(63).levels_total(), 1);
        assert_eq!(mk(64).levels_total(), 2);
        assert_eq!(
            mk(u64::MAX).levels_total(),
            crate::buckets::max_radix_levels(6)
        );
    }

    #[test]
    fn first_query_correct_and_bounded_work() {
        let column = testing::random_column(80_000, 1_000_000, 21);
        let reference = testing::ReferenceIndex::new(&column);
        let mut idx = ProgressiveRadixsortMsd::new(Arc::new(column), BudgetPolicy::FixedDelta(0.1));
        let r = idx.query(5_000, 60_000);
        assert_eq!(r.scan_result(), reference.query(5_000, 60_000));
        assert!(r.indexing_ops <= (0.1f64 * 80_000.0).ceil() as u64);
        assert_eq!(r.phase, Phase::Creation);
    }

    #[test]
    fn converges_and_stays_correct() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveRadixsortMsd::new(
                    column,
                    BudgetPolicy::FixedDelta(0.25),
                ))
            },
            50_000,
            500_000,
        );
    }

    #[test]
    fn converges_with_small_delta_and_narrow_domain() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveRadixsortMsd::new(
                    column,
                    BudgetPolicy::FixedDelta(0.05),
                ))
            },
            20_000,
            300,
        );
    }

    #[test]
    fn converges_on_skewed_duplicated_data() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveRadixsortMsd::new(
                    column,
                    BudgetPolicy::FixedDelta(0.2),
                ))
            },
            40_000,
            1_000,
        );
    }

    #[test]
    fn converges_under_adaptive_budget() {
        testing::assert_index_converges(
            |column| {
                let model = CostModel::new(CostConstants::synthetic(), column.len());
                let policy = BudgetPolicy::adaptive_scan_fraction(&model, 0.2);
                Box::new(ProgressiveRadixsortMsd::new(column, policy))
            },
            30_000,
            3_000_000,
        );
    }

    #[test]
    fn single_value_column_converges() {
        let column = Arc::new(Column::from_vec(vec![9; 10_000]));
        let mut idx = ProgressiveRadixsortMsd::new(column, BudgetPolicy::FixedDelta(0.5));
        for _ in 0..50 {
            let r = idx.query(9, 9);
            assert_eq!(r.count, 10_000);
            if idx.is_converged() {
                break;
            }
        }
        assert!(idx.is_converged());
    }

    #[test]
    fn empty_column_starts_converged() {
        let column = Arc::new(Column::from_vec(vec![]));
        let mut idx = ProgressiveRadixsortMsd::new(column, BudgetPolicy::FixedDelta(0.5));
        assert!(idx.is_converged());
        let r = idx.query(0, 100);
        assert_eq!(r.count, 0);
    }

    #[test]
    fn phases_progress_in_order() {
        let column = Arc::new(testing::random_column(30_000, 1_000_000, 5));
        let reference = testing::ReferenceIndex::new(&Column::from_vec(column.data().to_vec()));
        let mut idx =
            ProgressiveRadixsortMsd::new(Arc::clone(&column), BudgetPolicy::FixedDelta(0.3));
        let mut last_phase = Phase::Creation;
        for i in 0..300u64 {
            let low = (i * 991) % 1_000_000;
            let high = (low + 50_000).min(999_999);
            let r = idx.query(low, high);
            assert_eq!(r.scan_result(), reference.query(low, high), "query {i}");
            let phase = idx.status().phase;
            assert!(phase >= last_phase);
            last_phase = phase;
            if idx.is_converged() {
                break;
            }
        }
        assert!(idx.is_converged());
    }
}
