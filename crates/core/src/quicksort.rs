//! Progressive Quicksort (§3.1 of the paper).
//!
//! The algorithm progresses through the three canonical phases:
//!
//! * **Creation** — an uninitialised array of the same size as the base
//!   column is allocated and a pivot is chosen as the average of the
//!   column's smallest and largest values. Each query copies another
//!   `δ · N` elements from the base column into the working array, writing
//!   values ≤ pivot at the front and values > pivot at the back. Queries
//!   are answered by scanning the relevant halves of the working array
//!   plus the not-yet-consumed tail of the base column.
//! * **Refinement** — the base column is no longer needed; the two halves
//!   are recursively partitioned in place with a budget of `δ · N` swap
//!   operations per query, maintained in a binary tree of pivots
//!   ([`IncrementalSorter`]). Pieces that fit in the L1 cache are sorted
//!   outright. Lookups use the pivot tree to touch only candidate
//!   sections.
//! * **Consolidation** — the now fully sorted array is topped with a
//!   B+-tree by copying every `β`-th element one level up, `δ · N_copy`
//!   copies per query. Until the tree is finished, queries binary-search
//!   the sorted array; afterwards they use the tree and the index is
//!   *converged*.

use std::sync::Arc;

use pi_storage::btree::{BTreeBuilder, StaticBTree, DEFAULT_FANOUT};
use pi_storage::scan::{scan_range_sum, ScanResult};
use pi_storage::{sorted, Column, Value};

use crate::budget::{BudgetController, BudgetPolicy};
use crate::cost_model::{CostConstants, CostModel};
use crate::index::RangeIndex;
use crate::result::{IndexStatus, Phase, QueryResult};
use crate::sorter::{IncrementalSorter, DEFAULT_SMALL_NODE_ELEMENTS};
use crate::tuning::TuningParameters;

/// Tuning parameters for [`ProgressiveQuicksort`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuicksortConfig {
    /// Node size (in elements) below which refinement sorts a piece
    /// outright instead of partitioning it further.
    pub small_node_elements: usize,
    /// Fan-out β of the consolidation-phase B+-tree.
    pub btree_fanout: usize,
    /// Kernel tuning constants for the small-node sorts; result-neutral
    /// (see [`crate::tuning`]).
    pub tuning: TuningParameters,
}

impl Default for QuicksortConfig {
    fn default() -> Self {
        QuicksortConfig {
            small_node_elements: DEFAULT_SMALL_NODE_ELEMENTS,
            btree_fanout: DEFAULT_FANOUT,
            tuning: TuningParameters::default(),
        }
    }
}

/// Phase-specific state of the index.
#[derive(Debug)]
enum State {
    Creation {
        pivot: Value,
        /// Next write position for values ≤ pivot (grows from the front).
        write_lo: usize,
        /// Start of the high (> pivot) region (shrinks from the back).
        high_start: usize,
        /// Number of base-column elements consumed so far.
        consumed: usize,
    },
    Refinement {
        sorter: IncrementalSorter,
    },
    Consolidation {
        builder: BTreeBuilder,
        total_copies: usize,
    },
    Converged {
        tree: StaticBTree,
    },
}

/// Progressive Quicksort index over a single integer column.
pub struct ProgressiveQuicksort {
    column: Arc<Column>,
    /// The working array ("the index"): during creation it is filled from
    /// both ends; from refinement onwards it holds all N elements.
    index: Vec<Value>,
    state: State,
    budget: BudgetController,
    model: CostModel,
    config: QuicksortConfig,
    queries_executed: u64,
}

impl ProgressiveQuicksort {
    /// Creates a Progressive Quicksort index with default configuration
    /// and host-independent synthetic cost constants.
    ///
    /// Use [`ProgressiveQuicksort::with_constants`] with
    /// [`CostConstants::calibrate`] for time-budgeted production use.
    pub fn new(column: Arc<Column>, policy: BudgetPolicy) -> Self {
        Self::with_constants(column, policy, CostConstants::synthetic())
    }

    /// Creates the index with explicit cost constants.
    pub fn with_constants(
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
    ) -> Self {
        Self::with_config(column, policy, constants, QuicksortConfig::default())
    }

    /// Creates the index with explicit cost constants and tuning knobs.
    pub fn with_config(
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
        config: QuicksortConfig,
    ) -> Self {
        let n = column.len();
        let model = CostModel::new(constants, n);
        let pivot = midpoint(column.min(), column.max());
        // An empty column has nothing to index: start converged.
        let state = if n == 0 {
            State::Converged {
                tree: StaticBTree::build(&[], config.btree_fanout),
            }
        } else {
            State::Creation {
                pivot,
                write_lo: 0,
                high_start: n,
                consumed: 0,
            }
        };
        ProgressiveQuicksort {
            index: vec![0; n],
            state,
            column,
            budget: BudgetController::new(policy),
            model,
            config,
            queries_executed: 0,
        }
    }

    /// The cost model used by this index (for experiment instrumentation).
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Number of queries executed so far.
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed
    }

    /// Current δ that would be used for a query in the current phase.
    fn current_delta(&mut self) -> f64 {
        let unit_cost = match &self.state {
            State::Creation { .. } => self.model.t_pivot(),
            State::Refinement { .. } => self.model.t_swap(),
            State::Consolidation { total_copies, .. } => self.model.t_consolidate(*total_copies),
            State::Converged { .. } => return 0.0,
        };
        self.budget.delta_for_query(unit_cost)
    }

    fn n(&self) -> usize {
        self.column.len()
    }

    /// Executes one creation-phase query.
    fn query_creation(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let n = self.n();
        let State::Creation {
            pivot,
            write_lo,
            high_start,
            consumed,
        } = &mut self.state
        else {
            unreachable!("query_creation called outside the creation phase");
        };
        let pivot = *pivot;

        // 1. Index lookup over the already indexed fraction. The pivot
        //    tells us which halves can contain qualifying values.
        let mut result = ScanResult::EMPTY;
        let mut scanned: u64 = 0;
        if low <= pivot {
            result = result.merge(scan_range_sum(&self.index[..*write_lo], low, high));
            scanned += *write_lo as u64;
        }
        if high > pivot {
            result = result.merge(scan_range_sum(&self.index[*high_start..], low, high));
            scanned += (n - *high_start) as u64;
        }
        let alpha = scanned as f64 / n.max(1) as f64;
        let rho = *consumed as f64 / n.max(1) as f64;

        // 2. Expand the index by δ·N elements taken from the base column,
        //    answering the predicate for them on the fly.
        let todo = ((delta * n as f64).ceil() as usize).min(n - *consumed);
        let data = self.column.data();
        for &value in &data[*consumed..*consumed + todo] {
            let qualifies = (value >= low) as u64 & (value <= high) as u64;
            result.sum += (value as u128) * (qualifies as u128);
            result.count += qualifies;
            if value <= pivot {
                self.index[*write_lo] = value;
                *write_lo += 1;
            } else {
                *high_start -= 1;
                self.index[*high_start] = value;
            }
        }
        *consumed += todo;
        scanned += todo as u64;

        // 3. Scan the rest of the base column.
        let tail = &data[*consumed..];
        result = result.merge(scan_range_sum(tail, low, high));
        scanned += tail.len() as u64;

        let predicted = self.model.quicksort_creation(rho, alpha, delta);

        // Phase transition: all data has been absorbed into the index.
        if *consumed == n {
            let boundary = *write_lo;
            debug_assert_eq!(boundary, *high_start);
            let sorter = IncrementalSorter::with_initial_split(
                0,
                n,
                self.column.min(),
                self.column.max(),
                pivot,
                boundary,
                self.config.small_node_elements,
            )
            .with_tuning(self.config.tuning);
            self.state = State::Refinement { sorter };
            self.maybe_finish_refinement();
        }

        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Creation,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: todo as u64,
            elements_scanned: scanned,
        }
    }

    /// Executes one refinement-phase query.
    fn query_refinement(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let n = self.n();
        let State::Refinement { sorter } = &mut self.state else {
            unreachable!("query_refinement called outside the refinement phase");
        };

        // Index lookup over the partially refined array.
        let (result, scanned) = sorter.query(&self.index, low, high);
        let alpha = scanned as f64 / n.max(1) as f64;
        let height = sorter.height();

        // Budgeted refinement work, focused on the queried value range.
        let ops = ((delta * n as f64).ceil() as usize).max(1);
        let focus = if low <= high { Some((low, high)) } else { None };
        let performed = sorter.refine(&mut self.index, ops, focus);

        let predicted = self.model.quicksort_refinement(height, alpha, delta);
        self.maybe_finish_refinement();

        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Refinement,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: performed as u64,
            elements_scanned: scanned,
        }
    }

    /// Executes one consolidation-phase query.
    fn query_consolidation(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let State::Consolidation {
            builder,
            total_copies,
        } = &mut self.state
        else {
            unreachable!("query_consolidation called outside the consolidation phase");
        };

        // Answer via binary search on the (fully sorted) array.
        let result = sorted::sorted_range_sum(&self.index, low, high);
        let scanned = result.count;
        let alpha = scanned as f64 / self.index.len().max(1) as f64;

        // Budgeted B+-tree construction.
        let copies = ((delta * *total_copies as f64).ceil() as usize).max(1);
        let performed = builder.step(&self.index, copies);
        let predicted = self.model.consolidation(alpha, delta, *total_copies);

        if builder.is_complete() {
            let tree = builder
                .clone()
                .finish()
                .expect("complete builder must finish");
            self.state = State::Converged { tree };
        }

        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Consolidation,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: performed as u64,
            elements_scanned: scanned,
        }
    }

    /// Executes a query once the index has converged.
    fn query_converged(&self, low: Value, high: Value) -> QueryResult {
        let State::Converged { tree } = &self.state else {
            unreachable!("query_converged called before convergence");
        };
        let result = tree.range_sum(&self.index, low, high);
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Converged,
            delta: 0.0,
            predicted_cost: Some(self.model.consolidation(
                result.count as f64 / self.index.len().max(1) as f64,
                0.0,
                0,
            )),
            indexing_ops: 0,
            elements_scanned: result.count,
        }
    }

    /// Moves from refinement to consolidation once the array is sorted.
    fn maybe_finish_refinement(&mut self) {
        let State::Refinement { sorter } = &self.state else {
            return;
        };
        if !sorter.is_sorted() {
            return;
        }
        debug_assert!(sorter.verify_sorted(&self.index));
        let total_copies = BTreeBuilder::total_copies(self.index.len(), self.config.btree_fanout);
        let builder = BTreeBuilder::new(self.index.len(), self.config.btree_fanout);
        self.state = State::Consolidation {
            builder,
            total_copies,
        };
        self.maybe_finish_consolidation();
    }

    /// Completes consolidation immediately when there is nothing to build
    /// (tiny columns).
    fn maybe_finish_consolidation(&mut self) {
        let State::Consolidation { builder, .. } = &self.state else {
            return;
        };
        if builder.is_complete() {
            let tree = builder
                .clone()
                .finish()
                .expect("complete builder must finish");
            self.state = State::Converged { tree };
        }
    }

    /// Read access to the working array (exposed for tests and examples).
    pub fn working_array(&self) -> &[Value] {
        &self.index
    }
}

impl RangeIndex for ProgressiveQuicksort {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        let delta = self.current_delta();
        match self.state {
            State::Creation { .. } => self.query_creation(low, high, delta),
            State::Refinement { .. } => self.query_refinement(low, high, delta),
            State::Consolidation { .. } => self.query_consolidation(low, high, delta),
            State::Converged { .. } => self.query_converged(low, high),
        }
    }

    fn status(&self) -> IndexStatus {
        let n = self.n().max(1) as f64;
        match &self.state {
            State::Creation { consumed, .. } => IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: *consumed as f64 / n,
                phase_progress: *consumed as f64 / n,
                converged: false,
            },
            State::Refinement { sorter } => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: if sorter.is_sorted() { 1.0 } else { 0.0 },
                converged: false,
            },
            State::Consolidation { builder, .. } => IndexStatus {
                phase: Phase::Consolidation,
                fraction_indexed: 1.0,
                phase_progress: builder.progress(),
                converged: false,
            },
            State::Converged { .. } => IndexStatus::converged(),
        }
    }

    fn name(&self) -> &'static str {
        "progressive-quicksort"
    }
}

/// Overflow-safe midpoint used for pivot selection ("the average value of
/// the smallest and largest value of the column").
fn midpoint(min: Value, max: Value) -> Value {
    ((min as u128 + max as u128) / 2) as Value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn first_query_is_correct_and_cheap_in_work() {
        let column = testing::random_column(100_000, 1_000_000, 1);
        let reference = testing::ReferenceIndex::new(&column);
        let mut idx = ProgressiveQuicksort::new(Arc::new(column), BudgetPolicy::FixedDelta(0.1));
        let r = idx.query(100, 5_000);
        assert_eq!(r.scan_result(), reference.query(100, 5_000));
        assert_eq!(r.phase, Phase::Creation);
        // Only ~δ·N indexing operations may be performed.
        assert!(r.indexing_ops <= (0.1f64 * 100_000.0).ceil() as u64);
    }

    #[test]
    fn converges_and_stays_correct_throughout() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveQuicksort::new(
                    column,
                    BudgetPolicy::FixedDelta(0.25),
                ))
            },
            50_000,
            500_000,
        );
    }

    #[test]
    fn converges_with_tiny_delta() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveQuicksort::new(
                    column,
                    BudgetPolicy::FixedDelta(0.05),
                ))
            },
            20_000,
            100_000,
        );
    }

    #[test]
    fn converges_under_adaptive_budget() {
        let column = Arc::new(testing::random_column(30_000, 300_000, 7));
        let model = CostModel::new(CostConstants::synthetic(), column.len());
        let policy = BudgetPolicy::adaptive_scan_fraction(&model, 0.2);
        testing::assert_index_converges(
            move |column| {
                Box::new(ProgressiveQuicksort::with_constants(
                    column,
                    policy,
                    CostConstants::synthetic(),
                ))
            },
            30_000,
            300_000,
        );
        drop(column);
    }

    #[test]
    fn delta_one_finishes_creation_in_one_query() {
        let column = Arc::new(testing::random_column(10_000, 100_000, 3));
        let mut idx = ProgressiveQuicksort::new(column, BudgetPolicy::FixedDelta(1.0));
        let r = idx.query(0, 50_000);
        assert_eq!(r.phase, Phase::Creation);
        assert_eq!(r.indexing_ops, 10_000);
        assert!(idx.status().phase >= Phase::Refinement);
    }

    #[test]
    fn skewed_data_converges() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveQuicksort::new(
                    column,
                    BudgetPolicy::FixedDelta(0.25),
                ))
            },
            40_000,
            1_000, // heavy duplication: only 1000 distinct values
        );
    }

    #[test]
    fn empty_column_is_immediately_converged_per_query() {
        let column = Arc::new(Column::from_vec(vec![]));
        let mut idx = ProgressiveQuicksort::new(column, BudgetPolicy::FixedDelta(0.5));
        let r = idx.query(0, 10);
        assert_eq!(r.count, 0);
        assert_eq!(r.sum, 0);
    }

    #[test]
    fn single_value_column_converges() {
        let column = Arc::new(Column::from_vec(vec![7; 5_000]));
        let mut idx = ProgressiveQuicksort::new(column, BudgetPolicy::FixedDelta(0.5));
        for _ in 0..20 {
            let r = idx.query(7, 7);
            assert_eq!(r.count, 5_000);
        }
        assert!(idx.is_converged());
    }

    #[test]
    fn status_progresses_monotonically() {
        let column = Arc::new(testing::random_column(20_000, 200_000, 11));
        let mut idx = ProgressiveQuicksort::new(column, BudgetPolicy::FixedDelta(0.2));
        let mut last_phase = Phase::Creation;
        for i in 0..200 {
            idx.query((i * 37) % 200_000, (i * 37) % 200_000 + 5_000);
            let status = idx.status();
            assert!(status.phase >= last_phase, "phase regressed");
            last_phase = status.phase;
            if status.converged {
                break;
            }
        }
        assert!(idx.is_converged());
    }

    #[test]
    fn predicted_cost_is_reported_during_all_phases() {
        let column = Arc::new(testing::random_column(10_000, 100_000, 13));
        let mut idx = ProgressiveQuicksort::new(column, BudgetPolicy::FixedDelta(0.5));
        for _ in 0..50 {
            let r = idx.query(1_000, 90_000);
            assert!(r.predicted_cost.is_some());
            assert!(r.predicted_cost.unwrap() >= 0.0);
            if idx.is_converged() {
                break;
            }
        }
    }
}
