//! Update/delete support on progressive indexes: the [`MutableIndex`]
//! wrapper and its incremental, budget-driven delta merge.
//!
//! The paper's algorithms assume an append-only column. [`MutableIndex`]
//! removes that limitation for **all four** progressive algorithms at once
//! without touching their internals, by keeping the refinement state
//! (quicksort pivot trees, bucketsort/radixsort buckets, per-piece
//! boundaries) consistent the only way that is safe while it is mid-flight:
//! the base snapshot the inner index refines is **never mutated**.
//! Mutations accumulate in a [`DeltaSidecar`]; every query composes
//!
//! ```text
//! answer = inner-index(base snapshot) + pending inserts − pending tombstones
//! ```
//!
//! so answers are exact at every refinement stage, from the first creation
//! query to long after convergence.
//!
//! The sidecar is then folded back into the index **incrementally**, by the
//! same budgeted-step machinery that drives refinement (see
//! [`crate::budget::StepBudget`] at the engine layer): once the sidecar
//! outgrows [`MutableConfig::merge_fraction`] of the live rows — or the
//! inner index has converged with deltas still pending — a *merge* starts.
//! Each budgeted step copies `δ · N` live values (base values minus their
//! tombstones, then the pending inserts) into a fresh snapshot; queries keep
//! being answered from the old snapshot plus the frozen deltas throughout.
//! When the copy completes, a new inner index is built over the merged
//! snapshot and the lifecycle starts over at the creation phase — which is
//! exactly the "mutated converged shard re-enters maintenance" behaviour
//! the serving engine relies on: deterministic convergence is preserved,
//! it just restarts whenever mutations have invalidated the converged
//! state.
//!
//! ## Semantics
//!
//! The column is a **multiset of values** (the paper's workload is
//! `SUM`/`COUNT BETWEEN`, so rows have no identity beyond their value):
//!
//! * [`Mutation::Insert`] adds one occurrence — always applies.
//! * [`Mutation::Delete`] removes one live occurrence — applies only if
//!   one exists (validated with a point lookup, which doubles as that
//!   mutation's budgeted slice of indexing work).
//! * [`Mutation::Update`] is delete-then-insert, applied atomically: the
//!   insert happens only if the delete found its victim.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use pi_core::mutation::{MutableIndex, Mutation};
//! use pi_core::{Algorithm, BudgetPolicy};
//! use pi_storage::Column;
//!
//! let column = Arc::new(Column::from_vec(vec![10, 20, 30]));
//! let mut index = MutableIndex::new(column, Algorithm::Quicksort,
//!                                   BudgetPolicy::FixedDelta(0.5));
//!
//! assert!(index.apply(&Mutation::Insert(25)));
//! assert!(index.apply(&Mutation::Delete(10)));
//! assert!(!index.apply(&Mutation::Delete(99))); // no such live row
//!
//! // Exact immediately, mid-refinement: live multiset is {20, 25, 30}.
//! let r = index.query(0, 100);
//! assert_eq!((r.sum, r.count), (75, 3));
//!
//! // Maintenance steps drive refinement AND the delta merge; the index
//! // reaches a truly converged, delta-free state.
//! while index.advance() {}
//! assert!(index.is_converged() && !index.has_pending());
//! assert_eq!(index.query(0, 100).count, 3);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use pi_storage::delta::DeltaSidecar;
use pi_storage::scan::ScanResult;
use pi_storage::{Column, Value};

use crate::budget::BudgetPolicy;
use crate::cost_model::CostConstants;
use crate::decision::Algorithm;
use crate::index::RangeIndex;
use crate::metrics::IndexMetrics;
use crate::result::{IndexStatus, Phase, QueryResult};
use crate::tuning::TuningParameters;

/// Callback invoked every time a [`MutableIndex`] completes an
/// incremental sidecar merge (the argument is the index's total completed
/// merge count). The merge boundary is the natural checkpoint site for a
/// durability layer — the freshly swapped-in snapshot already contains
/// every previously pending delta ("log the delta, snapshot the merged
/// base") — so the hook lets that layer observe the boundary without
/// polling. Invoked while the index (and, at the engine layer, its shard
/// lock) is held: implementations must be cheap and must not call back
/// into the index.
pub type MergeHook = Arc<dyn Fn(u64) + Send + Sync>;

/// A single write against a mutable progressive index. The column is a
/// multiset of values; see the [module docs](self) for the exact
/// semantics of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Add one occurrence of the value.
    Insert(Value),
    /// Remove one live occurrence of the value; rejected when none exists.
    Delete(Value),
    /// Atomically replace one live occurrence of `old` with `new`;
    /// rejected (and `new` not inserted) when no live `old` exists.
    Update {
        /// The value to remove.
        old: Value,
        /// The value to insert in its place.
        new: Value,
    },
}

/// Tuning knobs for [`MutableIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutableConfig {
    /// Fraction of the live row count the pending sidecar may reach before
    /// an incremental merge is started (the merge also starts, regardless
    /// of this knob, once the inner index has converged with deltas
    /// pending — maintenance always drives towards a delta-free state).
    pub merge_fraction: f64,
    /// Minimum pending entries before the fraction trigger fires, so tiny
    /// columns don't merge on every single mutation.
    pub merge_min_pending: usize,
    /// Fraction of the merged snapshot's rows copied per budgeted merge
    /// step — the merge-phase analogue of the per-query δ.
    pub merge_delta: f64,
    /// Kernel tuning constants handed to the inner progressive index
    /// (and to every rebuilt snapshot after a merge). Result-neutral —
    /// see [`crate::tuning`].
    pub tuning: TuningParameters,
}

impl Default for MutableConfig {
    fn default() -> Self {
        MutableConfig {
            merge_fraction: 0.1,
            merge_min_pending: 256,
            merge_delta: 0.25,
            tuning: TuningParameters::default(),
        }
    }
}

/// State of an in-flight incremental merge: the frozen deltas being folded
/// in, the new snapshot under construction, and the copy cursors.
struct MergeState {
    /// The sidecar captured when the merge started; still consulted by
    /// queries (the old snapshot remains the answering structure until the
    /// swap).
    frozen: DeltaSidecar,
    /// Tombstone occurrences not yet consumed by the copy loop.
    tomb_remaining: HashMap<Value, u64>,
    /// The merged live values accumulated so far.
    out: Vec<Value>,
    /// Base-snapshot rows consumed.
    consumed: usize,
    /// Frozen inserts appended.
    inserted: usize,
}

impl MergeState {
    fn start(frozen: DeltaSidecar, base_len: usize) -> Self {
        let mut tomb_remaining: HashMap<Value, u64> = HashMap::new();
        for &t in frozen.tombstones() {
            *tomb_remaining.entry(t).or_insert(0) += 1;
        }
        let capacity =
            (base_len + frozen.inserts().len()).saturating_sub(frozen.tombstones().len());
        MergeState {
            frozen,
            tomb_remaining,
            out: Vec::with_capacity(capacity),
            consumed: 0,
            inserted: 0,
        }
    }

    /// Copies up to `ops` live values into the new snapshot. Returns
    /// `true` when the merge copy is complete.
    fn step(&mut self, base: &Column, ops: usize) -> bool {
        let mut budget = ops.max(1);
        let data = base.data();
        while budget > 0 && self.consumed < data.len() {
            let v = data[self.consumed];
            self.consumed += 1;
            budget -= 1;
            match self.tomb_remaining.get_mut(&v) {
                Some(n) if *n > 0 => *n -= 1,
                _ => self.out.push(v),
            }
        }
        let inserts = self.frozen.inserts();
        while budget > 0 && self.inserted < inserts.len() {
            self.out.push(inserts[self.inserted]);
            self.inserted += 1;
            budget -= 1;
        }
        self.consumed == data.len() && self.inserted == inserts.len()
    }
}

/// A mutable progressive index: any of the paper's four algorithms plus a
/// pending-delta sidecar and an incremental merge, behind the same
/// query/advance interface the immutable indexes expose. See the
/// [module docs](self) for the design.
pub struct MutableIndex {
    /// The immutable base snapshot the inner index refines.
    base: Arc<Column>,
    /// The inner progressive index; `None` while the base snapshot is
    /// empty (an empty column has nothing to index — inserts live in the
    /// sidecar until a merge builds the first real snapshot).
    inner: Option<Box<dyn RangeIndex + Send>>,
    /// Mutations not yet part of any merge.
    pending: DeltaSidecar,
    /// In-flight incremental merge, if any.
    merge: Option<MergeState>,
    algorithm: Algorithm,
    policy: BudgetPolicy,
    config: MutableConfig,
    /// Total merges completed (instrumentation: each one restarted the
    /// progressive lifecycle on a fresh snapshot).
    merges_completed: u64,
    /// Optional observability sink: refinement steps, δ·N bytes moved,
    /// merge steps and cost-model error. `None` records (and costs)
    /// nothing.
    metrics: Option<Arc<IndexMetrics>>,
    /// Optional merge-boundary callback; see [`MergeHook`].
    merge_hook: Option<MergeHook>,
}

impl MutableIndex {
    /// Creates a mutable index over `column`, running `algorithm` with the
    /// given per-query budget `policy` and default [`MutableConfig`].
    pub fn new(column: Arc<Column>, algorithm: Algorithm, policy: BudgetPolicy) -> Self {
        Self::with_config(column, algorithm, policy, MutableConfig::default())
    }

    /// [`MutableIndex::new`] with explicit merge tuning.
    pub fn with_config(
        column: Arc<Column>,
        algorithm: Algorithm,
        policy: BudgetPolicy,
        config: MutableConfig,
    ) -> Self {
        Self::from_parts(column, DeltaSidecar::new(), algorithm, policy, config)
    }

    /// Reassembles a mutable index from persisted parts: the immutable
    /// base snapshot plus a pending-delta sidecar (the pair
    /// [`MutableIndex::snapshot_parts`] captures). The inner index
    /// restarts at the creation phase over the base snapshot — indexing
    /// progress is deliberately not persisted, only logical state — and
    /// the sidecar's mutations are pending again, exactly as after the
    /// equivalent live `apply` calls.
    pub fn from_parts(
        column: Arc<Column>,
        sidecar: DeltaSidecar,
        algorithm: Algorithm,
        policy: BudgetPolicy,
        config: MutableConfig,
    ) -> Self {
        let inner = (!column.is_empty()).then(|| {
            algorithm.build_tuned(
                Arc::clone(&column),
                policy,
                CostConstants::synthetic(),
                config.tuning,
            )
        });
        MutableIndex {
            base: column,
            inner,
            pending: sidecar,
            merge: None,
            algorithm,
            policy,
            config,
            merges_completed: 0,
            metrics: None,
            merge_hook: None,
        }
    }

    /// Captures the index's logical state as persistable parts: the base
    /// snapshot (shared, never mutated) and one flattened sidecar holding
    /// every not-yet-merged mutation — an in-flight merge's frozen deltas
    /// composed with the fresh pending sidecar. Feeding the pair back
    /// through [`MutableIndex::from_parts`] yields an index answering
    /// every query identically.
    pub fn snapshot_parts(&self) -> (Arc<Column>, DeltaSidecar) {
        let mut sidecar = self
            .merge
            .as_ref()
            .map_or_else(DeltaSidecar::new, |m| m.frozen.clone());
        sidecar.compose(&self.pending);
        (Arc::clone(&self.base), sidecar)
    }

    /// Attaches (or detaches) the merge-boundary callback; see
    /// [`MergeHook`].
    pub fn set_merge_hook(&mut self, hook: Option<MergeHook>) {
        self.merge_hook = hook;
    }

    /// Attaches (or detaches) an observability sink. See
    /// [`crate::metrics::IndexMetrics`]; the engine shares one sink per
    /// column across that column's shards.
    pub fn set_metrics(&mut self, metrics: Option<Arc<IndexMetrics>>) {
        self.metrics = metrics;
    }

    /// The algorithm running inside this index.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Number of live rows: base snapshot minus tombstones plus pending
    /// inserts (frozen and fresh).
    pub fn live_rows(&self) -> usize {
        let frozen_net = self.merge.as_ref().map_or(0, |m| m.frozen.net_rows());
        let net = self.base.len() as i64 + frozen_net + self.pending.net_rows();
        debug_assert!(net >= 0, "live row count went negative");
        net.max(0) as usize
    }

    /// `true` while mutations are pending (in the fresh sidecar or an
    /// in-flight merge) — i.e. the base snapshot does not yet reflect
    /// every applied mutation.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty() || self.merge.is_some()
    }

    /// Pending entries not yet folded into the base snapshot (fresh
    /// sidecar only; an in-flight merge's frozen deltas are already being
    /// consumed).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of completed merges (each rebuilt the snapshot and restarted
    /// the progressive lifecycle).
    pub fn merges_completed(&self) -> u64 {
        self.merges_completed
    }

    /// `true` once the inner index has converged **and** no deltas are
    /// pending: the terminal, maintenance-free state.
    pub fn is_converged(&self) -> bool {
        self.inner_converged() && !self.has_pending()
    }

    fn inner_converged(&self) -> bool {
        self.inner.as_ref().is_none_or(|i| i.is_converged())
    }

    /// Live occurrences of exactly `v`, across snapshot and deltas. The
    /// point lookup doubles as a budgeted slice of indexing work on the
    /// inner index.
    fn live_count_of(&mut self, v: Value) -> i64 {
        let in_base = match &mut self.inner {
            Some(inner) => inner.query(v, v).count as i64,
            None => 0,
        };
        let frozen = self.merge.as_ref().map_or(0, |m| m.frozen.net_count_of(v));
        in_base + frozen + self.pending.net_count_of(v)
    }

    /// Applies one mutation. Returns whether it took effect (inserts
    /// always do; deletes and updates only when a live victim exists).
    pub fn apply(&mut self, mutation: &Mutation) -> bool {
        let applied = match *mutation {
            Mutation::Insert(v) => {
                self.pending.insert(v);
                true
            }
            Mutation::Delete(v) => self.delete_one(v),
            Mutation::Update { old, new } => {
                if self.delete_one(old) {
                    self.pending.insert(new);
                    true
                } else {
                    false
                }
            }
        };
        if applied {
            self.maybe_start_merge();
        }
        applied
    }

    fn delete_one(&mut self, v: Value) -> bool {
        // Cheap path: consume a pending insert of the same value.
        if self.pending.cancel_insert(v) {
            return true;
        }
        if self.live_count_of(v) > 0 {
            self.pending.add_tombstone(v);
            true
        } else {
            false
        }
    }

    /// Starts an incremental merge when the sidecar has outgrown the
    /// configured fraction of the live rows.
    fn maybe_start_merge(&mut self) {
        if self.merge.is_some() || self.pending.is_empty() {
            return;
        }
        let pending = self.pending.len();
        let threshold = (self.live_rows() as f64 * self.config.merge_fraction).ceil() as usize;
        if pending >= self.config.merge_min_pending.max(threshold.max(1)) {
            self.start_merge();
        }
    }

    fn start_merge(&mut self) {
        debug_assert!(self.merge.is_none());
        let frozen = std::mem::take(&mut self.pending);
        self.merge = Some(MergeState::start(frozen, self.base.len()));
    }

    /// Ops per budgeted merge step: `merge_delta` of the merged snapshot.
    fn merge_step_ops(&self) -> usize {
        let total = self.base.len() + self.merge.as_ref().map_or(0, |m| m.frozen.inserts().len());
        ((self.config.merge_delta * total as f64).ceil() as usize).max(1)
    }

    /// Advances an in-flight merge by one budgeted step, swapping in the
    /// merged snapshot on completion. Returns whether a merge was
    /// advanced.
    fn advance_merge(&mut self) -> bool {
        let ops = self.merge_step_ops();
        let Some(merge) = &mut self.merge else {
            return false;
        };
        let out_before = merge.out.len();
        let finished = merge.step(&self.base, ops);
        if let Some(metrics) = &self.metrics {
            metrics.observe_merge_step(merge.out.len() - out_before);
        }
        if finished {
            let merge = self.merge.take().expect("merge in flight");
            let column = Arc::new(Column::from_vec(merge.out));
            self.inner = (!column.is_empty()).then(|| {
                self.algorithm.build_tuned(
                    Arc::clone(&column),
                    self.policy,
                    CostConstants::synthetic(),
                    self.config.tuning,
                )
            });
            self.base = column;
            self.merges_completed += 1;
            if let Some(hook) = &self.merge_hook {
                hook(self.merges_completed);
            }
        }
        true
    }

    /// Performs one budgeted slice of work towards the terminal state:
    /// an in-flight merge step, else an inner refinement step (the paper's
    /// empty-query maintenance), else — when the inner index has converged
    /// with deltas pending — starting and stepping a merge. Returns
    /// `false` only from the terminal state ([`MutableIndex::is_converged`]).
    pub fn advance(&mut self) -> bool {
        if self.merge.is_some() {
            return self.advance_merge();
        }
        if let Some(inner) = &mut self.inner {
            if !inner.is_converged() {
                // The paper's empty-query maintenance: a pure δ-slice of
                // indexing work, observed like any other refinement step.
                let result = inner.query(1, 0);
                if let Some(metrics) = &self.metrics {
                    metrics.observe_query(&result);
                }
                return true;
            }
        }
        if !self.pending.is_empty() {
            self.start_merge();
            return self.advance_merge();
        }
        false
    }

    /// Answers `[low, high]` over the **live** multiset, performing the
    /// query's budgeted share of indexing work (inner refinement, plus one
    /// merge step when a merge is in flight).
    pub fn query(&mut self, low: Value, high: Value) -> QueryResult {
        let base = match &mut self.inner {
            Some(inner) => match &self.metrics {
                Some(metrics) => {
                    // The cost-model error clock is feature-gated (the
                    // branch const-folds away with `obs` off); the step /
                    // bytes counters derive from the result and are not.
                    let start = pi_obs::ENABLED.then(std::time::Instant::now);
                    let result = inner.query(low, high);
                    metrics.observe_query(&result);
                    if let Some(start) = start {
                        metrics.observe_cost_error(result.predicted_cost, start.elapsed());
                    }
                    result
                }
                None => inner.query(low, high),
            },
            None => QueryResult::answer_only(ScanResult::EMPTY, Phase::Converged),
        };
        let mut composed = base.scan_result();
        if let Some(merge) = &self.merge {
            composed = merge.frozen.scan(low, high).apply_to(composed);
        }
        composed = self.pending.scan(low, high).apply_to(composed);
        // Queries drive the merge forward too: indexing work — including
        // delta folding — happens as a query side effect, per the paper's
        // model.
        if self.merge.is_some() {
            self.advance_merge();
        }
        QueryResult {
            sum: composed.sum,
            count: composed.count,
            ..base
        }
    }

    /// Answers `[low, high]` over the **live** multiset *without* mutating
    /// any state: no inner refinement, no merge advancement, no metrics.
    ///
    /// Where [`MutableIndex::query`] probes the inner index (paying the
    /// budgeted δ-slice of indexing work), `peek` scans the immutable base
    /// snapshot directly and composes the frozen-merge and pending sidecars
    /// on top — the same three-layer composition, so the answer is exactly
    /// the live multiset at every refinement stage. This is the validation
    /// probe the engine's conjunction planner uses against non-driving
    /// columns: exact, shared-access (`&self`), and never perturbing the
    /// refinement or merge schedule.
    pub fn peek(&self, low: Value, high: Value) -> ScanResult {
        let mut composed = pi_storage::scan::scan_range_sum(self.base.data(), low, high);
        if let Some(merge) = &self.merge {
            composed = merge.frozen.scan(low, high).apply_to(composed);
        }
        self.pending.scan(low, high).apply_to(composed)
    }

    /// Progress snapshot. The phase and progress come from the inner
    /// index; `converged` reports the composite state (inner converged
    /// *and* no pending deltas), so a mutated converged index correctly
    /// re-enters maintenance.
    pub fn status(&self) -> IndexStatus {
        let inner = match &self.inner {
            Some(inner) => inner.status(),
            None => IndexStatus::converged(),
        };
        IndexStatus {
            converged: inner.converged && !self.has_pending(),
            ..inner
        }
    }

    /// Materialises the live multiset: base snapshot minus tombstones plus
    /// pending inserts, in snapshot order followed by insert order. Used
    /// for re-sharding (boundary re-balancing) at the engine layer.
    pub fn live_values(&self) -> Vec<Value> {
        // Tombstones are subtracted from the union of base values and
        // pending inserts: a pending tombstone's victim can live in the
        // in-flight merge's frozen inserts (deleted after the merge froze
        // it), not only in the base snapshot.
        let mut tombs: HashMap<Value, u64> = HashMap::new();
        let mut sources: Vec<&[Value]> = vec![self.base.data()];
        if let Some(merge) = &self.merge {
            for &t in merge.frozen.tombstones() {
                *tombs.entry(t).or_insert(0) += 1;
            }
            sources.push(merge.frozen.inserts());
        }
        for &t in self.pending.tombstones() {
            *tombs.entry(t).or_insert(0) += 1;
        }
        sources.push(self.pending.inserts());
        let mut out = Vec::with_capacity(self.live_rows());
        for source in sources {
            for &v in source {
                match tombs.get_mut(&v) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => out.push(v),
                }
            }
        }
        debug_assert!(
            tombs.values().all(|&n| n == 0),
            "a tombstone found no live victim"
        );
        out
    }

    /// Exact sum and count over all live rows, without touching the inner
    /// index (used by the engine to maintain per-shard digests).
    pub fn live_total(&self) -> ScanResult {
        let mut sum = self.base.total_sum() as i128;
        let mut count = self.base.len() as i64;
        if let Some(merge) = &self.merge {
            sum += merge.frozen.net_sum();
            count += merge.frozen.net_rows();
        }
        sum += self.pending.net_sum();
        count += self.pending.net_rows();
        debug_assert!(sum >= 0 && count >= 0, "live totals went negative");
        ScanResult {
            sum: sum.max(0) as u128,
            count: count.max(0) as u64,
        }
    }
}

impl RangeIndex for MutableIndex {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        MutableIndex::query(self, low, high)
    }

    fn status(&self) -> IndexStatus {
        MutableIndex::status(self)
    }

    fn name(&self) -> &'static str {
        "mutable-progressive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;
    use pi_storage::scan::scan_range_sum;

    /// Oracle: the live multiset as a plain vector.
    struct Oracle {
        live: Vec<Value>,
    }

    impl Oracle {
        fn new(data: &[Value]) -> Self {
            Oracle {
                live: data.to_vec(),
            }
        }

        fn apply(&mut self, m: &Mutation) -> bool {
            match *m {
                Mutation::Insert(v) => {
                    self.live.push(v);
                    true
                }
                Mutation::Delete(v) => {
                    if let Some(at) = self.live.iter().position(|&x| x == v) {
                        self.live.remove(at);
                        true
                    } else {
                        false
                    }
                }
                Mutation::Update { old, new } => {
                    if self.apply(&Mutation::Delete(old)) {
                        self.live.push(new);
                        true
                    } else {
                        false
                    }
                }
            }
        }

        fn query(&self, low: Value, high: Value) -> ScanResult {
            scan_range_sum(&self.live, low, high)
        }
    }

    fn fresh(n: usize, domain: u64, algorithm: Algorithm) -> (MutableIndex, Oracle) {
        let column = Arc::new(testing::random_column(n, domain, 21));
        let oracle = Oracle::new(column.data());
        let index = MutableIndex::with_config(
            column,
            algorithm,
            BudgetPolicy::FixedDelta(0.25),
            MutableConfig {
                merge_min_pending: 8,
                ..MutableConfig::default()
            },
        );
        (index, oracle)
    }

    #[test]
    fn mutations_stay_exact_through_all_phases_for_every_algorithm() {
        for algorithm in Algorithm::ALL {
            let (mut index, mut oracle) = fresh(4_000, 10_000, algorithm);
            let mut rng = testing::TestRng::new(7);
            let mut step = 0u32;
            loop {
                // Mutations flow for the first 60 rounds — enough to hit
                // every phase (each merge restarts the lifecycle, so an
                // unbounded write stream would defer convergence forever).
                if step < 60 {
                    for _ in 0..3 {
                        let m = match rng.below(3) {
                            0 => Mutation::Insert(rng.below(10_000)),
                            1 => Mutation::Delete(rng.below(10_000)),
                            _ => Mutation::Update {
                                old: rng.below(10_000),
                                new: rng.below(10_000),
                            },
                        };
                        assert_eq!(index.apply(&m), oracle.apply(&m), "{algorithm}: {m:?}");
                    }
                }
                let low = rng.below(10_000);
                let high = low + rng.below(2_000);
                assert_eq!(
                    index.query(low, high).scan_result(),
                    oracle.query(low, high),
                    "{algorithm} mismatch at step {step} for [{low}, {high}]"
                );
                if index.is_converged() {
                    break;
                }
                index.advance();
                step += 1;
                assert!(step < 100_000, "{algorithm} failed to converge");
            }
            // Converged and delta-free: still exact.
            assert_eq!(
                index.query(0, 20_000).scan_result(),
                oracle.query(0, 20_000)
            );
        }
    }

    #[test]
    fn mutated_converged_index_re_enters_maintenance() {
        for algorithm in Algorithm::ALL {
            let (mut index, mut oracle) = fresh(2_000, 5_000, algorithm);
            while index.advance() {}
            assert!(index.is_converged(), "{algorithm}");
            let m = Mutation::Insert(1_234);
            assert!(index.apply(&m));
            oracle.apply(&m);
            assert!(
                !index.is_converged(),
                "{algorithm}: pending delta must unconverge"
            );
            assert_eq!(index.query(0, 5_000).scan_result(), oracle.query(0, 5_000));
            while index.advance() {}
            assert!(index.is_converged() && !index.has_pending(), "{algorithm}");
            assert!(
                index.merges_completed() >= 1,
                "{algorithm}: merge must have run"
            );
            assert_eq!(index.query(0, 5_000).scan_result(), oracle.query(0, 5_000));
        }
    }

    #[test]
    fn delete_of_absent_value_is_rejected() {
        let (mut index, _) = fresh(100, 50, Algorithm::Quicksort);
        assert!(!index.apply(&Mutation::Delete(1_000)));
        assert!(!index.apply(&Mutation::Update { old: 999, new: 1 }));
        // Insert then delete round-trips through the sidecar without a
        // tombstone.
        assert!(index.apply(&Mutation::Insert(1_000)));
        assert!(index.apply(&Mutation::Delete(1_000)));
        assert!(!index.apply(&Mutation::Delete(1_000)));
    }

    #[test]
    fn empty_column_grows_from_inserts() {
        let column = Arc::new(Column::from_vec(vec![]));
        let mut index =
            MutableIndex::new(column, Algorithm::Bucketsort, BudgetPolicy::FixedDelta(0.5));
        assert!(index.is_converged());
        for v in [5u64, 2, 9, 2] {
            assert!(index.apply(&Mutation::Insert(v)));
        }
        assert_eq!(index.live_rows(), 4);
        let r = index.query(2, 9);
        assert_eq!((r.sum, r.count), (18, 4));
        while index.advance() {}
        assert!(index.is_converged());
        let r = index.query(2, 5);
        assert_eq!((r.sum, r.count), (9, 3));
    }

    #[test]
    fn merge_is_incremental_and_exact_mid_flight() {
        let (mut index, mut oracle) = fresh(5_000, 8_000, Algorithm::Quicksort);
        // Converge first so the merge is the only work left.
        while index.advance() {}
        for i in 0..600u64 {
            let m = Mutation::Insert(i * 13 % 8_000);
            index.apply(&m);
            oracle.apply(&m);
        }
        // A merge has started (600 > max(8, 0.1 * live)); answers stay
        // exact across every incremental merge step until terminal.
        let mut steps = 0;
        while !index.is_converged() {
            assert_eq!(
                index.query(100, 4_000).scan_result(),
                oracle.query(100, 4_000),
                "mismatch mid-merge at step {steps}"
            );
            index.advance();
            steps += 1;
            assert!(steps < 100_000);
        }
        assert!(index.merges_completed() >= 1);
        assert_eq!(index.live_rows(), oracle.live.len());
    }

    #[test]
    fn snapshot_parts_round_trip_through_every_phase() {
        for algorithm in Algorithm::ALL {
            let (mut index, mut oracle) = fresh(2_000, 4_000, algorithm);
            let mut rng = testing::TestRng::new(11);
            for step in 0..120 {
                let m = match rng.below(3) {
                    0 => Mutation::Insert(rng.below(4_000)),
                    1 => Mutation::Delete(rng.below(4_000)),
                    _ => Mutation::Update {
                        old: rng.below(4_000),
                        new: rng.below(4_000),
                    },
                };
                assert_eq!(index.apply(&m), oracle.apply(&m));
                index.advance();
                // Snapshot mid-flight (including mid-merge) and rebuild: the
                // restored index must answer identically.
                if step % 17 == 0 {
                    let (base, sidecar) = index.snapshot_parts();
                    let mut restored = MutableIndex::from_parts(
                        base,
                        sidecar,
                        algorithm,
                        BudgetPolicy::FixedDelta(0.25),
                        MutableConfig::default(),
                    );
                    let low = rng.below(4_000);
                    let high = low + rng.below(1_000);
                    assert_eq!(
                        restored.query(low, high).scan_result(),
                        oracle.query(low, high),
                        "{algorithm} restored mismatch at step {step}"
                    );
                    assert_eq!(restored.live_total(), index.live_total());
                }
            }
        }
    }

    #[test]
    fn merge_hook_fires_at_every_merge_boundary() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let (mut index, _) = fresh(1_000, 2_000, Algorithm::Quicksort);
        let events = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&events);
        index.set_merge_hook(Some(Arc::new(move |_| {
            sink.fetch_add(1, Ordering::SeqCst);
        })));
        for i in 0..64u64 {
            index.apply(&Mutation::Insert(i * 31 % 2_000));
        }
        while index.advance() {}
        assert!(index.is_converged());
        assert_eq!(events.load(Ordering::SeqCst), index.merges_completed());
        assert!(events.load(Ordering::SeqCst) >= 1);
        // Detaching stops the callbacks.
        index.set_merge_hook(None);
        index.apply(&Mutation::Insert(7));
        let before = events.load(Ordering::SeqCst);
        while index.advance() {}
        assert_eq!(events.load(Ordering::SeqCst), before);
    }

    #[test]
    fn live_values_and_totals_match_oracle() {
        let (mut index, mut oracle) = fresh(1_000, 2_000, Algorithm::RadixsortMsd);
        let mut rng = testing::TestRng::new(3);
        for _ in 0..200 {
            let m = match rng.below(2) {
                0 => Mutation::Insert(rng.below(2_000)),
                _ => Mutation::Delete(rng.below(2_000)),
            };
            assert_eq!(index.apply(&m), oracle.apply(&m));
        }
        let mut live = index.live_values();
        let mut expected = oracle.live.clone();
        live.sort_unstable();
        expected.sort_unstable();
        assert_eq!(live, expected);
        assert_eq!(index.live_total(), oracle.query(0, Value::MAX));
        assert_eq!(index.live_rows(), oracle.live.len());
    }
}
