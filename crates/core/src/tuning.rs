//! Machine-tuned constants for the refinement kernels.
//!
//! The progressive algorithms spend almost all of their per-query δ·N
//! budget inside a handful of tight loops (radix scatter, histogram
//! counting, small-region sorts). Which implementation of each loop wins
//! depends on the machine: cache sizes move the comparison-sort
//! crossover, core count moves the point where parallel counting pays,
//! and store-buffer depth decides whether unrolling helps. Rather than
//! hard-coding one machine's answers, every constant the kernels consult
//! lives in [`TuningParameters`], and [`TuningParameters::calibrated`]
//! fills them from a short startup probe.
//!
//! Two invariants keep tuning safe to thread everywhere:
//!
//! 1. **Tuning never changes results.** Every tuned kernel is
//!    bit-identical to its scalar reference (`tests/proptest_kernels.rs`
//!    pins this); the constants only pick *which* equivalent
//!    implementation runs.
//! 2. **Tuning never changes accounting.** Budget (`ops`) charging in
//!    the algorithms counts logical elements moved, identical in tuned
//!    and scalar mode, so convergence traces are mode-independent.
//!
//! See `docs/PERFORMANCE.md` for the measured model behind each
//! constant.

use std::sync::OnceLock;
use std::time::Instant;

/// Which implementation family the refinement kernels run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Unrolled scatter, ska-style in-place swaps, block-wise bucket
    /// drains. The default; bit-identical to [`KernelMode::Scalar`].
    #[default]
    Tuned,
    /// The paper's original per-element loops. Kept selectable as the
    /// bench baseline and the oracle reference for the equivalence
    /// proptests.
    Scalar,
}

/// Tuning constants consulted by the `pi-core` refinement kernels.
///
/// Thread one of these through [`crate::Algorithm::build_tuned`] (the
/// engine's `TableBuilder` does this for every shard) or set it on an
/// algorithm config directly. [`TuningParameters::default`] uses
/// conservative portable constants; [`TuningParameters::calibrated`]
/// probes the machine once and caches the result.
///
/// # Examples
///
/// ```
/// use pi_core::{KernelMode, TuningParameters};
///
/// let tuned = TuningParameters::default();
/// assert_eq!(tuned.mode, KernelMode::Tuned);
///
/// // The scalar reference path, for paired benchmarks and oracles.
/// let scalar = TuningParameters::scalar();
/// assert_eq!(scalar.mode, KernelMode::Scalar);
///
/// // Machine-probed constants; cached after the first call.
/// let calibrated = TuningParameters::calibrated();
/// assert!(calibrated.comparison_sort_threshold >= 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningParameters {
    /// Implementation family; [`KernelMode::Scalar`] disables every
    /// tuned path at once.
    pub mode: KernelMode,
    /// Regions at or below this many elements sort with
    /// `sort_unstable` (comparison sort); larger regions use the
    /// in-place byte-radix [`crate::kernels::ska_sort`]. The probe
    /// measures the actual crossover on this machine.
    pub comparison_sort_threshold: usize,
    /// Columns at or below this many rows use the sequential histogram
    /// path; larger ones may count per-chunk on the `pi-sched` pool
    /// (wired at the engine layer — `pi-core` has no scheduler
    /// dependency, see `docs/PERFORMANCE.md`).
    pub parallel_count_threshold: usize,
    /// Scatter/histogram unroll width: `8` (unrolled) or `1` (plain
    /// loop). Probed; anything other than 8 falls back to the plain
    /// loop.
    pub unroll: usize,
}

impl Default for TuningParameters {
    /// Portable defaults: tuned kernels on, 1024-element comparison-sort
    /// crossover, 1 Mi-row parallel-count threshold, 8-wide unroll.
    fn default() -> Self {
        TuningParameters {
            mode: KernelMode::Tuned,
            comparison_sort_threshold: 1024,
            parallel_count_threshold: 1 << 20,
            unroll: 8,
        }
    }
}

impl TuningParameters {
    /// The scalar reference configuration: the paper's per-element
    /// loops, used as the bench baseline and proptest oracle.
    pub fn scalar() -> Self {
        TuningParameters {
            mode: KernelMode::Scalar,
            ..TuningParameters::default()
        }
    }

    /// Machine-tuned constants from a one-shot startup probe.
    ///
    /// The probe runs once per process (cached in a `OnceLock`) and
    /// takes a few milliseconds. It only selects thresholds between
    /// result-identical implementations, so calibration can never
    /// change query answers — `tests/proptest_kernels.rs` pins this.
    pub fn calibrated() -> Self {
        static CALIBRATED: OnceLock<TuningParameters> = OnceLock::new();
        *CALIBRATED.get_or_init(calibrate)
    }
}

/// Median-of-3 wall time of `f` over fresh copies of `data`.
fn time_sort(data: &[u64], f: &mut dyn FnMut(&mut [u64])) -> std::time::Duration {
    let mut samples = [std::time::Duration::ZERO; 3];
    for slot in &mut samples {
        let mut copy = data.to_vec();
        let start = Instant::now();
        f(&mut copy);
        *slot = start.elapsed();
        std::hint::black_box(&copy);
    }
    samples.sort();
    samples[1]
}

/// Deterministic pseudo-random probe data (splitmix64). The probe must
/// not depend on `rand`: `pi-core` is dependency-free and the shimmed
/// `rand` lives above it.
fn probe_data(len: usize) -> Vec<u64> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

/// The startup probe behind [`TuningParameters::calibrated`].
///
/// * `comparison_sort_threshold`: smallest probed size where the
///   in-place byte-radix sort beats `sort_unstable`; if radix never
///   wins, the threshold lands above every probed size so the kernels
///   keep using the comparison sort.
/// * `unroll`: 8 when the unrolled histogram pass beats the plain loop
///   on 64 Ki elements, else 1.
/// * `parallel_count_threshold`: sized so a sequential count of that
///   many rows costs roughly a millisecond (the point where fan-out
///   overhead is clearly amortised), clamped to `[1 << 16, 1 << 24]`.
fn calibrate() -> TuningParameters {
    // -- comparison-sort crossover ------------------------------------
    let mut comparison_sort_threshold = 1 << 14; // "radix never won"
    for shift in 8..=13 {
        let len = 1usize << shift;
        let data = probe_data(len);
        let cmp = time_sort(&data, &mut |d| d.sort_unstable());
        let radix = time_sort(&data, &mut |d| {
            crate::kernels::ska_sort_by_level(d, crate::buckets::ENCODED_DOMAIN_BITS / 8 - 1, 0)
        });
        if radix < cmp {
            comparison_sort_threshold = len / 2;
            break;
        }
    }

    // -- unroll width ---------------------------------------------------
    let data = probe_data(1 << 16);
    let digit = |v: u64| (v >> 56) as u8;
    let unrolled = time_sort(&data, &mut |d| {
        std::hint::black_box(crate::kernels::histogram(d, 8, &digit));
    });
    let plain = time_sort(&data, &mut |d| {
        std::hint::black_box(crate::kernels::histogram(d, 1, &digit));
    });
    let unroll = if unrolled <= plain { 8 } else { 1 };

    // -- parallel-count threshold --------------------------------------
    // Rows countable in ~1ms sequentially; below that, fan-out overhead
    // dominates. Derived from the measured per-row cost on 64 Ki rows.
    let per_row_nanos = (plain.min(unrolled).as_nanos().max(1) as f64) / (1 << 16) as f64;
    let rows_per_ms = (1_000_000.0 / per_row_nanos) as usize;
    let parallel_count_threshold = rows_per_ms.clamp(1 << 16, 1 << 24);

    TuningParameters {
        mode: KernelMode::Tuned,
        comparison_sort_threshold,
        parallel_count_threshold,
        unroll,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_tuned_with_portable_constants() {
        let t = TuningParameters::default();
        assert_eq!(t.mode, KernelMode::Tuned);
        assert_eq!(t.comparison_sort_threshold, 1024);
        assert_eq!(t.parallel_count_threshold, 1 << 20);
        assert_eq!(t.unroll, 8);
    }

    #[test]
    fn scalar_only_flips_the_mode() {
        let t = TuningParameters::scalar();
        assert_eq!(t.mode, KernelMode::Scalar);
        assert_eq!(
            t.comparison_sort_threshold,
            TuningParameters::default().comparison_sort_threshold
        );
    }

    #[test]
    fn calibrated_is_cached_and_in_range() {
        let a = TuningParameters::calibrated();
        let b = TuningParameters::calibrated();
        assert_eq!(a, b, "probe must run once and cache");
        assert_eq!(a.mode, KernelMode::Tuned);
        assert!(a.comparison_sort_threshold >= 32);
        assert!((1 << 16..=1 << 24).contains(&a.parallel_count_threshold));
        assert!(a.unroll == 1 || a.unroll == 8);
    }

    #[test]
    fn probe_data_is_deterministic() {
        assert_eq!(probe_data(64), probe_data(64));
    }
}
