//! Progressive Radixsort, Least Significant Digits first (§3.4).
//!
//! * **Creation** — elements are clustered into `b = 64` buckets on their
//!   *least* significant `log2 b` bits. The resulting buckets are not a
//!   range partitioning, so they cannot prune wide range queries; the
//!   algorithm falls back to scanning the original column for those
//!   ("when α == ρ we scan the original column instead of using the
//!   buckets"). Point queries, however, can be answered from a single
//!   bucket per generation, which is why LSD wins point-query workloads.
//! * **Refinement** — elements are repeatedly moved from the current
//!   bucket generation to a new one keyed by the next `log2 b` bits, for
//!   `⌈domain_bits / log2 b⌉` rounds in total. Because every pass is
//!   stable, concatenating the final generation's buckets in order yields
//!   the fully sorted array, which is then written out (budgeted) into the
//!   final sorted array.
//! * **Consolidation** — identical to the other algorithms: a B+-tree is
//!   built over the sorted array.

use std::sync::Arc;

use pi_storage::btree::{BTreeBuilder, StaticBTree, DEFAULT_FANOUT};
use pi_storage::scan::{scan_range_sum, ScanResult};
use pi_storage::{sorted, Column, Value};

use crate::buckets::{BucketSet, DEFAULT_BLOCK_CAPACITY, DEFAULT_BUCKET_COUNT};
use crate::budget::{BudgetController, BudgetPolicy};
use crate::cost_model::{CostConstants, CostModel};
use crate::index::RangeIndex;
use crate::kernels::{ScatterScratch, MAX_SCATTER_BUCKETS};
use crate::result::{IndexStatus, Phase, QueryResult};
use crate::tuning::{KernelMode, TuningParameters};

/// Tuning parameters for [`ProgressiveRadixsortLsd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadixLsdConfig {
    /// Number of buckets `b` per round (power of two, defaults to 64).
    pub bucket_count: usize,
    /// Elements per bucket block (`s_b`).
    pub block_capacity: usize,
    /// Fan-out β of the consolidation-phase B+-tree.
    pub btree_fanout: usize,
    /// Kernel tuning constants for the radix passes; result-neutral
    /// (see [`crate::tuning`]).
    pub tuning: TuningParameters,
}

impl Default for RadixLsdConfig {
    fn default() -> Self {
        RadixLsdConfig {
            bucket_count: DEFAULT_BUCKET_COUNT,
            block_capacity: DEFAULT_BLOCK_CAPACITY,
            btree_fanout: DEFAULT_FANOUT,
            tuning: TuningParameters::default(),
        }
    }
}

/// Phase-specific state.
#[derive(Debug)]
enum State {
    Creation {
        buckets: BucketSet,
        consumed: usize,
    },
    Refinement {
        /// Round being executed, in `2..=rounds_total` (round 1 is the
        /// creation phase).
        round: u32,
        source: BucketSet,
        target: BucketSet,
        /// Source bucket currently being drained, and how many of its
        /// elements have been moved.
        src_bucket: usize,
        src_pos: usize,
    },
    Merging {
        buckets: BucketSet,
        cur_bucket: usize,
        cur_pos: usize,
        merged: Vec<Value>,
        written: usize,
    },
    Consolidation {
        sorted_data: Vec<Value>,
        builder: BTreeBuilder,
        total_copies: usize,
    },
    Converged {
        sorted_data: Vec<Value>,
        tree: StaticBTree,
    },
}

/// Progressive Radixsort (LSD) index over a single integer column.
pub struct ProgressiveRadixsortLsd {
    column: Arc<Column>,
    state: State,
    budget: BudgetController,
    model: CostModel,
    config: RadixLsdConfig,
    min: Value,
    domain_bits: u32,
    radix_bits: u32,
    rounds_total: u32,
    queries_executed: u64,
    /// Reused scratch for the tuned scatter kernel; grows to the largest
    /// refinement step and is never reallocated afterwards.
    scratch: ScatterScratch,
}

impl ProgressiveRadixsortLsd {
    /// Creates a Progressive Radixsort (LSD) index with default
    /// configuration and synthetic cost constants.
    pub fn new(column: Arc<Column>, policy: BudgetPolicy) -> Self {
        Self::with_constants(column, policy, CostConstants::synthetic())
    }

    /// Creates the index with explicit cost constants.
    pub fn with_constants(
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
    ) -> Self {
        Self::with_config(column, policy, constants, RadixLsdConfig::default())
    }

    /// Creates the index with explicit cost constants and tuning knobs.
    pub fn with_config(
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
        config: RadixLsdConfig,
    ) -> Self {
        assert!(
            config.bucket_count.is_power_of_two() && config.bucket_count >= 2,
            "bucket count must be a power of two >= 2"
        );
        let n = column.len();
        let model = CostModel::new(constants, n);
        let min = column.min();
        let domain_bits = crate::buckets::domain_bits(min, column.max());
        let radix_bits = config.bucket_count.trailing_zeros();
        let rounds_total = crate::buckets::radix_rounds(domain_bits, radix_bits);
        let state = if n == 0 {
            State::Converged {
                sorted_data: Vec::new(),
                tree: StaticBTree::build(&[], config.btree_fanout),
            }
        } else {
            State::Creation {
                buckets: BucketSet::new(config.bucket_count, config.block_capacity),
                consumed: 0,
            }
        };
        ProgressiveRadixsortLsd {
            column,
            state,
            budget: BudgetController::new(policy),
            model,
            config,
            min,
            domain_bits,
            radix_bits,
            rounds_total,
            queries_executed: 0,
            scratch: ScatterScratch::new(),
        }
    }

    /// The cost model used by this index.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Number of radix passes this column needs before it is sorted
    /// (`⌈log2(max−min) / log2(b)⌉`, at least 1).
    pub fn rounds_total(&self) -> u32 {
        self.rounds_total
    }

    /// Number of significant bits in the value domain `[min, max]`; the
    /// LSD passes consume `log2(b)` of these bits per round.
    pub fn domain_bits(&self) -> u32 {
        self.domain_bits
    }

    fn n(&self) -> usize {
        self.column.len()
    }

    fn mask(&self) -> u64 {
        (self.config.bucket_count - 1) as u64
    }

    /// Bucket of `value` at radix round `round` (1-based).
    fn bucket_at_round(&self, value: Value, round: u32) -> usize {
        (((value - self.min) >> (self.radix_bits * (round - 1))) & self.mask()) as usize
    }

    fn current_delta(&mut self) -> f64 {
        let unit_cost = match &self.state {
            State::Creation { .. } | State::Refinement { .. } | State::Merging { .. } => {
                self.model.t_bucketize(self.config.block_capacity)
            }
            State::Consolidation { total_copies, .. } => self.model.t_consolidate(*total_copies),
            State::Converged { .. } => return 0.0,
        };
        self.budget.delta_for_query(unit_cost)
    }

    // ------------------------------------------------------------------
    // Creation phase
    // ------------------------------------------------------------------

    fn query_creation(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let n = self.n();
        let min = self.min;
        let mask = self.mask();
        let is_point = low == high;
        let point_bucket = if is_point && low >= min {
            Some(((low - min) & mask) as usize)
        } else {
            None
        };
        let State::Creation { buckets, consumed } = &mut self.state else {
            unreachable!("query_creation called outside the creation phase");
        };

        let mut result = ScanResult::EMPTY;
        let mut scanned: u64 = 0;
        let mut index_scanned: u64 = 0;
        let data = self.column.data();
        let rho = *consumed as f64 / n.max(1) as f64;

        let use_fallback = !is_point;
        if use_fallback {
            // Wide range predicates cannot be pruned by LSD buckets: scan
            // the whole original column instead.
            result = scan_range_sum(data, low, high);
            scanned += n as u64;
        } else if let Some(b) = point_bucket {
            // Point query: only one bucket can contain the value.
            result = result.merge(buckets.bucket(b).range_sum(low, high));
            index_scanned += buckets.bucket(b).len() as u64;
            scanned += index_scanned;
        }

        // Route δ·N elements into their buckets. When the fallback scan was
        // used the qualifying values were already counted.
        let todo = ((delta * n as f64).ceil() as usize).min(n - *consumed);
        for &value in &data[*consumed..*consumed + todo] {
            if !use_fallback {
                let qualifies = (value >= low) as u64 & (value <= high) as u64;
                result.sum += (value as u128) * (qualifies as u128);
                result.count += qualifies;
            }
            let b = ((value - min) & mask) as usize;
            buckets.push(b, value);
        }
        *consumed += todo;

        // Scan the not-yet-indexed tail of the column (only needed when the
        // fallback full scan was not already performed).
        if !use_fallback {
            let tail = &data[*consumed..];
            result = result.merge(scan_range_sum(tail, low, high));
            scanned += (todo + tail.len()) as u64;
        }

        let alpha = if use_fallback {
            rho
        } else {
            index_scanned as f64 / n.max(1) as f64
        };
        let predicted = self
            .model
            .radix_creation(rho, alpha, delta, self.config.block_capacity);

        if *consumed == n {
            self.advance_after_creation();
        }

        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Creation,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: todo as u64,
            elements_scanned: scanned,
        }
    }

    fn advance_after_creation(&mut self) {
        let bucket_count = self.config.bucket_count;
        let block_capacity = self.config.block_capacity;
        let rounds_total = self.rounds_total;
        let n = self.n();
        let State::Creation { buckets, .. } = &mut self.state else {
            return;
        };
        let buckets = std::mem::replace(buckets, BucketSet::new(1, 1));
        if rounds_total <= 1 {
            self.state = State::Merging {
                buckets,
                cur_bucket: 0,
                cur_pos: 0,
                merged: vec![0; n],
                written: 0,
            };
        } else {
            self.state = State::Refinement {
                round: 2,
                source: buckets,
                target: BucketSet::new(bucket_count, block_capacity),
                src_bucket: 0,
                src_pos: 0,
            };
        }
    }

    // ------------------------------------------------------------------
    // Refinement phase (radix passes 2..=rounds_total)
    // ------------------------------------------------------------------

    fn query_refinement(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let n = self.n();
        let min = self.min;
        let is_point = low == high;
        let bucket_count = self.config.bucket_count;
        let block_capacity = self.config.block_capacity;
        let rounds_total = self.rounds_total;

        // Answer the query first (field borrows are kept local).
        let (result, scanned, alpha) = {
            let State::Refinement {
                round,
                source,
                target,
                src_bucket,
                src_pos,
            } = &self.state
            else {
                unreachable!("query_refinement called outside the refinement phase");
            };
            if !is_point || low < min {
                // Fallback: wide range predicates scan the original column.
                let r = scan_range_sum(self.column.data(), low, high);
                (r, n as u64, 1.0)
            } else {
                let src_b = self.bucket_at_round(low, *round - 1);
                let tgt_b = self.bucket_at_round(low, *round);
                let consumed_in_src = if src_b < *src_bucket {
                    usize::MAX
                } else if src_b == *src_bucket {
                    *src_pos
                } else {
                    0
                };
                let mut r = source
                    .bucket(src_b)
                    .range_sum_from(consumed_in_src, low, high);
                r = r.merge(target.bucket(tgt_b).range_sum(low, high));
                let scanned = (source.bucket(src_b).len().saturating_sub(consumed_in_src)
                    + target.bucket(tgt_b).len()) as u64;
                (r, scanned, scanned as f64 / n.max(1) as f64)
            }
        };

        // Budgeted radix re-partitioning work.
        let budget = ((delta * n as f64).ceil() as usize).max(1);
        let mut ops = 0usize;
        {
            let State::Refinement {
                round,
                source,
                target,
                src_bucket,
                src_pos,
            } = &mut self.state
            else {
                unreachable!();
            };
            let shift = self.radix_bits * (*round - 1);
            let mask = (bucket_count - 1) as u64;
            let tuning = self.config.tuning;
            let tuned = tuning.mode == KernelMode::Tuned && bucket_count <= MAX_SCATTER_BUCKETS;
            while ops < budget && *src_bucket < bucket_count {
                let bucket_len = source.bucket(*src_bucket).len();
                if *src_pos >= bucket_len {
                    source.clear_bucket(*src_bucket);
                    *src_bucket += 1;
                    *src_pos = 0;
                    continue;
                }
                let take = (budget - ops).min(bucket_len - *src_pos);
                if tuned {
                    // Tuned kernel: drain the source bucket block-wise
                    // (no per-element division), group each slice by
                    // target digit with the unrolled scatter, then land
                    // every group with one block-wise append. Target
                    // bucket contents — and the block-allocation count —
                    // are bit-identical to the scalar loop below.
                    let digit = |v: Value| (((v - min) >> shift) & mask) as u8;
                    for slice in source.bucket(*src_bucket).block_slices(*src_pos, take) {
                        let (grouped, offsets) =
                            self.scratch
                                .scatter(slice, bucket_count, tuning.unroll, &digit);
                        for b in 0..bucket_count {
                            let group = &grouped[offsets[b]..offsets[b + 1]];
                            if !group.is_empty() {
                                target.extend_from_slice(b, group);
                            }
                        }
                    }
                } else {
                    for i in 0..take {
                        let value = source.bucket(*src_bucket).get(*src_pos + i);
                        let b = (((value - min) >> shift) & mask) as usize;
                        target.push(b, value);
                    }
                }
                *src_pos += take;
                ops += take;
            }
        }

        // Phase/round transition when the pass is complete.
        let pass_complete = {
            let State::Refinement { src_bucket, .. } = &self.state else {
                unreachable!();
            };
            *src_bucket >= bucket_count
        };
        if pass_complete {
            let State::Refinement { round, target, .. } = &mut self.state else {
                unreachable!();
            };
            let finished_round = *round;
            let new_buckets = std::mem::replace(target, BucketSet::new(1, 1));
            if finished_round >= rounds_total {
                self.state = State::Merging {
                    buckets: new_buckets,
                    cur_bucket: 0,
                    cur_pos: 0,
                    merged: vec![0; n],
                    written: 0,
                };
            } else {
                self.state = State::Refinement {
                    round: finished_round + 1,
                    source: new_buckets,
                    target: BucketSet::new(bucket_count, block_capacity),
                    src_bucket: 0,
                    src_pos: 0,
                };
            }
        }

        let predicted = self.model.radix_refinement(alpha, delta, block_capacity);
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Refinement,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: ops as u64,
            elements_scanned: scanned,
        }
    }

    // ------------------------------------------------------------------
    // Merging phase (write the final radix generation into a sorted array)
    // ------------------------------------------------------------------

    fn query_merging(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let n = self.n();
        let is_point = low == high;
        let bucket_count = self.config.bucket_count;
        let top_round = self.rounds_total;
        let point_top_bucket = if is_point && low >= self.min {
            Some(self.bucket_at_round(low, top_round))
        } else {
            None
        };

        let State::Merging {
            buckets,
            cur_bucket,
            cur_pos,
            merged,
            written,
        } = &mut self.state
        else {
            unreachable!("query_merging called outside the merging phase");
        };

        // 1. Answer: the written prefix of `merged` is sorted; the rest of
        //    the data still lives in the remaining buckets.
        let mut result = ScanResult::EMPTY;
        let mut scanned: u64 = 0;
        if low <= high {
            let prefix = &merged[..*written];
            let r = sorted::sorted_range_sum(prefix, low, high);
            scanned += r.count;
            result = result.merge(r);
            match point_top_bucket {
                Some(tb) => {
                    // Only one remaining bucket can contain the point value.
                    if tb > *cur_bucket {
                        result = result.merge(buckets.bucket(tb).range_sum(low, high));
                        scanned += buckets.bucket(tb).len() as u64;
                    } else if tb == *cur_bucket {
                        result =
                            result.merge(buckets.bucket(tb).range_sum_from(*cur_pos, low, high));
                        scanned += (buckets.bucket(tb).len() - *cur_pos) as u64;
                    }
                }
                None => {
                    // Range query: scan the unmerged remainder.
                    result = result.merge(
                        buckets
                            .bucket(*cur_bucket)
                            .range_sum_from(*cur_pos, low, high),
                    );
                    scanned += (buckets.bucket(*cur_bucket).len().saturating_sub(*cur_pos)) as u64;
                    for b in (*cur_bucket + 1)..bucket_count {
                        result = result.merge(buckets.bucket(b).range_sum(low, high));
                        scanned += buckets.bucket(b).len() as u64;
                    }
                }
            }
        }
        let alpha = scanned as f64 / n.max(1) as f64;

        // 2. Budgeted merge work: copy elements from the buckets, in
        //    order, into the final array.
        let budget = ((delta * n as f64).ceil() as usize).max(1);
        let mut ops = 0usize;
        while ops < budget && *cur_bucket < bucket_count {
            let bucket_len = buckets.bucket(*cur_bucket).len();
            if *cur_pos >= bucket_len {
                buckets.clear_bucket(*cur_bucket);
                *cur_bucket += 1;
                *cur_pos = 0;
                continue;
            }
            let take = (budget - ops).min(bucket_len - *cur_pos);
            if self.config.tuning.mode == KernelMode::Tuned {
                // Block-wise copy instead of a per-element `get` (which
                // costs an integer division per element).
                buckets
                    .bucket(*cur_bucket)
                    .copy_range_to(*cur_pos, &mut merged[*written..*written + take]);
            } else {
                for i in 0..take {
                    merged[*written + i] = buckets.bucket(*cur_bucket).get(*cur_pos + i);
                }
            }
            *written += take;
            *cur_pos += take;
            ops += take;
        }

        let predicted = self
            .model
            .radix_refinement(alpha, delta, self.config.block_capacity);

        if *cur_bucket >= bucket_count {
            let sorted_data = std::mem::take(merged);
            debug_assert!(sorted::is_sorted(&sorted_data));
            let total_copies =
                BTreeBuilder::total_copies(sorted_data.len(), self.config.btree_fanout);
            let builder = BTreeBuilder::new(sorted_data.len(), self.config.btree_fanout);
            self.state = State::Consolidation {
                sorted_data,
                builder,
                total_copies,
            };
            self.maybe_finish_consolidation();
        }

        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Refinement,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: ops as u64,
            elements_scanned: scanned,
        }
    }

    // ------------------------------------------------------------------
    // Consolidation phase
    // ------------------------------------------------------------------

    fn query_consolidation(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let State::Consolidation {
            sorted_data,
            builder,
            total_copies,
        } = &mut self.state
        else {
            unreachable!("query_consolidation called outside the consolidation phase");
        };
        let result = sorted::sorted_range_sum(sorted_data, low, high);
        let scanned = result.count;
        let alpha = scanned as f64 / sorted_data.len().max(1) as f64;
        let copies = ((delta * *total_copies as f64).ceil() as usize).max(1);
        let performed = builder.step(sorted_data, copies);
        let predicted = self.model.consolidation(alpha, delta, *total_copies);
        self.maybe_finish_consolidation();
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Consolidation,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: performed as u64,
            elements_scanned: scanned,
        }
    }

    fn maybe_finish_consolidation(&mut self) {
        let State::Consolidation {
            sorted_data,
            builder,
            ..
        } = &mut self.state
        else {
            return;
        };
        if !builder.is_complete() {
            return;
        }
        let tree = builder
            .clone()
            .finish()
            .expect("complete builder must finish");
        let sorted_data = std::mem::take(sorted_data);
        self.state = State::Converged { sorted_data, tree };
    }

    fn query_converged(&self, low: Value, high: Value) -> QueryResult {
        let State::Converged { sorted_data, tree } = &self.state else {
            unreachable!("query_converged called before convergence");
        };
        let result = tree.range_sum(sorted_data, low, high);
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Converged,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: 0,
            elements_scanned: result.count,
        }
    }
}

impl RangeIndex for ProgressiveRadixsortLsd {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        let delta = self.current_delta();
        match self.state {
            State::Creation { .. } => self.query_creation(low, high, delta),
            State::Refinement { .. } => self.query_refinement(low, high, delta),
            State::Merging { .. } => self.query_merging(low, high, delta),
            State::Consolidation { .. } => self.query_consolidation(low, high, delta),
            State::Converged { .. } => self.query_converged(low, high),
        }
    }

    fn status(&self) -> IndexStatus {
        let n = self.n().max(1) as f64;
        match &self.state {
            State::Creation { consumed, .. } => IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: *consumed as f64 / n,
                phase_progress: *consumed as f64 / n,
                converged: false,
            },
            State::Refinement { round, .. } => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: (*round - 1) as f64 / self.rounds_total.max(1) as f64,
                converged: false,
            },
            State::Merging { written, .. } => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: *written as f64 / n,
                converged: false,
            },
            State::Consolidation { builder, .. } => IndexStatus {
                phase: Phase::Consolidation,
                fraction_indexed: 1.0,
                phase_progress: builder.progress(),
                converged: false,
            },
            State::Converged { .. } => IndexStatus::converged(),
        }
    }

    fn name(&self) -> &'static str {
        "progressive-radixsort-lsd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn rounds_total_matches_formula() {
        let mk = |max: u64| {
            ProgressiveRadixsortLsd::new(
                Arc::new(Column::from_vec(vec![0, max])),
                BudgetPolicy::FixedDelta(0.5),
            )
        };
        assert_eq!(mk(63).rounds_total(), 1);
        assert_eq!(mk(64).rounds_total(), 2);
        assert_eq!(mk((1 << 16) - 1).rounds_total(), 3);
        assert_eq!(mk(u64::MAX).rounds_total(), 11);
    }

    #[test]
    fn first_query_range_uses_fallback_and_is_correct() {
        let column = testing::random_column(50_000, 500_000, 77);
        let reference = testing::ReferenceIndex::new(&column);
        let mut idx = ProgressiveRadixsortLsd::new(Arc::new(column), BudgetPolicy::FixedDelta(0.1));
        let r = idx.query(10_000, 100_000);
        assert_eq!(r.scan_result(), reference.query(10_000, 100_000));
        // Fallback scans the full column.
        assert_eq!(r.elements_scanned, 50_000);
    }

    #[test]
    fn point_queries_use_buckets_during_creation() {
        let column = testing::random_column(50_000, 5_000, 13);
        let reference = testing::ReferenceIndex::new(&column);
        let mut idx =
            ProgressiveRadixsortLsd::new(Arc::new(column), BudgetPolicy::FixedDelta(0.25));
        for v in [0u64, 17, 4_999, 2_500] {
            let r = idx.point_query(v);
            assert_eq!(r.scan_result(), reference.query(v, v), "point query {v}");
        }
    }

    #[test]
    fn converges_and_stays_correct_on_ranges() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveRadixsortLsd::new(
                    column,
                    BudgetPolicy::FixedDelta(0.25),
                ))
            },
            50_000,
            500_000,
        );
    }

    #[test]
    fn converges_with_point_query_workload() {
        let column = Arc::new(testing::random_column(30_000, 10_000, 3));
        let reference = testing::ReferenceIndex::new(&column);
        let mut idx =
            ProgressiveRadixsortLsd::new(Arc::clone(&column), BudgetPolicy::FixedDelta(0.2));
        let mut rng = testing::TestRng::new(8);
        for i in 0..2_000 {
            let v = rng.below(10_000);
            let r = idx.point_query(v);
            assert_eq!(r.scan_result(), reference.query(v, v), "query {i}");
            if idx.is_converged() {
                break;
            }
        }
        assert!(idx.is_converged());
    }

    #[test]
    fn converges_on_skewed_duplicated_data() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveRadixsortLsd::new(
                    column,
                    BudgetPolicy::FixedDelta(0.2),
                ))
            },
            40_000,
            700,
        );
    }

    #[test]
    fn converges_under_adaptive_budget() {
        testing::assert_index_converges(
            |column| {
                let model = CostModel::new(CostConstants::synthetic(), column.len());
                let policy = BudgetPolicy::adaptive_scan_fraction(&model, 0.2);
                Box::new(ProgressiveRadixsortLsd::new(column, policy))
            },
            30_000,
            3_000_000,
        );
    }

    #[test]
    fn single_value_column_converges() {
        let column = Arc::new(Column::from_vec(vec![11; 6_000]));
        let mut idx = ProgressiveRadixsortLsd::new(column, BudgetPolicy::FixedDelta(0.5));
        for _ in 0..50 {
            let r = idx.query(11, 11);
            assert_eq!(r.count, 6_000);
            if idx.is_converged() {
                break;
            }
        }
        assert!(idx.is_converged());
    }

    #[test]
    fn empty_column_starts_converged() {
        let column = Arc::new(Column::from_vec(vec![]));
        let idx = ProgressiveRadixsortLsd::new(column, BudgetPolicy::FixedDelta(0.5));
        assert!(idx.is_converged());
    }
}
