//! Test support shared by the progressive indexes, the adaptive-indexing
//! baselines and the integration tests.
//!
//! The helpers here are deliberately part of the public API (rather than
//! `#[cfg(test)]`) so that `pi-cracking`, the workspace-level integration
//! tests and downstream users can reuse the same correctness oracles:
//! deterministic data generation, a scan-based reference answer and a
//! "run a workload until convergence, checking every answer" harness.

use std::sync::Arc;

use pi_storage::scan::{scan_range_sum, ScanResult};
use pi_storage::{Column, Value};

use crate::index::RangeIndex;

/// Deterministic xorshift64* generator used by the test helpers, so tests
/// never depend on external RNG crates or on global seeding.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a non-zero seed (zero is mapped to a fixed
    /// constant).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`. `bound == 0` returns 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A column of `n` pseudo-random values uniformly distributed in
/// `[0, domain)`.
pub fn random_column(n: usize, domain: u64, seed: u64) -> Column {
    let mut rng = TestRng::new(seed);
    Column::from_vec((0..n).map(|_| rng.below(domain.max(1))).collect())
}

/// Scan-based reference oracle: answers every query with a predicated full
/// scan of a private copy of the data.
#[derive(Debug, Clone)]
pub struct ReferenceIndex {
    data: Vec<Value>,
}

impl ReferenceIndex {
    /// Captures a copy of the column to answer reference queries against.
    pub fn new(column: &Column) -> Self {
        ReferenceIndex {
            data: column.data().to_vec(),
        }
    }

    /// Reference answer for `SELECT SUM(a), COUNT(a) WHERE a BETWEEN low
    /// AND high`.
    pub fn query(&self, low: Value, high: Value) -> ScanResult {
        scan_range_sum(&self.data, low, high)
    }
}

/// Runs a random range-query workload against an index built by `factory`
/// over a fresh uniform column of `n` values in `[0, domain)`, asserting
/// that:
///
/// 1. every single answer matches the scan-based reference, and
/// 2. the index converges within a generous query bound.
///
/// Panics with a descriptive message when either property is violated.
pub fn assert_index_converges<F>(factory: F, n: usize, domain: u64)
where
    F: FnOnce(Arc<Column>) -> Box<dyn RangeIndex>,
{
    let column = Arc::new(random_column(n, domain, 0xC0FFEE));
    let reference = ReferenceIndex::new(&column);
    let mut index = factory(Arc::clone(&column));
    let mut rng = TestRng::new(42);

    // Enough queries for even δ = 0.05-style configurations to converge on
    // the small test columns; algorithms converge far earlier in practice.
    let max_queries = 5_000;
    let selectivity = (domain / 10).max(1);
    for q in 0..max_queries {
        let low = rng.below(domain.max(1));
        let high = (low + rng.below(selectivity)).min(domain.saturating_sub(1).max(low));
        let result = index.query(low, high);
        let expected = reference.query(low, high);
        assert_eq!(
            result.scan_result(),
            expected,
            "{}: wrong answer for query #{q} [{low}, {high}]",
            index.name()
        );
        if index.is_converged() {
            // A converged index must stay correct too.
            let result = index.query(low, high);
            assert_eq!(
                result.scan_result(),
                expected,
                "{}: wrong answer after convergence",
                index.name()
            );
            return;
        }
    }
    panic!(
        "{}: did not converge within {max_queries} queries (n = {n})",
        index.name()
    );
}

/// Runs `queries` random range queries, checking correctness but not
/// requiring convergence. Returns whether the index converged.
pub fn check_correctness_under_workload<F>(
    factory: F,
    n: usize,
    domain: u64,
    queries: usize,
) -> bool
where
    F: FnOnce(Arc<Column>) -> Box<dyn RangeIndex>,
{
    let column = Arc::new(random_column(n, domain, 0xBEEF));
    let reference = ReferenceIndex::new(&column);
    let mut index = factory(Arc::clone(&column));
    let mut rng = TestRng::new(7);
    for q in 0..queries {
        let low = rng.below(domain.max(1));
        let high = low + rng.below((domain / 20).max(1));
        let result = index.query(low, high);
        let expected = reference.query(low, high);
        assert_eq!(
            result.scan_result(),
            expected,
            "{}: wrong answer for query #{q} [{low}, {high}]",
            index.name()
        );
    }
    index.is_converged()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_zero_seed_is_remapped() {
        let mut r = TestRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn random_column_respects_domain() {
        let c = random_column(10_000, 500, 3);
        assert_eq!(c.len(), 10_000);
        assert!(c.max() < 500);
    }

    #[test]
    fn reference_index_matches_direct_scan() {
        let c = random_column(1_000, 1_000, 9);
        let r = ReferenceIndex::new(&c);
        assert_eq!(r.query(10, 700), scan_range_sum(c.data(), 10, 700));
    }
}
