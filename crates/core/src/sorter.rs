//! Budgeted in-place incremental quicksort with query support over the
//! partially sorted state.
//!
//! This is the machinery behind the *refinement phase* of Progressive
//! Quicksort (§3.1) and, reused per bucket, behind the refinement phase of
//! Progressive Bucketsort (§3.3): "We refine the index by recursively
//! continuing the quicksort in-place in the separate sections. … We
//! maintain a binary tree of the pivot points. In the nodes of this tree,
//! we keep track of the pivot points and how far along the pivoting
//! process we are."
//!
//! The sorter owns no data; it holds a tree of sort nodes describing a
//! region `[start, end)` of an external array and exposes:
//!
//! * [`IncrementalSorter::refine`] — perform up to a budgeted number of
//!   element operations (comparison/swap steps of the interruptible
//!   partition, or whole-node sorts for nodes that fit in the L1 cache),
//!   preferring the parts of the tree a focus predicate needs, exactly as
//!   the paper prescribes ("we focus on refining parts of the index that
//!   are required for query processing. After these parts have been
//!   refined, the refinement process starts processing the neighboring
//!   parts").
//! * [`IncrementalSorter::query`] — answer a range-sum over the current
//!   partially sorted state, using the pivot tree to skip sections that
//!   cannot contain qualifying values.

use crate::tuning::TuningParameters;
use pi_storage::scan::{scan_range_sum, ScanResult};
use pi_storage::{sorted, Value};

/// Number of elements below which a node is sorted outright instead of
/// being partitioned further ("When we reach a node that is smaller than
/// the L1 cache, we sort the entire node"): 32 KiB of 8-byte values.
pub const DEFAULT_SMALL_NODE_ELEMENTS: usize = 4096;

/// Progress state of one node of the pivot tree.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeState {
    /// Interruptible in-place partition around `pivot`.
    ///
    /// Invariant over the node's range `[start, end)` of the external
    /// array: `data[start..lo]` ≤ pivot, `data[unknown_end..end)` > pivot,
    /// `data[lo..unknown_end)` not yet examined.
    Partitioning {
        pivot: Value,
        lo: usize,
        unknown_end: usize,
    },
    /// Partition finished; the node has two children.
    Split {
        pivot: Value,
        left: usize,
        right: usize,
    },
    /// The node's range is fully sorted.
    Sorted,
}

/// One node of the pivot tree, covering `[start, end)` of the external
/// array with value domain `[min, max]` (inherited from its parent, not
/// recomputed from the data).
#[derive(Debug, Clone)]
struct SortNode {
    start: usize,
    end: usize,
    min: Value,
    max: Value,
    parent: Option<usize>,
    depth: usize,
    state: NodeState,
}

/// Budgeted incremental quicksort over a region of an external array.
#[derive(Debug, Clone)]
pub struct IncrementalSorter {
    nodes: Vec<SortNode>,
    root: usize,
    small_node: usize,
    /// Number of nodes whose subtree is not yet fully sorted.
    unsorted_leaves: usize,
    /// Maximum node depth ever created (h of the cost model).
    max_depth: usize,
    /// Kernel constants for the small-node sorts
    /// ([`crate::kernels::sort_region`]).
    tuning: TuningParameters,
}

impl IncrementalSorter {
    /// Creates a sorter for the array region `[start, end)` whose values
    /// are known to lie in `[min, max]`.
    pub fn new(start: usize, end: usize, min: Value, max: Value) -> Self {
        Self::with_small_node(start, end, min, max, DEFAULT_SMALL_NODE_ELEMENTS)
    }

    /// Like [`IncrementalSorter::new`] with an explicit small-node cutoff
    /// (the L1-cache-sized leaf threshold).
    pub fn with_small_node(
        start: usize,
        end: usize,
        min: Value,
        max: Value,
        small_node: usize,
    ) -> Self {
        assert!(end >= start, "invalid sort range [{start}, {end})");
        assert!(small_node >= 1, "small-node cutoff must be at least 1");
        let mut sorter = IncrementalSorter {
            nodes: Vec::new(),
            root: 0,
            small_node,
            unsorted_leaves: 0,
            max_depth: 0,
            tuning: TuningParameters::default(),
        };
        sorter.root = sorter.alloc_node(start, end, min, max, None, 0);
        sorter
    }

    /// Replaces the kernel tuning constants (chainable). Tuning only
    /// selects between result-identical small-node sort implementations;
    /// it never changes query answers.
    pub fn with_tuning(mut self, tuning: TuningParameters) -> Self {
        self.tuning = tuning;
        self
    }

    /// Creates a sorter whose root is already split at `boundary` around
    /// `pivot`: positions `[start, boundary)` hold values in `[min, pivot]`
    /// and `[boundary, end)` values in `(pivot, max]`.
    ///
    /// Progressive Quicksort uses this to carry the pivot boundary
    /// established during its creation phase into the refinement phase
    /// without re-partitioning the array.
    pub fn with_initial_split(
        start: usize,
        end: usize,
        min: Value,
        max: Value,
        pivot: Value,
        boundary: usize,
        small_node: usize,
    ) -> Self {
        assert!(end >= start, "invalid sort range [{start}, {end})");
        assert!(
            boundary >= start && boundary <= end,
            "split boundary {boundary} outside [{start}, {end})"
        );
        assert!(small_node >= 1, "small-node cutoff must be at least 1");
        // Degenerate regions need no split at all.
        if end - start <= 1 || min >= max {
            return Self::with_small_node(start, end, min, max, small_node);
        }
        let mut sorter = IncrementalSorter {
            nodes: Vec::new(),
            root: 0,
            small_node,
            unsorted_leaves: 0,
            max_depth: 0,
            tuning: TuningParameters::default(),
        };
        // Allocate the root first so child parent pointers are valid.
        sorter.root = sorter.alloc_node(start, end, min, max, None, 0);
        let left = sorter.alloc_node(start, boundary, min, pivot, Some(sorter.root), 1);
        let right = sorter.alloc_node(
            boundary,
            end,
            pivot.saturating_add(1),
            max,
            Some(sorter.root),
            1,
        );
        // The root was allocated as an unsorted (Partitioning) leaf;
        // converting it to Split removes it from the leaf count.
        sorter.unsorted_leaves -= 1;
        sorter.nodes[sorter.root].state = NodeState::Split { pivot, left, right };
        sorter.try_prune(sorter.root);
        sorter
    }

    fn alloc_node(
        &mut self,
        start: usize,
        end: usize,
        min: Value,
        max: Value,
        parent: Option<usize>,
        depth: usize,
    ) -> usize {
        let len = end - start;
        // Nodes that cannot contain more than one distinct value — or no
        // values at all — are sorted by definition.
        let state = if len <= 1 || min >= max {
            NodeState::Sorted
        } else {
            NodeState::Partitioning {
                pivot: midpoint(min, max),
                lo: start,
                unknown_end: end,
            }
        };
        let sorted_already = state == NodeState::Sorted;
        let id = self.nodes.len();
        self.nodes.push(SortNode {
            start,
            end,
            min,
            max,
            parent,
            depth,
            state,
        });
        self.max_depth = self.max_depth.max(depth);
        if !sorted_already {
            self.unsorted_leaves += 1;
        }
        id
    }

    /// `true` once the whole region is fully sorted.
    pub fn is_sorted(&self) -> bool {
        self.unsorted_leaves == 0
    }

    /// Height of the pivot tree (maximum node depth created so far).
    pub fn height(&self) -> usize {
        self.max_depth
    }

    /// The array region `[start, end)` this sorter covers.
    pub fn range(&self) -> (usize, usize) {
        (self.nodes[self.root].start, self.nodes[self.root].end)
    }

    /// Performs up to `max_ops` element operations of sorting work on
    /// `data`, preferring nodes that intersect the `focus` value range
    /// when one is given. Returns the number of operations performed.
    ///
    /// `data` must be the same array on every call; the sorter only
    /// touches positions inside its region.
    pub fn refine(
        &mut self,
        data: &mut [Value],
        max_ops: usize,
        focus: Option<(Value, Value)>,
    ) -> usize {
        let mut ops = 0usize;
        while ops < max_ops && !self.is_sorted() {
            let node_id = focus
                .and_then(|(low, high)| self.find_work_node(self.root, Some((low, high))))
                .or_else(|| self.find_work_node(self.root, None));
            let Some(node_id) = node_id else { break };
            ops += self.work_on(node_id, data, max_ops - ops);
        }
        ops
    }

    /// Finds an unsorted node to work on, preferring (when `focus` is
    /// given) nodes whose value domain intersects the focus range.
    fn find_work_node(&self, node_id: usize, focus: Option<(Value, Value)>) -> Option<usize> {
        let node = &self.nodes[node_id];
        if let Some((low, high)) = focus {
            if low > node.max || high < node.min {
                return None;
            }
        }
        match node.state {
            NodeState::Sorted => None,
            NodeState::Partitioning { .. } => Some(node_id),
            NodeState::Split { left, right, .. } => self
                .find_work_node(left, focus)
                .or_else(|| self.find_work_node(right, focus)),
        }
    }

    /// Performs up to `budget` operations on one node. Returns the number
    /// of operations used.
    fn work_on(&mut self, node_id: usize, data: &mut [Value], budget: usize) -> usize {
        if budget == 0 {
            return 0;
        }
        let (start, end, min, max, depth) = {
            let n = &self.nodes[node_id];
            (n.start, n.end, n.min, n.max, n.depth)
        };
        let len = end - start;

        // Small nodes are sorted outright (atomically), as the paper does
        // for pieces that fit in the L1 cache.
        if len <= self.small_node {
            crate::kernels::sort_region(&mut data[start..end], &self.tuning);
            self.mark_sorted(node_id);
            return len.max(1);
        }

        let NodeState::Partitioning {
            pivot,
            mut lo,
            mut unknown_end,
        } = self.nodes[node_id].state
        else {
            return 0;
        };

        let mut ops = 0usize;
        while lo < unknown_end && ops < budget {
            if data[lo] <= pivot {
                lo += 1;
            } else {
                unknown_end -= 1;
                data.swap(lo, unknown_end);
            }
            ops += 1;
        }

        if lo == unknown_end {
            // Partition complete: split into children.
            let boundary = lo;
            let left = self.alloc_node(start, boundary, min, pivot, Some(node_id), depth + 1);
            let right = self.alloc_node(
                boundary,
                end,
                pivot.saturating_add(1),
                max,
                Some(node_id),
                depth + 1,
            );
            self.nodes[node_id].state = NodeState::Split { pivot, left, right };
            // The node itself no longer counts as an unsorted leaf; its
            // children were accounted for in `alloc_node`.
            self.unsorted_leaves -= 1;
            // Children that were born sorted may immediately complete the
            // parent (e.g. an empty child plus a single-element child).
            self.try_prune(node_id);
        } else {
            self.nodes[node_id].state = NodeState::Partitioning {
                pivot,
                lo,
                unknown_end,
            };
        }
        ops
    }

    /// Marks a node as sorted and prunes upwards: when both children of a
    /// split node are sorted, the split node itself becomes sorted.
    fn mark_sorted(&mut self, node_id: usize) {
        if self.nodes[node_id].state != NodeState::Sorted {
            self.nodes[node_id].state = NodeState::Sorted;
            self.unsorted_leaves -= 1;
        }
        if let Some(parent) = self.nodes[node_id].parent {
            self.try_prune(parent);
        }
    }

    fn try_prune(&mut self, node_id: usize) {
        if let NodeState::Split { left, right, .. } = self.nodes[node_id].state {
            let both_sorted = self.nodes[left].state == NodeState::Sorted
                && self.nodes[right].state == NodeState::Sorted;
            if both_sorted {
                self.nodes[node_id].state = NodeState::Sorted;
                if let Some(parent) = self.nodes[node_id].parent {
                    self.try_prune(parent);
                }
            }
        }
    }

    /// Answers a range-sum query over the current (possibly partially
    /// sorted) state of `data`, returning the result and the number of
    /// elements that had to be read.
    pub fn query(&self, data: &[Value], low: Value, high: Value) -> (ScanResult, u64) {
        if low > high {
            return (ScanResult::EMPTY, 0);
        }
        self.query_node(self.root, data, low, high)
    }

    fn query_node(
        &self,
        node_id: usize,
        data: &[Value],
        low: Value,
        high: Value,
    ) -> (ScanResult, u64) {
        let node = &self.nodes[node_id];
        // The node's value domain cannot intersect the predicate.
        if low > node.max || high < node.min {
            return (ScanResult::EMPTY, 0);
        }
        match node.state {
            NodeState::Sorted => {
                let slice = &data[node.start..node.end];
                let result = sorted::sorted_range_sum(slice, low, high);
                (result, result.count)
            }
            NodeState::Split { pivot, left, right } => {
                let mut result = ScanResult::EMPTY;
                let mut scanned = 0u64;
                if low <= pivot {
                    let (r, s) = self.query_node(left, data, low, high);
                    result = result.merge(r);
                    scanned += s;
                }
                if high > pivot {
                    let (r, s) = self.query_node(right, data, low, high);
                    result = result.merge(r);
                    scanned += s;
                }
                (result, scanned)
            }
            NodeState::Partitioning {
                pivot,
                lo,
                unknown_end,
            } => {
                let mut result = ScanResult::EMPTY;
                let mut scanned = 0u64;
                // Elements known to be ≤ pivot.
                if low <= pivot {
                    result = result.merge(scan_range_sum(&data[node.start..lo], low, high));
                    scanned += (lo - node.start) as u64;
                }
                // Elements known to be > pivot.
                if high > pivot {
                    result = result.merge(scan_range_sum(&data[unknown_end..node.end], low, high));
                    scanned += (node.end - unknown_end) as u64;
                }
                // The unexamined middle may contain anything.
                result = result.merge(scan_range_sum(&data[lo..unknown_end], low, high));
                scanned += (unknown_end - lo) as u64;
                (result, scanned)
            }
        }
    }

    /// Debug helper: asserts that the region really is sorted once the
    /// sorter claims so.
    pub fn verify_sorted(&self, data: &[Value]) -> bool {
        let (start, end) = self.range();
        !self.is_sorted() || sorted::is_sorted(&data[start..end])
    }
}

/// Overflow-safe midpoint of a closed value domain.
fn midpoint(min: Value, max: Value) -> Value {
    ((min as u128 + max as u128) / 2) as Value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, domain: u64, seed: u64) -> Vec<Value> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % domain
            })
            .collect()
    }

    fn fully_refine(sorter: &mut IncrementalSorter, data: &mut [Value]) {
        let mut guard = 0;
        while !sorter.is_sorted() {
            let ops = sorter.refine(data, 1000, None);
            assert!(ops > 0, "refine must make progress while unsorted");
            guard += 1;
            assert!(guard < 1_000_000, "sorter failed to converge");
        }
    }

    #[test]
    fn sorts_small_region_in_one_step() {
        let mut data = vec![5, 3, 1, 4, 2];
        let mut sorter = IncrementalSorter::new(0, 5, 1, 5);
        sorter.refine(&mut data, 100, None);
        assert!(sorter.is_sorted());
        assert_eq!(data, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn converges_on_random_data_with_tiny_budget() {
        let mut data = pseudo_random(20_000, 1_000_000, 42);
        let mut reference = data.clone();
        reference.sort_unstable();
        let mut sorter = IncrementalSorter::with_small_node(0, data.len(), 0, 1_000_000, 64);
        fully_refine(&mut sorter, &mut data);
        assert_eq!(data, reference);
        assert!(sorter.verify_sorted(&data));
    }

    #[test]
    fn queries_are_correct_at_every_stage() {
        let n = 10_000;
        let domain = 50_000;
        let mut data = pseudo_random(n, domain, 7);
        let reference = data.clone();
        let mut sorter = IncrementalSorter::with_small_node(0, n, 0, domain, 128);
        let predicates = [
            (0, domain),
            (100, 5_000),
            (25_000, 26_000),
            (49_999, 49_999),
        ];
        let mut guard = 0;
        loop {
            for &(lo, hi) in &predicates {
                let (result, _) = sorter.query(&data, lo, hi);
                let expected = scan_range_sum(&reference, lo, hi);
                assert_eq!(result, expected, "query [{lo},{hi}] wrong at step {guard}");
            }
            if sorter.is_sorted() {
                break;
            }
            sorter.refine(&mut data, 777, None);
            guard += 1;
            assert!(guard < 100_000);
        }
    }

    #[test]
    fn focus_prioritises_query_relevant_nodes() {
        let n = 50_000;
        let domain = 1_000_000u64;
        let mut data = pseudo_random(n, domain, 99);
        let mut sorter = IncrementalSorter::with_small_node(0, n, 0, domain, 256);
        // Refine with a narrow focus; after enough focused work the scanned
        // element count for the focused predicate should be far below n.
        for _ in 0..40 {
            sorter.refine(&mut data, n / 10, Some((0, domain / 64)));
        }
        let (_, scanned_focus) = sorter.query(&data, 0, domain / 64);
        let (_, scanned_far) = sorter.query(&data, domain / 2, domain / 2 + domain / 64);
        assert!(
            scanned_focus < scanned_far,
            "focused range should be better refined: {scanned_focus} vs {scanned_far}"
        );
    }

    #[test]
    fn refine_respects_budget_reasonably() {
        let n = 100_000;
        let mut data = pseudo_random(n, u64::MAX / 2, 3);
        let mut sorter = IncrementalSorter::new(0, n, 0, u64::MAX / 2);
        // A budget much smaller than the small-node cutoff can overshoot by
        // at most one small-node sort; larger budgets should be respected
        // within that tolerance.
        let ops = sorter.refine(&mut data, 10_000, None);
        assert!(ops <= 10_000 + DEFAULT_SMALL_NODE_ELEMENTS);
        assert!(ops > 0);
    }

    #[test]
    fn handles_all_equal_values() {
        let mut data = vec![7u64; 10_000];
        let mut sorter = IncrementalSorter::with_small_node(0, data.len(), 7, 7, 64);
        // Domain min == max ⇒ sorted by definition, no work needed.
        assert!(sorter.is_sorted());
        assert_eq!(sorter.refine(&mut data, 100, None), 0);
        let (r, _) = sorter.query(&data, 7, 7);
        assert_eq!(r.count, 10_000);
    }

    #[test]
    fn handles_heavily_skewed_domain() {
        // All the data sits at the very bottom of a huge declared domain,
        // forcing many one-sided splits.
        let n = 8_192;
        let mut data = pseudo_random(n, 100, 5);
        let reference = {
            let mut r = data.clone();
            r.sort_unstable();
            r
        };
        let mut sorter = IncrementalSorter::with_small_node(0, n, 0, u64::MAX, 32);
        fully_refine(&mut sorter, &mut data);
        assert_eq!(data, reference);
    }

    #[test]
    fn empty_and_single_element_regions_are_trivially_sorted() {
        let sorter = IncrementalSorter::new(5, 5, 0, 10);
        assert!(sorter.is_sorted());
        let sorter = IncrementalSorter::new(3, 4, 0, 10);
        assert!(sorter.is_sorted());
    }

    #[test]
    fn query_with_inverted_predicate_is_empty() {
        let data = pseudo_random(1000, 1000, 11);
        let sorter = IncrementalSorter::new(0, 1000, 0, 1000);
        let (r, scanned) = sorter.query(&data, 500, 100);
        assert_eq!(r, ScanResult::EMPTY);
        assert_eq!(scanned, 0);
    }

    #[test]
    fn height_grows_with_refinement() {
        let n = 100_000;
        let mut data = pseudo_random(n, u64::MAX / 4, 17);
        let mut sorter = IncrementalSorter::with_small_node(0, n, 0, u64::MAX / 4, 512);
        assert_eq!(sorter.height(), 0);
        fully_refine(&mut sorter, &mut data);
        assert!(sorter.height() >= 2);
    }

    #[test]
    fn operates_on_sub_range_only() {
        let mut data = vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0];
        let mut sorter = IncrementalSorter::with_small_node(3, 7, 0, 10, 2);
        fully_refine(&mut sorter, &mut data);
        // Only positions 3..7 may change (and must end up sorted).
        assert_eq!(&data[..3], &[9, 8, 7]);
        assert_eq!(&data[7..], &[2, 1, 0]);
        let mut middle = data[3..7].to_vec();
        middle.sort_unstable();
        assert_eq!(&data[3..7], middle.as_slice());
    }
}
