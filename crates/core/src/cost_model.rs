//! Cost models for the progressive indexing algorithms (Table 1 of the
//! paper).
//!
//! The cost models serve two purposes:
//!
//! 1. **Budget translation** — given a user-chosen time budget
//!    `t_budget`, compute the fraction δ of indexing work a query may
//!    perform in the current phase (`δ = t_budget / t_pivot`,
//!    `t_budget / t_swap`, `t_budget / t_bucket`, …).
//! 2. **Prediction** — predict the total execution time of a query given
//!    the current index state (ρ, α, δ), which the paper validates against
//!    measurements in Figures 8 and 9.
//!
//! All formulas are expressed in terms of the hardware constants of
//! Table 1, which are either *measured at start-up* on the host machine
//! ([`CostConstants::calibrate`]) — exactly as the paper's implementation
//! does — or fixed to deterministic synthetic values for reproducible unit
//! tests ([`CostConstants::synthetic`]).

use std::time::Instant;

/// Hardware cost constants (system section of Table 1).
///
/// All values are in **seconds** per unit of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// ω — cost of a sequential page *read*.
    pub omega: f64,
    /// κ — cost of a sequential page *write*.
    pub kappa: f64,
    /// φ — cost of a random page access.
    pub phi: f64,
    /// γ — number of column elements per page.
    pub gamma: f64,
    /// σ — cost of swapping two elements (Progressive Quicksort).
    pub sigma: f64,
    /// τ — cost of one memory (bucket-block) allocation.
    pub tau: f64,
}

impl CostConstants {
    /// Deterministic constants loosely modelled on a laptop-class CPU with
    /// DRAM-resident data. Used by unit tests and documentation examples so
    /// results do not depend on the host machine.
    pub fn synthetic() -> Self {
        CostConstants {
            omega: 2.0e-7, // ~200ns to stream one 4 KiB page
            kappa: 2.5e-7, // writes slightly more expensive than reads
            phi: 1.0e-7,   // ~100ns per random access (cache/TLB miss)
            gamma: 512.0,  // 4 KiB page / 8-byte values
            sigma: 2.0e-9, // ~2ns per element swap
            tau: 1.0e-7,   // ~100ns per block allocation
        }
    }

    /// Measures the constants on the current machine with short
    /// micro-benchmarks, mirroring the paper's start-up calibration.
    ///
    /// The calibration uses a working set of a few megabytes and takes on
    /// the order of tens of milliseconds; it is intended to be run once per
    /// process and shared across indexes.
    pub fn calibrate() -> Self {
        const ELEMENTS: usize = 1 << 21; // 2 Mi elements = 16 MiB
        const PAGE_BYTES: f64 = 4096.0;
        const ELEM_BYTES: f64 = 8.0;
        let gamma = PAGE_BYTES / ELEM_BYTES;
        let pages = ELEMENTS as f64 / gamma;

        let mut data: Vec<u64> = (0..ELEMENTS as u64).map(|i| i.wrapping_mul(31)).collect();

        // ω: sequential read — predicated sum over the array.
        let start = Instant::now();
        let mut acc: u64 = 0;
        for &v in &data {
            acc = acc.wrapping_add(v);
        }
        let omega = start.elapsed().as_secs_f64() / pages;
        std::hint::black_box(acc);

        // κ: sequential write — overwrite every element.
        let start = Instant::now();
        for (i, v) in data.iter_mut().enumerate() {
            *v = i as u64;
        }
        let kappa = start.elapsed().as_secs_f64() / pages;
        std::hint::black_box(&data);

        // φ: random page access — strided reads that defeat the prefetcher.
        let accesses = 1 << 16;
        let mut idx: usize = 1;
        let start = Instant::now();
        let mut acc: u64 = 0;
        for _ in 0..accesses {
            idx = (idx.wrapping_mul(1103515245).wrapping_add(12345)) % ELEMENTS;
            acc = acc.wrapping_add(data[idx]);
        }
        let phi = start.elapsed().as_secs_f64() / accesses as f64;
        std::hint::black_box(acc);

        // σ: element swap cost.
        let swaps = ELEMENTS / 2;
        let start = Instant::now();
        for i in 0..swaps {
            data.swap(i, ELEMENTS - 1 - i);
        }
        let sigma = start.elapsed().as_secs_f64() / swaps as f64;
        std::hint::black_box(&data);

        // τ: cost of allocating a bucket block.
        let allocations = 1 << 12;
        let start = Instant::now();
        let mut blocks: Vec<Vec<u64>> = Vec::with_capacity(allocations);
        for _ in 0..allocations {
            blocks.push(Vec::with_capacity(crate::buckets::DEFAULT_BLOCK_CAPACITY));
        }
        let tau = start.elapsed().as_secs_f64() / allocations as f64;
        std::hint::black_box(&blocks);

        // Guard against zero measurements on very fast machines / coarse
        // clocks: fall back to the synthetic constant for any degenerate
        // value so downstream divisions stay well-defined.
        let fallback = Self::synthetic();
        CostConstants {
            omega: positive_or(omega, fallback.omega),
            kappa: positive_or(kappa, fallback.kappa),
            phi: positive_or(phi, fallback.phi),
            gamma,
            sigma: positive_or(sigma, fallback.sigma),
            tau: positive_or(tau, fallback.tau),
        }
    }
}

fn positive_or(value: f64, fallback: f64) -> f64 {
    if value.is_finite() && value > 0.0 {
        value
    } else {
        fallback
    }
}

/// Cost model for one column of `n` elements, parameterised by the
/// hardware constants. Provides the per-phase formulas of Section 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    constants: CostConstants,
    n: f64,
}

impl CostModel {
    /// Creates a cost model for a column of `n` elements.
    pub fn new(constants: CostConstants, n: usize) -> Self {
        CostModel {
            constants,
            n: n as f64,
        }
    }

    /// The hardware constants in use.
    pub fn constants(&self) -> &CostConstants {
        &self.constants
    }

    /// Number of elements the model was built for.
    pub fn n(&self) -> f64 {
        self.n
    }

    /// `t_scan = ω · N / γ` — full sequential scan of the base column.
    pub fn t_scan(&self) -> f64 {
        self.constants.omega * self.n / self.constants.gamma
    }

    /// `t_pivot = (κ + ω) · N / γ` — reading the base column and writing
    /// the pivoted copy (Progressive Quicksort creation).
    pub fn t_pivot(&self) -> f64 {
        (self.constants.kappa + self.constants.omega) * self.n / self.constants.gamma
    }

    /// `t_swap = κ · N / γ` — predicated in-place swapping of N elements
    /// (Progressive Quicksort refinement).
    pub fn t_swap(&self) -> f64 {
        self.constants.kappa * self.n / self.constants.gamma
    }

    /// `t_lookup = h · φ` — descending a binary tree of height `h`.
    pub fn t_tree_lookup(&self, height: usize) -> f64 {
        height as f64 * self.constants.phi
    }

    /// `t_lookup = log2(n) · φ` — binary search over the sorted array
    /// (consolidation phase, before the B+-tree is finished).
    pub fn t_binary_search(&self) -> f64 {
        if self.n <= 1.0 {
            0.0
        } else {
            self.n.log2() * self.constants.phi
        }
    }

    /// `t_bscan = t_scan + φ · N / s_b` — scanning bucketed data: a
    /// sequential scan plus one random access per block of `block_capacity`
    /// elements.
    pub fn t_bucket_scan(&self, block_capacity: usize) -> f64 {
        self.t_scan() + self.constants.phi * self.n / block_capacity as f64
    }

    /// `t_bucket = (κ + ω) · N / γ + τ · N / s_b` — radix-clustering N
    /// elements into buckets made of `block_capacity`-element blocks.
    pub fn t_bucketize(&self, block_capacity: usize) -> f64 {
        (self.constants.kappa + self.constants.omega) * self.n / self.constants.gamma
            + self.constants.tau * self.n / block_capacity as f64
    }

    /// `log2(b) · t_bucket` — equi-height bucketing, which pays an extra
    /// binary search over the `bucket_count` boundaries per element.
    pub fn t_bucketize_equiheight(&self, block_capacity: usize, bucket_count: usize) -> f64 {
        (bucket_count.max(2) as f64).log2() * self.t_bucketize(block_capacity)
    }

    /// `t_copy = N_copy · κ / γ` — copying `n_copy` elements into the
    /// B+-tree's internal levels (consolidation phase).
    pub fn t_consolidate(&self, n_copy: usize) -> f64 {
        n_copy as f64 * self.constants.kappa / self.constants.gamma
    }

    // ----- per-phase total-cost predictions -------------------------------

    /// Creation-phase prediction for Progressive Quicksort:
    /// `(1 - ρ + α - δ) · t_scan + δ · t_pivot`.
    pub fn quicksort_creation(&self, rho: f64, alpha: f64, delta: f64) -> f64 {
        ((1.0 - rho + alpha - delta).max(0.0)) * self.t_scan() + delta * self.t_pivot()
    }

    /// Refinement-phase prediction for Progressive Quicksort:
    /// `h·φ + α · t_scan + δ · t_swap`.
    pub fn quicksort_refinement(&self, tree_height: usize, alpha: f64, delta: f64) -> f64 {
        self.t_tree_lookup(tree_height) + alpha * self.t_scan() + delta * self.t_swap()
    }

    /// Consolidation-phase prediction (shared by all algorithms):
    /// `log2(n)·φ + α · t_scan + δ · t_copy`.
    pub fn consolidation(&self, alpha: f64, delta: f64, n_copy: usize) -> f64 {
        self.t_binary_search() + alpha * self.t_scan() + delta * self.t_consolidate(n_copy)
    }

    /// Creation-phase prediction for Progressive Radixsort (MSD and LSD):
    /// `(1 - ρ - δ) · t_scan + α · t_bscan + δ · t_bucket`.
    pub fn radix_creation(&self, rho: f64, alpha: f64, delta: f64, block_capacity: usize) -> f64 {
        ((1.0 - rho - delta).max(0.0)) * self.t_scan()
            + alpha * self.t_bucket_scan(block_capacity)
            + delta * self.t_bucketize(block_capacity)
    }

    /// Refinement-phase prediction for Progressive Radixsort (MSD and LSD):
    /// `α · t_bscan + δ · t_bucket`.
    pub fn radix_refinement(&self, alpha: f64, delta: f64, block_capacity: usize) -> f64 {
        alpha * self.t_bucket_scan(block_capacity) + delta * self.t_bucketize(block_capacity)
    }

    /// Creation-phase prediction for Progressive Bucketsort (Equi-Height):
    /// `(1 - ρ - δ) · t_scan + α · t_bscan + δ · log2(b) · t_bucket`.
    pub fn bucketsort_creation(
        &self,
        rho: f64,
        alpha: f64,
        delta: f64,
        block_capacity: usize,
        bucket_count: usize,
    ) -> f64 {
        ((1.0 - rho - delta).max(0.0)) * self.t_scan()
            + alpha * self.t_bucket_scan(block_capacity)
            + delta * self.t_bucketize_equiheight(block_capacity, bucket_count)
    }

    // ----- budget → δ translation -----------------------------------------

    /// δ for the Progressive Quicksort creation phase: `t_budget / t_pivot`.
    pub fn delta_quicksort_creation(&self, budget: f64) -> f64 {
        clamp_delta(budget / self.t_pivot())
    }

    /// δ for the Progressive Quicksort refinement phase:
    /// `t_budget / t_swap`.
    pub fn delta_quicksort_refinement(&self, budget: f64) -> f64 {
        clamp_delta(budget / self.t_swap())
    }

    /// δ for radix-style creation/refinement: `t_budget / t_bucket`.
    pub fn delta_radix(&self, budget: f64, block_capacity: usize) -> f64 {
        clamp_delta(budget / self.t_bucketize(block_capacity))
    }

    /// δ for equi-height bucketing: `t_budget / (log2(b) · t_bucket)`.
    pub fn delta_bucketsort(&self, budget: f64, block_capacity: usize, bucket_count: usize) -> f64 {
        clamp_delta(budget / self.t_bucketize_equiheight(block_capacity, bucket_count))
    }

    /// δ for the consolidation phase: `t_budget / t_copy`.
    pub fn delta_consolidation(&self, budget: f64, n_copy: usize) -> f64 {
        if n_copy == 0 {
            1.0
        } else {
            clamp_delta(budget / self.t_consolidate(n_copy))
        }
    }
}

/// Clamps a computed δ into `(0, 1]`, guarding against degenerate budgets
/// and division blow-ups. A floor of `1e-6` keeps progress strictly
/// positive so convergence stays deterministic even with absurdly small
/// budgets.
pub fn clamp_delta(delta: f64) -> f64 {
    if !delta.is_finite() {
        return 1.0;
    }
    delta.clamp(1e-6, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize) -> CostModel {
        CostModel::new(CostConstants::synthetic(), n)
    }

    #[test]
    fn scan_cost_scales_linearly() {
        let m1 = model(1_000_000);
        let m2 = model(2_000_000);
        assert!((m2.t_scan() / m1.t_scan() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pivot_cost_exceeds_scan_cost() {
        let m = model(1_000_000);
        assert!(m.t_pivot() > m.t_scan());
        assert!(m.t_swap() < m.t_pivot());
    }

    #[test]
    fn bucket_scan_slower_than_plain_scan() {
        let m = model(1_000_000);
        assert!(m.t_bucket_scan(1024) > m.t_scan());
    }

    #[test]
    fn equiheight_bucketing_costs_log_b_more() {
        let m = model(1_000_000);
        let plain = m.t_bucketize(1024);
        let equi = m.t_bucketize_equiheight(1024, 64);
        assert!((equi / plain - 6.0).abs() < 1e-9);
    }

    #[test]
    fn creation_cost_decreases_as_rho_grows() {
        let m = model(10_000_000);
        let early = m.quicksort_creation(0.0, 0.0, 0.1);
        let late = m.quicksort_creation(0.9, 0.05, 0.1);
        assert!(late < early);
    }

    #[test]
    fn budget_to_delta_round_trips() {
        let m = model(10_000_000);
        let budget = 0.2 * m.t_scan();
        let delta = m.delta_quicksort_creation(budget);
        assert!(delta > 0.0 && delta <= 1.0);
        // Spending that delta on pivoting should cost (approximately) the
        // budget again.
        assert!((delta * m.t_pivot() - budget).abs() / budget < 1e-9);
    }

    #[test]
    fn delta_is_clamped_to_unit_interval() {
        let m = model(1_000);
        assert_eq!(m.delta_quicksort_creation(1e9), 1.0);
        assert!(m.delta_quicksort_creation(0.0) >= 1e-6);
        assert_eq!(clamp_delta(f64::NAN), 1.0);
        assert_eq!(clamp_delta(f64::INFINITY), 1.0);
    }

    #[test]
    fn consolidation_delta_handles_zero_copies() {
        let m = model(10);
        assert_eq!(m.delta_consolidation(0.001, 0), 1.0);
    }

    #[test]
    fn binary_search_cost_is_logarithmic() {
        let m1 = model(1 << 10);
        let m2 = model(1 << 20);
        assert!((m2.t_binary_search() / m1.t_binary_search() - 2.0).abs() < 1e-9);
        assert_eq!(model(1).t_binary_search(), 0.0);
    }

    #[test]
    fn calibration_produces_positive_constants() {
        let c = CostConstants::calibrate();
        assert!(c.omega > 0.0);
        assert!(c.kappa > 0.0);
        assert!(c.phi > 0.0);
        assert!(c.sigma > 0.0);
        assert!(c.tau > 0.0);
        assert_eq!(c.gamma, 512.0);
    }

    #[test]
    fn refinement_prediction_accounts_for_tree_height() {
        let m = model(1_000_000);
        let shallow = m.quicksort_refinement(1, 0.1, 0.1);
        let deep = m.quicksort_refinement(20, 0.1, 0.1);
        assert!(deep > shallow);
    }
}
