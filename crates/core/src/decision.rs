//! The decision tree of the paper's Figure 11: which progressive indexing
//! technique to use in which scenario.
//!
//! Section 4 of the paper distils its experimental findings into a small
//! set of rules:
//!
//! * **Point-query dominated workloads** → Progressive Radixsort (LSD).
//!   Its least-significant-digit buckets can answer point queries from the
//!   very first query, and it has the lowest variance of all techniques
//!   (Tables 4 and 5, "Point Query" block).
//! * **Range queries over (roughly) uniformly distributed data** →
//!   Progressive Radixsort (MSD). Radix clustering produces an immediately
//!   useful range partitioning and converges in the fewest rounds
//!   (Figure 7c, Table 2, Table 4 "Uniform Random" block).
//! * **Range queries over skewed data** → Progressive Bucketsort
//!   (Equi-Height). Value-based range partitioning keeps the partitions
//!   equally sized under skew (Table 4 "Skewed" block).
//! * **Unknown distribution, tight memory, or mixed/unknown query shape**
//!   → Progressive Quicksort. It needs no auxiliary bucket storage (its
//!   working array is exactly one copy of the column), is insensitive to
//!   the value distribution because the pivot adapts to the observed
//!   `[min, max]`, and was the paper's headline comparison against
//!   adaptive indexing (Figure 10).
//!
//! [`recommend`] encodes those rules. The inputs deliberately mirror what
//! a DBA (or an automated advisor) actually knows *before* building an
//! index: the expected query shape, what is known about the value
//! distribution, and whether extra memory for out-of-place bucket storage
//! is acceptable.

use std::sync::Arc;

use crate::bucketsort::BucketsortConfig;
use crate::budget::BudgetPolicy;
use crate::cost_model::CostConstants;
use crate::index::RangeIndex;
use crate::quicksort::QuicksortConfig;
use crate::radix_lsd::RadixLsdConfig;
use crate::radix_msd::RadixMsdConfig;
use crate::tuning::TuningParameters;
use crate::{
    ProgressiveBucketsort, ProgressiveQuicksort, ProgressiveRadixsortLsd, ProgressiveRadixsortMsd,
};
use pi_storage::Column;

/// The progressive indexing technique recommended by the decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Progressive Quicksort ([`crate::ProgressiveQuicksort`]).
    Quicksort,
    /// Progressive Radixsort MSD ([`crate::ProgressiveRadixsortMsd`]).
    RadixsortMsd,
    /// Progressive Radixsort LSD ([`crate::ProgressiveRadixsortLsd`]).
    RadixsortLsd,
    /// Progressive Bucketsort, equi-height ([`crate::ProgressiveBucketsort`]).
    Bucketsort,
}

impl Algorithm {
    /// Stable identifier matching [`crate::index::RangeIndex::name`] of the
    /// corresponding index implementation.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Quicksort => "progressive-quicksort",
            Algorithm::RadixsortMsd => "progressive-radixsort-msd",
            Algorithm::RadixsortLsd => "progressive-radixsort-lsd",
            Algorithm::Bucketsort => "progressive-bucketsort",
        }
    }

    /// All four algorithms, in the order the paper introduces them.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Quicksort,
        Algorithm::RadixsortMsd,
        Algorithm::Bucketsort,
        Algorithm::RadixsortLsd,
    ];

    /// Builds the progressive index this variant names over `column`,
    /// behind the uniform [`RangeIndex`] interface.
    ///
    /// This is the single construction point shared by the experiment
    /// harness, the examples and the sharded engine; it uses each
    /// algorithm's default cost constants (see
    /// [`Algorithm::build_with_constants`] for explicit ones).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use pi_core::prelude::*;
    ///
    /// let column = Arc::new(pi_core::testing::random_column(10_000, 50_000, 7));
    /// let algorithm = recommend(Scenario::unknown());
    /// let mut index = algorithm.build(column, BudgetPolicy::FixedDelta(0.5));
    /// let result = index.query(1_000, 2_000);
    /// assert!(result.count > 0);
    /// ```
    pub fn build(self, column: Arc<Column>, policy: BudgetPolicy) -> Box<dyn RangeIndex + Send> {
        match self {
            Algorithm::Quicksort => Box::new(ProgressiveQuicksort::new(column, policy)),
            Algorithm::RadixsortMsd => Box::new(ProgressiveRadixsortMsd::new(column, policy)),
            Algorithm::RadixsortLsd => Box::new(ProgressiveRadixsortLsd::new(column, policy)),
            Algorithm::Bucketsort => Box::new(ProgressiveBucketsort::new(column, policy)),
        }
    }

    /// [`Algorithm::build`] with explicit cost-model constants, as used by
    /// the experiment harness (synthetic constants) and calibrated runs.
    pub fn build_with_constants(
        self,
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
    ) -> Box<dyn RangeIndex + Send> {
        match self {
            Algorithm::Quicksort => Box::new(ProgressiveQuicksort::with_constants(
                column, policy, constants,
            )),
            Algorithm::RadixsortMsd => Box::new(ProgressiveRadixsortMsd::with_constants(
                column, policy, constants,
            )),
            Algorithm::RadixsortLsd => Box::new(ProgressiveRadixsortLsd::with_constants(
                column, policy, constants,
            )),
            Algorithm::Bucketsort => Box::new(ProgressiveBucketsort::with_constants(
                column, policy, constants,
            )),
        }
    }

    /// [`Algorithm::build_with_constants`] with explicit kernel tuning
    /// constants — the engine's `TableBuilder` threads the
    /// machine-calibrated [`TuningParameters`] through here so every
    /// shard runs the tuned refinement kernels. Tuning is result-neutral:
    /// it selects between bit-identical kernel implementations (see
    /// [`crate::tuning`]).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use pi_core::cost_model::CostConstants;
    /// use pi_core::prelude::*;
    ///
    /// let column = Arc::new(pi_core::testing::random_column(10_000, 50_000, 7));
    /// let mut index = Algorithm::RadixsortLsd.build_tuned(
    ///     column,
    ///     BudgetPolicy::FixedDelta(0.5),
    ///     CostConstants::synthetic(),
    ///     TuningParameters::calibrated(),
    /// );
    /// let result = index.query(1_000, 2_000);
    /// assert!(result.count > 0);
    /// ```
    pub fn build_tuned(
        self,
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
        tuning: TuningParameters,
    ) -> Box<dyn RangeIndex + Send> {
        match self {
            Algorithm::Quicksort => {
                let config = QuicksortConfig {
                    tuning,
                    ..QuicksortConfig::default()
                };
                Box::new(ProgressiveQuicksort::with_config(
                    column, policy, constants, config,
                ))
            }
            Algorithm::RadixsortMsd => {
                let config = RadixMsdConfig {
                    tuning,
                    ..RadixMsdConfig::default()
                };
                Box::new(ProgressiveRadixsortMsd::with_config(
                    column, policy, constants, config,
                ))
            }
            Algorithm::RadixsortLsd => {
                let config = RadixLsdConfig {
                    tuning,
                    ..RadixLsdConfig::default()
                };
                Box::new(ProgressiveRadixsortLsd::with_config(
                    column, policy, constants, config,
                ))
            }
            Algorithm::Bucketsort => {
                let config = BucketsortConfig {
                    tuning,
                    ..BucketsortConfig::default()
                };
                Box::new(ProgressiveBucketsort::with_config(
                    column, policy, constants, config,
                ))
            }
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Dominant query shape of the expected workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// Mostly `a == v` lookups (the paper's "Point Query" workload block).
    Point,
    /// Mostly `a BETWEEN v1 AND v2` range queries.
    Range,
    /// Nothing is known about the query shape.
    Unknown,
}

/// What is known about the value distribution of the column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataDistribution {
    /// Roughly uniform (e.g. surrogate keys, uniformly random values).
    Uniform,
    /// Heavily skewed (the paper's synthetic skew concentrates 90% of the
    /// values in 10% of the domain).
    Skewed,
    /// Nothing is known about the distribution.
    Unknown,
}

/// The scenario the decision tree is evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Dominant query shape.
    pub query_shape: QueryShape,
    /// Knowledge about the value distribution.
    pub distribution: DataDistribution,
    /// Whether the extra memory for out-of-place bucket storage
    /// (≈ one additional copy of the column while clustering) is
    /// acceptable. When it is not, only the in-place Progressive Quicksort
    /// qualifies.
    pub extra_memory_allowed: bool,
}

impl Scenario {
    /// A scenario where nothing is known: unknown query shape, unknown
    /// distribution, extra memory allowed.
    pub fn unknown() -> Self {
        Scenario {
            query_shape: QueryShape::Unknown,
            distribution: DataDistribution::Unknown,
            extra_memory_allowed: true,
        }
    }
}

impl Default for Scenario {
    fn default() -> Self {
        Self::unknown()
    }
}

/// Walks the decision tree of Figure 11 and returns the recommended
/// progressive indexing technique for `scenario`.
///
/// ```
/// use pi_core::decision::{recommend, Algorithm, DataDistribution, QueryShape, Scenario};
///
/// // Point-query heavy dashboard over a key column.
/// let algo = recommend(Scenario {
///     query_shape: QueryShape::Point,
///     distribution: DataDistribution::Uniform,
///     extra_memory_allowed: true,
/// });
/// assert_eq!(algo, Algorithm::RadixsortLsd);
///
/// // Nothing known and memory is tight: fall back to Progressive Quicksort.
/// let algo = recommend(Scenario {
///     extra_memory_allowed: false,
///     ..Scenario::unknown()
/// });
/// assert_eq!(algo, Algorithm::Quicksort);
/// ```
pub fn recommend(scenario: Scenario) -> Algorithm {
    // Memory is the first split: the bucket-based techniques all maintain
    // out-of-place bucket storage during (re)clustering, so a memory-
    // constrained deployment can only afford the in-place quicksort.
    if !scenario.extra_memory_allowed {
        return Algorithm::Quicksort;
    }
    match scenario.query_shape {
        // Point queries can use LSD buckets from the very first query.
        QueryShape::Point => Algorithm::RadixsortLsd,
        QueryShape::Range => match scenario.distribution {
            DataDistribution::Uniform => Algorithm::RadixsortMsd,
            DataDistribution::Skewed => Algorithm::Bucketsort,
            // Unknown distribution: equi-height bounds adapt to whatever
            // the data looks like, so Bucketsort is the robust range
            // choice.
            DataDistribution::Unknown => Algorithm::Bucketsort,
        },
        // Unknown query shape: Quicksort is the paper's general-purpose
        // recommendation — range and point queries both benefit, and it
        // carries no bucket bookkeeping that a particular query shape
        // might render useless.
        QueryShape::Unknown => match scenario.distribution {
            DataDistribution::Uniform => Algorithm::RadixsortMsd,
            _ => Algorithm::Quicksort,
        },
    }
}

/// Enumerates the recommendation for every combination of the scenario
/// dimensions — handy for printing the full decision tree (the
/// `fig11_decision_tree` experiment binary uses this).
pub fn full_decision_table() -> Vec<(Scenario, Algorithm)> {
    let shapes = [QueryShape::Point, QueryShape::Range, QueryShape::Unknown];
    let distributions = [
        DataDistribution::Uniform,
        DataDistribution::Skewed,
        DataDistribution::Unknown,
    ];
    let mut table = Vec::new();
    for &query_shape in &shapes {
        for &distribution in &distributions {
            for &extra_memory_allowed in &[true, false] {
                let scenario = Scenario {
                    query_shape,
                    distribution,
                    extra_memory_allowed,
                };
                table.push((scenario, recommend(scenario)));
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_constraint_always_yields_quicksort() {
        for (scenario, algo) in full_decision_table() {
            if !scenario.extra_memory_allowed {
                assert_eq!(algo, Algorithm::Quicksort, "scenario {scenario:?}");
            }
        }
    }

    #[test]
    fn point_queries_yield_lsd_when_memory_allows() {
        let algo = recommend(Scenario {
            query_shape: QueryShape::Point,
            distribution: DataDistribution::Skewed,
            extra_memory_allowed: true,
        });
        assert_eq!(algo, Algorithm::RadixsortLsd);
    }

    #[test]
    fn uniform_range_queries_yield_msd() {
        let algo = recommend(Scenario {
            query_shape: QueryShape::Range,
            distribution: DataDistribution::Uniform,
            extra_memory_allowed: true,
        });
        assert_eq!(algo, Algorithm::RadixsortMsd);
    }

    #[test]
    fn skewed_range_queries_yield_bucketsort() {
        let algo = recommend(Scenario {
            query_shape: QueryShape::Range,
            distribution: DataDistribution::Skewed,
            extra_memory_allowed: true,
        });
        assert_eq!(algo, Algorithm::Bucketsort);
    }

    #[test]
    fn unknown_everything_yields_quicksort() {
        assert_eq!(recommend(Scenario::unknown()), Algorithm::Quicksort);
    }

    #[test]
    fn full_table_covers_all_combinations() {
        let table = full_decision_table();
        assert_eq!(table.len(), 3 * 3 * 2);
        // Every algorithm that the tree can recommend appears at least once.
        for algo in [
            Algorithm::Quicksort,
            Algorithm::RadixsortMsd,
            Algorithm::RadixsortLsd,
            Algorithm::Bucketsort,
        ] {
            assert!(
                table.iter().any(|&(_, a)| a == algo),
                "{algo} never recommended"
            );
        }
    }

    #[test]
    fn algorithm_names_are_stable() {
        assert_eq!(Algorithm::Quicksort.name(), "progressive-quicksort");
        assert_eq!(
            Algorithm::RadixsortMsd.to_string(),
            "progressive-radixsort-msd"
        );
        assert_eq!(Algorithm::ALL.len(), 4);
    }
}
