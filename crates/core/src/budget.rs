//! Indexing budgets: how much indexing work a query is allowed to do.
//!
//! The paper exposes two user-facing knobs plus a raw expert mode:
//!
//! * **Fixed δ** — every query performs the same fraction δ of indexing
//!   work. This is the knob swept in Figure 7 and fixed to `0.25` in the
//!   cost-model validation of Figure 8.
//! * **Fixed indexing budget** — the user specifies a time budget
//!   `t_budget` for the *first* query; the cost model translates it into a
//!   δ which is then kept for the remainder of the workload.
//! * **Adaptive indexing budget** — the user specifies `t_budget`; the
//!   first query runs in `t_scan + t_budget`, and every subsequent query
//!   re-derives δ from the cost model so that the total per-query cost
//!   stays at that level until the index has converged (Figure 9,
//!   Tables 2–5 use `t_budget = 0.2 · t_scan`).
//!
//! [`BudgetController`] encapsulates the translation; the individual
//! algorithms ask it for the δ of the current query, passing the cost
//! of one unit of the phase-specific indexing work.

use crate::cost_model::{clamp_delta, CostModel};

/// User-facing budget policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetPolicy {
    /// Perform the same fraction `δ ∈ (0, 1]` of indexing work per query.
    FixedDelta(f64),
    /// Derive δ from this time budget (seconds) using the cost model of the
    /// *first* query's phase, then keep that δ for the rest of the
    /// workload.
    FixedBudget(f64),
    /// Re-derive δ every query from this time budget (seconds), so each
    /// query spends `t_budget` of extra time on indexing until convergence.
    Adaptive(f64),
}

impl BudgetPolicy {
    /// Convenience constructor for the paper's default experiment setting:
    /// an adaptive budget of `fraction · t_scan` (the evaluation uses
    /// `fraction = 0.2`).
    pub fn adaptive_scan_fraction(model: &CostModel, fraction: f64) -> Self {
        BudgetPolicy::Adaptive(fraction * model.t_scan())
    }

    /// Fixed-budget analogue of
    /// [`BudgetPolicy::adaptive_scan_fraction`].
    pub fn fixed_scan_fraction(model: &CostModel, fraction: f64) -> Self {
        BudgetPolicy::FixedBudget(fraction * model.t_scan())
    }
}

/// Per-index budget state: translates the policy into the δ to use for the
/// current query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetController {
    policy: BudgetPolicy,
    /// δ locked in by the first query under [`BudgetPolicy::FixedBudget`].
    locked_delta: Option<f64>,
}

impl BudgetController {
    /// Creates a controller for the given policy.
    ///
    /// # Panics
    /// Panics when a fixed δ is outside `(0, 1]` or a time budget is not a
    /// positive, finite number.
    pub fn new(policy: BudgetPolicy) -> Self {
        match policy {
            BudgetPolicy::FixedDelta(delta) => {
                assert!(
                    delta > 0.0 && delta <= 1.0,
                    "fixed delta must lie in (0, 1], got {delta}"
                );
            }
            BudgetPolicy::FixedBudget(budget) | BudgetPolicy::Adaptive(budget) => {
                assert!(
                    budget.is_finite() && budget > 0.0,
                    "indexing budget must be a positive number of seconds, got {budget}"
                );
            }
        }
        BudgetController {
            policy,
            locked_delta: None,
        }
    }

    /// The policy this controller was created with.
    pub fn policy(&self) -> BudgetPolicy {
        self.policy
    }

    /// δ to use for the current query, given the cost of performing *all*
    /// of the current phase's unit work (e.g. `t_pivot`, `t_swap`,
    /// `t_bucket`, `t_copy` — whatever the phase's cost model divides the
    /// budget by).
    ///
    /// For [`BudgetPolicy::FixedBudget`] the first call locks the resulting
    /// δ; later calls return the locked value regardless of phase.
    pub fn delta_for_query(&mut self, phase_unit_cost: f64) -> f64 {
        match self.policy {
            BudgetPolicy::FixedDelta(delta) => delta,
            BudgetPolicy::Adaptive(budget) => clamp_delta(budget / phase_unit_cost),
            BudgetPolicy::FixedBudget(budget) => {
                if let Some(locked) = self.locked_delta {
                    locked
                } else {
                    let delta = clamp_delta(budget / phase_unit_cost);
                    self.locked_delta = Some(delta);
                    delta
                }
            }
        }
    }

    /// The time budget in seconds, when the policy carries one.
    pub fn time_budget(&self) -> Option<f64> {
        match self.policy {
            BudgetPolicy::FixedDelta(_) => None,
            BudgetPolicy::FixedBudget(b) | BudgetPolicy::Adaptive(b) => Some(b),
        }
    }
}

/// A fixed pool of budgeted indexing steps shared by concurrent workers.
///
/// The serving engine hands maintenance rounds to a worker pool: several
/// workers advance cold shards in parallel, but the *total* number of
/// budgeted steps spent per round must stay bounded — the engine-level
/// analogue of the paper's per-query budget δ. Each worker calls
/// [`StepBudget::try_take`] before performing a step; once the pool is
/// exhausted every caller backs off, no matter how the steps were
/// interleaved across threads.
#[derive(Debug)]
pub struct StepBudget {
    remaining: std::sync::atomic::AtomicUsize,
}

impl StepBudget {
    /// A budget of `steps` indexing steps.
    pub fn new(steps: usize) -> Self {
        StepBudget {
            remaining: std::sync::atomic::AtomicUsize::new(steps),
        }
    }

    /// Claims one step. Returns `false` once the budget is exhausted (the
    /// claim is atomic: `steps` successful claims can happen in total,
    /// regardless of thread interleaving).
    pub fn try_take(&self) -> bool {
        self.remaining
            .fetch_update(
                std::sync::atomic::Ordering::Relaxed,
                std::sync::atomic::Ordering::Relaxed,
                |r| r.checked_sub(1),
            )
            .is_ok()
    }

    /// Steps not yet claimed.
    pub fn remaining(&self) -> usize {
        self.remaining.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns unclaimed steps to the budget (a worker claimed a step but
    /// found its shard already converged).
    pub fn give_back(&self) {
        self.remaining
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::{CostConstants, CostModel};

    #[test]
    fn fixed_delta_is_returned_verbatim() {
        let mut c = BudgetController::new(BudgetPolicy::FixedDelta(0.25));
        assert_eq!(c.delta_for_query(123.0), 0.25);
        assert_eq!(c.delta_for_query(0.001), 0.25);
        assert_eq!(c.time_budget(), None);
    }

    #[test]
    fn adaptive_budget_recomputes_each_query() {
        let mut c = BudgetController::new(BudgetPolicy::Adaptive(0.1));
        assert!((c.delta_for_query(1.0) - 0.1).abs() < 1e-12);
        assert!((c.delta_for_query(0.4) - 0.25).abs() < 1e-12);
        assert_eq!(c.delta_for_query(0.05), 1.0); // clamped
    }

    #[test]
    fn fixed_budget_locks_first_delta() {
        let mut c = BudgetController::new(BudgetPolicy::FixedBudget(0.1));
        let first = c.delta_for_query(1.0);
        assert!((first - 0.1).abs() < 1e-12);
        // A later phase with a very different unit cost still gets the
        // locked delta.
        assert_eq!(c.delta_for_query(0.0001), first);
    }

    #[test]
    fn scan_fraction_constructors_match_scan_cost() {
        let model = CostModel::new(CostConstants::synthetic(), 1_000_000);
        let adaptive = BudgetPolicy::adaptive_scan_fraction(&model, 0.2);
        match adaptive {
            BudgetPolicy::Adaptive(b) => assert!((b - 0.2 * model.t_scan()).abs() < 1e-15),
            other => panic!("unexpected policy {other:?}"),
        }
        let fixed = BudgetPolicy::fixed_scan_fraction(&model, 0.2);
        assert!(matches!(fixed, BudgetPolicy::FixedBudget(_)));
    }

    #[test]
    #[should_panic(expected = "fixed delta")]
    fn zero_delta_rejected() {
        let _ = BudgetController::new(BudgetPolicy::FixedDelta(0.0));
    }

    #[test]
    #[should_panic(expected = "indexing budget")]
    fn negative_budget_rejected() {
        let _ = BudgetController::new(BudgetPolicy::Adaptive(-1.0));
    }

    #[test]
    fn step_budget_grants_exactly_its_steps() {
        let budget = StepBudget::new(3);
        assert_eq!(budget.remaining(), 3);
        assert!(budget.try_take());
        assert!(budget.try_take());
        assert!(budget.try_take());
        assert!(!budget.try_take());
        assert!(!budget.try_take(), "exhausted budget must stay exhausted");
        budget.give_back();
        assert!(budget.try_take());
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn step_budget_is_exact_under_contention() {
        let budget = StepBudget::new(1_000);
        let taken = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while budget.try_take() {
                        taken.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(taken.load(std::sync::atomic::Ordering::Relaxed), 1_000);
        assert_eq!(budget.remaining(), 0);
    }
}
