//! The [`RangeIndex`] trait: the common interface of every progressive
//! index and every adaptive-indexing baseline in this workspace.
//!
//! The paper's workload is `SELECT SUM(R.A) FROM R WHERE R.A BETWEEN V1 AND
//! V2` (point queries are the special case `V1 == V2`). Each call to
//! [`RangeIndex::query`] answers one such query **and**, as a side effect,
//! performs a bounded amount of indexing work — that combination is the
//! defining property of incremental indexing.

use crate::result::{IndexStatus, QueryResult};
use pi_storage::Value;

/// An index over a single integer column that answers inclusive range-sum
/// queries and refines itself as a side effect of query processing.
pub trait RangeIndex {
    /// Answers `SELECT SUM(a), COUNT(a) WHERE a BETWEEN low AND high`
    /// (inclusive on both ends; `low > high` denotes the empty range), and
    /// performs this query's share of indexing work.
    fn query(&mut self, low: Value, high: Value) -> QueryResult;

    /// Progress snapshot: phase, fraction of data indexed, phase progress.
    fn status(&self) -> IndexStatus;

    /// `true` once no further indexing work will ever be performed.
    fn is_converged(&self) -> bool {
        self.status().converged
    }

    /// Stable, short identifier used in experiment output
    /// (e.g. `"progressive-quicksort"`, `"standard-cracking"`).
    fn name(&self) -> &'static str;

    /// Convenience: answers a point query (`a == value`).
    fn point_query(&mut self, value: Value) -> QueryResult {
        self.query(value, value)
    }
}

/// Blanket implementation so `Box<dyn RangeIndex>` (used by the experiment
/// harness to iterate over heterogeneous algorithm sets) is itself usable
/// as a `RangeIndex`.
impl<T: RangeIndex + ?Sized> RangeIndex for Box<T> {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        (**self).query(low, high)
    }

    fn status(&self) -> IndexStatus {
        (**self).status()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Phase;
    use pi_storage::scan::ScanResult;

    /// Minimal index used to exercise the trait's default methods.
    struct TrivialIndex {
        data: Vec<Value>,
    }

    impl RangeIndex for TrivialIndex {
        fn query(&mut self, low: Value, high: Value) -> QueryResult {
            let scan = pi_storage::scan::scan_range_sum(&self.data, low, high);
            QueryResult::answer_only(scan, Phase::Converged)
        }

        fn status(&self) -> IndexStatus {
            IndexStatus::converged()
        }

        fn name(&self) -> &'static str {
            "trivial"
        }
    }

    #[test]
    fn point_query_default_uses_closed_interval() {
        let mut idx = TrivialIndex {
            data: vec![1, 5, 5, 9],
        };
        let r = idx.point_query(5);
        assert_eq!(r.scan_result(), ScanResult { sum: 10, count: 2 });
    }

    #[test]
    fn boxed_index_delegates() {
        let mut boxed: Box<dyn RangeIndex> = Box::new(TrivialIndex {
            data: vec![2, 4, 6],
        });
        assert_eq!(boxed.name(), "trivial");
        assert!(boxed.is_converged());
        let r = boxed.query(3, 7);
        assert_eq!(r.sum, 10);
        assert_eq!(r.count, 2);
    }
}
