//! Observability hooks for the progressive-index core.
//!
//! The paper's central promise is a *bounded, predictable* per-query
//! indexing cost; [`IndexMetrics`] measures exactly that promise for a
//! live index: how many budgeted refinement steps ran, how many bytes
//! each δ·N slice moved, how many incremental merge steps folded deltas
//! back in, and — most directly — how far the cost model's *predicted*
//! per-query cost sits from the *measured* one.
//!
//! A [`crate::mutation::MutableIndex`] carries an optional
//! `Arc<IndexMetrics>` (see [`crate::mutation::MutableIndex::set_metrics`]);
//! without one, nothing is recorded and nothing is paid. Counters are
//! derived from the [`crate::result::QueryResult`] the index already
//! returns (no clock); the cost-model error histogram needs wall time
//! and is therefore gated on [`pi_obs::ENABLED`] at the call sites.

use std::sync::Arc;
use std::time::Duration;

use pi_obs::{Counter, Histogram, MetricsRegistry};

use crate::result::QueryResult;

/// Bytes per indexed element: the core operates on `u64` values, and
/// `indexing_ops` counts element moves/writes, so bytes ≈ ops × 8.
const BYTES_PER_ELEMENT: u64 = 8;

/// Shared metric handles for one index (or one family of indexes — the
/// engine registers one set per column and shares it across shards, so
/// the counters aggregate a column's total indexing work).
#[derive(Debug)]
pub struct IndexMetrics {
    refine_steps: Arc<Counter>,
    bytes_moved: Arc<Counter>,
    merge_steps: Arc<Counter>,
    cost_error_pm: Arc<Histogram>,
}

impl IndexMetrics {
    /// Registers the metric family `core.<scope>.*` in `registry`
    /// (`scope` is sanitized, so raw column names are fine):
    ///
    /// * `core.<scope>.refine_steps` — budgeted indexing slices executed
    ///   (query side-effect work and explicit maintenance alike).
    /// * `core.<scope>.bytes_moved` — δ·N bytes moved by those slices
    ///   plus incremental merge copying.
    /// * `core.<scope>.merge_steps` — budgeted merge steps folding the
    ///   pending-delta sidecar back into the snapshot.
    /// * `core.<scope>.cost_error_pm` — per-query symmetric relative
    ///   error between the cost model's predicted cost and the measured
    ///   wall time, in per-mille (0 = perfect, 1000 = off by ∞).
    pub fn register(registry: &MetricsRegistry, scope: &str) -> Arc<IndexMetrics> {
        let scope = pi_obs::sanitize_component(scope);
        Arc::new(IndexMetrics {
            refine_steps: registry.counter(&format!("core.{scope}.refine_steps")),
            bytes_moved: registry.counter(&format!("core.{scope}.bytes_moved")),
            merge_steps: registry.counter(&format!("core.{scope}.merge_steps")),
            cost_error_pm: registry.histogram(&format!("core.{scope}.cost_error_pm")),
        })
    }

    /// Accounts one query's (or maintenance slice's) indexing work from
    /// its [`QueryResult`]. Pure counter traffic — always on.
    #[inline]
    pub fn observe_query(&self, result: &QueryResult) {
        if result.indexing_ops > 0 {
            self.refine_steps.inc();
            self.bytes_moved
                .add(result.indexing_ops * BYTES_PER_ELEMENT);
        }
    }

    /// Accounts one budgeted merge step that appended `elements` to the
    /// merged snapshot.
    #[inline]
    pub fn observe_merge_step(&self, elements: usize) {
        self.merge_steps.inc();
        self.bytes_moved.add(elements as u64 * BYTES_PER_ELEMENT);
    }

    /// Records the cost model's prediction error for one query:
    /// `|predicted − actual| / max(predicted, actual)` in per-mille, so
    /// the histogram stays in `[0, 1000]` whichever side the model
    /// misses on. Callers gate this on [`pi_obs::ENABLED`] (it needs a
    /// clock); queries without a prediction record nothing.
    #[inline]
    pub fn observe_cost_error(&self, predicted_seconds: Option<f64>, actual: Duration) {
        let Some(predicted) = predicted_seconds else {
            return;
        };
        let actual = actual.as_secs_f64();
        // `actual` is a finite non-negative Duration, so with a finite
        // prediction the max is never NaN; zero-cost samples carry no
        // error signal.
        let denom = predicted.max(actual);
        if !predicted.is_finite() || denom <= 0.0 {
            return;
        }
        let per_mille = ((predicted - actual).abs() / denom * 1000.0).round() as u64;
        self.cost_error_pm.record(per_mille.min(1000));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Phase;
    use pi_storage::ScanResult;

    fn result_with_ops(ops: u64) -> QueryResult {
        let mut r = QueryResult::answer_only(ScanResult::EMPTY, Phase::Refinement);
        r.indexing_ops = ops;
        r
    }

    #[test]
    fn query_observation_counts_steps_and_bytes() {
        let registry = MetricsRegistry::new();
        let metrics = IndexMetrics::register(&registry, "ra");
        metrics.observe_query(&result_with_ops(100));
        metrics.observe_query(&result_with_ops(0)); // no work: no step
        metrics.observe_query(&result_with_ops(50));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.ra.refine_steps"), Some(2));
        assert_eq!(snap.counter("core.ra.bytes_moved"), Some(150 * 8));
    }

    #[test]
    fn merge_steps_add_bytes() {
        let registry = MetricsRegistry::new();
        let metrics = IndexMetrics::register(&registry, "ra");
        metrics.observe_merge_step(32);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.ra.merge_steps"), Some(1));
        assert_eq!(snap.counter("core.ra.bytes_moved"), Some(32 * 8));
    }

    #[test]
    fn cost_error_is_symmetric_relative_per_mille() {
        let registry = MetricsRegistry::new();
        let metrics = IndexMetrics::register(&registry, "c");
        // Perfect prediction: 0 per-mille.
        metrics.observe_cost_error(Some(1e-3), Duration::from_millis(1));
        // Predicted 2x the actual: |2-1|/2 = 500 per-mille.
        metrics.observe_cost_error(Some(2e-3), Duration::from_millis(1));
        // No prediction: nothing recorded.
        metrics.observe_cost_error(None, Duration::from_millis(1));
        let snap = registry.snapshot();
        let hist = snap.histogram("core.c.cost_error_pm").unwrap();
        assert_eq!(hist.count, 2);
        assert!(hist.quantile(1.0) >= 500);
        assert!(hist.quantile(0.01) <= 1);
    }

    #[test]
    fn scope_names_are_sanitized() {
        let registry = MetricsRegistry::new();
        let metrics = IndexMetrics::register(&registry, "RA.col");
        metrics.observe_merge_step(1);
        assert_eq!(
            registry.snapshot().counter("core.ra_col.merge_steps"),
            Some(1)
        );
    }
}
