//! Progressive Bucketsort, Equi-Height (§3.3).
//!
//! Progressive Bucketsort is structurally identical to Progressive
//! Radixsort (MSD) during the creation phase, but the partitioning bounds
//! are *value-based* rather than radix-based: a set of `b - 1` boundaries
//! divides the value domain into buckets of (approximately) equal
//! cardinality, so the approach stays balanced under skewed data at the
//! cost of a `log2 b` binary search per routed element.
//!
//! * **Creation** — the bounds are obtained from a sample of the column
//!   (the paper permits taking them "in the scan to answer the first
//!   query or from existing statistics"). Every query routes another
//!   `δ · N` elements into their bucket and scans the buckets overlapping
//!   its predicate plus the unconsumed column tail.
//! * **Refinement** — the buckets are merged *in order* into the final
//!   sorted array; each bucket's region is then sorted with a budgeted
//!   Progressive Quicksort ([`IncrementalSorter`]), "as such, we always
//!   have at most a single iteration of Progressive Quicksort active at a
//!   time".
//! * **Consolidation** — identical to the other algorithms: a B+-tree is
//!   built over the sorted array.

use std::sync::Arc;

use pi_storage::btree::{BTreeBuilder, StaticBTree, DEFAULT_FANOUT};
use pi_storage::scan::{scan_range_sum, ScanResult};
use pi_storage::{sorted, Column, Value};

use crate::buckets::{BucketSet, DEFAULT_BLOCK_CAPACITY, DEFAULT_BUCKET_COUNT};
use crate::budget::{BudgetController, BudgetPolicy};
use crate::cost_model::{CostConstants, CostModel};
use crate::index::RangeIndex;
use crate::result::{IndexStatus, Phase, QueryResult};
use crate::sorter::{IncrementalSorter, DEFAULT_SMALL_NODE_ELEMENTS};
use crate::tuning::{KernelMode, TuningParameters};

/// Tuning parameters for [`ProgressiveBucketsort`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketsortConfig {
    /// Number of buckets `b` (defaults to 64).
    pub bucket_count: usize,
    /// Elements per bucket block (`s_b`).
    pub block_capacity: usize,
    /// Small-node cutoff passed to the per-bucket Progressive Quicksort.
    pub small_node_elements: usize,
    /// Fan-out β of the consolidation-phase B+-tree.
    pub btree_fanout: usize,
    /// Number of evenly spaced elements sampled to estimate the
    /// equi-height bounds.
    pub bound_sample_size: usize,
    /// Kernel tuning constants for the merge/sort steps; result-neutral
    /// (see [`crate::tuning`]).
    pub tuning: TuningParameters,
}

impl Default for BucketsortConfig {
    fn default() -> Self {
        BucketsortConfig {
            bucket_count: DEFAULT_BUCKET_COUNT,
            block_capacity: DEFAULT_BLOCK_CAPACITY,
            small_node_elements: DEFAULT_SMALL_NODE_ELEMENTS,
            btree_fanout: DEFAULT_FANOUT,
            bound_sample_size: 4096,
            tuning: TuningParameters::default(),
        }
    }
}

/// Per-bucket merge progress during the refinement phase.
#[derive(Debug)]
enum MergeStage {
    /// Copying the bucket's elements into its region of the final array;
    /// `copied` elements transferred so far.
    Copying { copied: usize },
    /// Sorting the region in place with a budgeted incremental quicksort.
    Sorting { sorter: IncrementalSorter },
    /// The region is sorted.
    Done,
}

/// Phase-specific state.
#[derive(Debug)]
enum State {
    Creation {
        buckets: BucketSet,
        consumed: usize,
    },
    Refinement {
        buckets: BucketSet,
        /// Start offset of each bucket's region in the final array.
        offsets: Vec<usize>,
        /// Index of the bucket currently being merged; buckets before it
        /// are fully merged and sorted.
        current: usize,
        stage: MergeStage,
        merged: Vec<Value>,
    },
    Consolidation {
        sorted_data: Vec<Value>,
        builder: BTreeBuilder,
        total_copies: usize,
    },
    Converged {
        sorted_data: Vec<Value>,
        tree: StaticBTree,
    },
}

/// Progressive Bucketsort (Equi-Height) index over a single integer column.
pub struct ProgressiveBucketsort {
    column: Arc<Column>,
    state: State,
    /// `bucket_count - 1` ascending boundaries; bucket `i` holds values
    /// `v` with `bounds[i-1] <= v < bounds[i]` (open-ended at both ends).
    bounds: Vec<Value>,
    budget: BudgetController,
    model: CostModel,
    config: BucketsortConfig,
    queries_executed: u64,
}

impl ProgressiveBucketsort {
    /// Creates a Progressive Bucketsort index with default configuration
    /// and synthetic cost constants.
    pub fn new(column: Arc<Column>, policy: BudgetPolicy) -> Self {
        Self::with_constants(column, policy, CostConstants::synthetic())
    }

    /// Creates the index with explicit cost constants.
    pub fn with_constants(
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
    ) -> Self {
        Self::with_config(column, policy, constants, BucketsortConfig::default())
    }

    /// Creates the index with explicit cost constants and tuning knobs.
    pub fn with_config(
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
        config: BucketsortConfig,
    ) -> Self {
        assert!(config.bucket_count >= 2, "bucket count must be at least 2");
        let n = column.len();
        let model = CostModel::new(constants, n);
        let bounds = equi_height_bounds(&column, config.bucket_count, config.bound_sample_size);
        let state = if n == 0 {
            State::Converged {
                sorted_data: Vec::new(),
                tree: StaticBTree::build(&[], config.btree_fanout),
            }
        } else {
            State::Creation {
                buckets: BucketSet::new(config.bucket_count, config.block_capacity),
                consumed: 0,
            }
        };
        ProgressiveBucketsort {
            column,
            state,
            bounds,
            budget: BudgetController::new(policy),
            model,
            config,
            queries_executed: 0,
        }
    }

    /// The cost model used by this index.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// The equi-height bounds chosen for this column (for inspection).
    pub fn bounds(&self) -> &[Value] {
        &self.bounds
    }

    fn n(&self) -> usize {
        self.column.len()
    }

    /// Bucket that `value` routes to: the number of bounds ≤ `value`.
    fn bucket_of(&self, value: Value) -> usize {
        sorted::upper_bound(&self.bounds, value)
    }

    fn current_delta(&mut self) -> f64 {
        let unit_cost = match &self.state {
            State::Creation { .. } => self
                .model
                .t_bucketize_equiheight(self.config.block_capacity, self.config.bucket_count),
            // The refinement phase runs Progressive Quicksort inside each
            // bucket region, so the quicksort swap cost applies.
            State::Refinement { .. } => self.model.t_swap(),
            State::Consolidation { total_copies, .. } => self.model.t_consolidate(*total_copies),
            State::Converged { .. } => return 0.0,
        };
        self.budget.delta_for_query(unit_cost)
    }

    // ------------------------------------------------------------------
    // Creation phase
    // ------------------------------------------------------------------

    fn query_creation(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let n = self.n();
        let bucket_count = self.config.bucket_count;
        let lo_b = self.bucket_of(low);
        let hi_b = self.bucket_of(high).min(bucket_count - 1);
        let bounds = &self.bounds;
        let State::Creation { buckets, consumed } = &mut self.state else {
            unreachable!("query_creation called outside the creation phase");
        };

        // 1. Scan the buckets whose value range intersects the predicate.
        let mut result = ScanResult::EMPTY;
        let mut scanned: u64 = 0;
        if low <= high {
            result = result.merge(buckets.range_sum_buckets(lo_b, hi_b, low, high));
            scanned += (lo_b..=hi_b)
                .map(|b| buckets.bucket(b).len() as u64)
                .sum::<u64>();
        }
        let alpha = scanned as f64 / n.max(1) as f64;
        let rho = *consumed as f64 / n.max(1) as f64;

        // 2. Route δ·N elements into their buckets, answering the
        //    predicate for them on the fly.
        let todo = ((delta * n as f64).ceil() as usize).min(n - *consumed);
        let data = self.column.data();
        for &value in &data[*consumed..*consumed + todo] {
            let qualifies = (value >= low) as u64 & (value <= high) as u64;
            result.sum += (value as u128) * (qualifies as u128);
            result.count += qualifies;
            let b = sorted::upper_bound(bounds, value);
            buckets.push(b, value);
        }
        *consumed += todo;

        // 3. Scan the rest of the base column.
        let tail = &data[*consumed..];
        result = result.merge(scan_range_sum(tail, low, high));
        scanned += (todo + tail.len()) as u64;

        let predicted = self.model.bucketsort_creation(
            rho,
            alpha,
            delta,
            self.config.block_capacity,
            bucket_count,
        );

        if *consumed == n {
            self.start_refinement();
        }

        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Creation,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: todo as u64,
            elements_scanned: scanned,
        }
    }

    fn start_refinement(&mut self) {
        let n = self.n();
        let State::Creation { buckets, .. } = &mut self.state else {
            return;
        };
        let buckets = std::mem::replace(buckets, BucketSet::new(1, 1));
        let sizes = buckets.sizes();
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0usize;
        for s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        self.state = State::Refinement {
            buckets,
            offsets,
            current: 0,
            stage: MergeStage::Copying { copied: 0 },
            merged: vec![0; n],
        };
    }

    // ------------------------------------------------------------------
    // Refinement phase
    // ------------------------------------------------------------------

    fn query_refinement(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let n = self.n();
        let bucket_count = self.config.bucket_count;
        let small_node = self.config.small_node_elements;
        let tuning = self.config.tuning;
        let lo_b = self.bucket_of(low);
        let hi_b = self.bucket_of(high).min(bucket_count - 1);
        let column_min = self.column.min();
        let column_max = self.column.max();
        let bounds = &self.bounds;

        let State::Refinement {
            buckets,
            offsets,
            current,
            stage,
            merged,
        } = &mut self.state
        else {
            unreachable!("query_refinement called outside the refinement phase");
        };

        // 1. Answer the query: merged-and-sorted regions use binary search,
        //    the in-flight bucket uses its merge stage, untouched buckets
        //    are scanned.
        let mut result = ScanResult::EMPTY;
        let mut scanned: u64 = 0;
        if low <= high {
            for b in lo_b..=hi_b {
                let len = buckets.bucket(b).len();
                if len == 0 && b != *current {
                    continue;
                }
                let region = &merged[offsets[b]..offsets[b] + len];
                if b < *current {
                    let r = sorted::sorted_range_sum(region, low, high);
                    scanned += r.count;
                    result = result.merge(r);
                } else if b > *current {
                    result = result.merge(buckets.bucket(b).range_sum(low, high));
                    scanned += len as u64;
                } else {
                    match stage {
                        MergeStage::Copying { copied } => {
                            // Copied prefix lives in the final array, the
                            // rest still in the bucket.
                            result = result
                                .merge(scan_range_sum(&region[..*copied], low, high))
                                .merge(buckets.bucket(b).range_sum_from(*copied, low, high));
                            scanned += len as u64;
                        }
                        MergeStage::Sorting { sorter } => {
                            let (r, s) = sorter.query(merged, low, high);
                            result = result.merge(r);
                            scanned += s;
                        }
                        MergeStage::Done => {
                            let r = sorted::sorted_range_sum(region, low, high);
                            scanned += r.count;
                            result = result.merge(r);
                        }
                    }
                }
            }
        }
        let alpha = scanned as f64 / n.max(1) as f64;

        // 2. Budgeted merge/sort work, always on the current bucket
        //    ("buckets are merged into the final sorted index in order").
        let budget = ((delta * n as f64).ceil() as usize).max(1);
        let mut ops = 0usize;
        while ops < budget && *current < bucket_count {
            let b = *current;
            let len = buckets.bucket(b).len();
            let offset = offsets[b];
            match stage {
                MergeStage::Copying { copied } => {
                    let take = (budget - ops).min(len - *copied);
                    let bucket = buckets.bucket(b);
                    if tuning.mode == KernelMode::Tuned {
                        // Block-wise copy instead of a per-element `get`
                        // (an integer division per element).
                        let out = &mut merged[offset + *copied..offset + *copied + take];
                        bucket.copy_range_to(*copied, out);
                    } else {
                        for i in 0..take {
                            merged[offset + *copied + i] = bucket.get(*copied + i);
                        }
                    }
                    *copied += take;
                    ops += take.max(1);
                    if *copied == len {
                        // Bucket value domain bounds for the quicksort.
                        let dom_min = if b == 0 { column_min } else { bounds[b - 1] };
                        let dom_max = if b + 1 < bucket_count {
                            bounds[b].saturating_sub(1)
                        } else {
                            column_max
                        };
                        *stage = MergeStage::Sorting {
                            sorter: IncrementalSorter::with_small_node(
                                offset,
                                offset + len,
                                dom_min,
                                dom_max,
                                small_node,
                            )
                            .with_tuning(tuning),
                        };
                    }
                }
                MergeStage::Sorting { sorter } => {
                    let used = sorter.refine(merged, budget - ops, None);
                    ops += used.max(1);
                    if sorter.is_sorted() {
                        *stage = MergeStage::Done;
                    }
                }
                MergeStage::Done => {
                    *current += 1;
                    if *current < bucket_count {
                        *stage = MergeStage::Copying { copied: 0 };
                    }
                }
            }
        }

        let height = (bucket_count.max(2) as f64).log2().ceil() as usize;
        let predicted = self.model.quicksort_refinement(height, alpha, delta);
        self.maybe_finish_refinement();

        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Refinement,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: ops as u64,
            elements_scanned: scanned,
        }
    }

    fn maybe_finish_refinement(&mut self) {
        let State::Refinement {
            current, merged, ..
        } = &mut self.state
        else {
            return;
        };
        if *current < self.config.bucket_count {
            return;
        }
        let sorted_data = std::mem::take(merged);
        debug_assert!(sorted::is_sorted(&sorted_data));
        let total_copies = BTreeBuilder::total_copies(sorted_data.len(), self.config.btree_fanout);
        let builder = BTreeBuilder::new(sorted_data.len(), self.config.btree_fanout);
        self.state = State::Consolidation {
            sorted_data,
            builder,
            total_copies,
        };
        self.maybe_finish_consolidation();
    }

    // ------------------------------------------------------------------
    // Consolidation phase
    // ------------------------------------------------------------------

    fn query_consolidation(&mut self, low: Value, high: Value, delta: f64) -> QueryResult {
        let State::Consolidation {
            sorted_data,
            builder,
            total_copies,
        } = &mut self.state
        else {
            unreachable!("query_consolidation called outside the consolidation phase");
        };
        let result = sorted::sorted_range_sum(sorted_data, low, high);
        let scanned = result.count;
        let alpha = scanned as f64 / sorted_data.len().max(1) as f64;
        let copies = ((delta * *total_copies as f64).ceil() as usize).max(1);
        let performed = builder.step(sorted_data, copies);
        let predicted = self.model.consolidation(alpha, delta, *total_copies);
        self.maybe_finish_consolidation();
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Consolidation,
            delta,
            predicted_cost: Some(predicted),
            indexing_ops: performed as u64,
            elements_scanned: scanned,
        }
    }

    fn maybe_finish_consolidation(&mut self) {
        let State::Consolidation {
            sorted_data,
            builder,
            ..
        } = &mut self.state
        else {
            return;
        };
        if !builder.is_complete() {
            return;
        }
        let tree = builder
            .clone()
            .finish()
            .expect("complete builder must finish");
        let sorted_data = std::mem::take(sorted_data);
        self.state = State::Converged { sorted_data, tree };
    }

    fn query_converged(&self, low: Value, high: Value) -> QueryResult {
        let State::Converged { sorted_data, tree } = &self.state else {
            unreachable!("query_converged called before convergence");
        };
        let result = tree.range_sum(sorted_data, low, high);
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Converged,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: 0,
            elements_scanned: result.count,
        }
    }
}

impl RangeIndex for ProgressiveBucketsort {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        let delta = self.current_delta();
        match self.state {
            State::Creation { .. } => self.query_creation(low, high, delta),
            State::Refinement { .. } => self.query_refinement(low, high, delta),
            State::Consolidation { .. } => self.query_consolidation(low, high, delta),
            State::Converged { .. } => self.query_converged(low, high),
        }
    }

    fn status(&self) -> IndexStatus {
        let n = self.n().max(1) as f64;
        match &self.state {
            State::Creation { consumed, .. } => IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: *consumed as f64 / n,
                phase_progress: *consumed as f64 / n,
                converged: false,
            },
            State::Refinement { current, .. } => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: *current as f64 / self.config.bucket_count as f64,
                converged: false,
            },
            State::Consolidation { builder, .. } => IndexStatus {
                phase: Phase::Consolidation,
                fraction_indexed: 1.0,
                phase_progress: builder.progress(),
                converged: false,
            },
            State::Converged { .. } => IndexStatus::converged(),
        }
    }

    fn name(&self) -> &'static str {
        "progressive-bucketsort"
    }
}

/// Computes `bucket_count - 1` equi-height boundaries from an evenly
/// spaced sample of the column.
fn equi_height_bounds(column: &Column, bucket_count: usize, sample_size: usize) -> Vec<Value> {
    let n = column.len();
    if n == 0 {
        return vec![0; bucket_count - 1];
    }
    let sample_size = sample_size.max(bucket_count).min(n);
    let step = (n / sample_size).max(1);
    let mut sample: Vec<Value> = column.data().iter().copied().step_by(step).collect();
    sample.sort_unstable();
    let mut bounds = Vec::with_capacity(bucket_count - 1);
    for i in 1..bucket_count {
        let idx = (i * sample.len()) / bucket_count;
        bounds.push(sample[idx.min(sample.len() - 1)]);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing;

    #[test]
    fn bounds_are_monotone_and_cover_the_domain() {
        let column = testing::random_column(50_000, 1_000_000, 9);
        let bounds = equi_height_bounds(&column, 64, 4096);
        assert_eq!(bounds.len(), 63);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bounds_on_skewed_data_remain_balanced() {
        // 90% of the data concentrated in a narrow band.
        let mut rng = testing::TestRng::new(3);
        let data: Vec<Value> = (0..100_000)
            .map(|_| {
                if rng.below(10) < 9 {
                    450_000 + rng.below(100_000)
                } else {
                    rng.below(1_000_000)
                }
            })
            .collect();
        let column = Column::from_vec(data);
        let bounds = equi_height_bounds(&column, 64, 4096);
        // Most bounds should land inside the dense band.
        let inside = bounds
            .iter()
            .filter(|&&b| (450_000..550_000).contains(&b))
            .count();
        assert!(inside > 32, "only {inside} bounds inside the dense band");
    }

    #[test]
    fn first_query_correct_and_bounded_work() {
        let column = testing::random_column(60_000, 600_000, 31);
        let reference = testing::ReferenceIndex::new(&column);
        let mut idx = ProgressiveBucketsort::new(Arc::new(column), BudgetPolicy::FixedDelta(0.1));
        let r = idx.query(1_000, 300_000);
        assert_eq!(r.scan_result(), reference.query(1_000, 300_000));
        assert!(r.indexing_ops <= (0.1f64 * 60_000.0).ceil() as u64);
    }

    #[test]
    fn converges_and_stays_correct() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveBucketsort::new(
                    column,
                    BudgetPolicy::FixedDelta(0.25),
                ))
            },
            50_000,
            500_000,
        );
    }

    #[test]
    fn converges_on_skewed_duplicated_data() {
        testing::assert_index_converges(
            |column| {
                Box::new(ProgressiveBucketsort::new(
                    column,
                    BudgetPolicy::FixedDelta(0.2),
                ))
            },
            40_000,
            500,
        );
    }

    #[test]
    fn converges_under_adaptive_budget() {
        testing::assert_index_converges(
            |column| {
                let model = CostModel::new(CostConstants::synthetic(), column.len());
                let policy = BudgetPolicy::adaptive_scan_fraction(&model, 0.2);
                Box::new(ProgressiveBucketsort::new(column, policy))
            },
            30_000,
            3_000_000,
        );
    }

    #[test]
    fn single_value_column_converges() {
        let column = Arc::new(Column::from_vec(vec![5; 8_000]));
        let mut idx = ProgressiveBucketsort::new(column, BudgetPolicy::FixedDelta(0.5));
        for _ in 0..60 {
            let r = idx.query(5, 5);
            assert_eq!(r.count, 8_000);
            if idx.is_converged() {
                break;
            }
        }
        assert!(idx.is_converged());
    }

    #[test]
    fn empty_column_starts_converged() {
        let column = Arc::new(Column::from_vec(vec![]));
        let idx = ProgressiveBucketsort::new(column, BudgetPolicy::FixedDelta(0.5));
        assert!(idx.is_converged());
    }

    #[test]
    fn phase_progression_is_monotone() {
        let column = Arc::new(testing::random_column(25_000, 250_000, 17));
        let reference = testing::ReferenceIndex::new(&column);
        let mut idx =
            ProgressiveBucketsort::new(Arc::clone(&column), BudgetPolicy::FixedDelta(0.3));
        let mut last = Phase::Creation;
        for i in 0..400u64 {
            let low = (i * 613) % 250_000;
            let high = (low + 10_000).min(249_999);
            let r = idx.query(low, high);
            assert_eq!(r.scan_result(), reference.query(low, high), "query {i}");
            let phase = idx.status().phase;
            assert!(phase >= last);
            last = phase;
            if idx.is_converged() {
                break;
            }
        }
        assert!(idx.is_converged());
    }
}
