//! # pi-core — Progressive Indexing
//!
//! A Rust implementation of **Progressive Indexes** (Holanda, Raasveldt,
//! Manegold, Mühleisen — PVLDB 12(13), 2019): incremental indexes that are
//! built as a side effect of query processing, with a *controllable,
//! per-query indexing budget*, *robust and predictable* query performance
//! and *deterministic convergence* towards a full B+-tree index —
//! independent of workload pattern and data distribution.
//!
//! ## The four algorithms
//!
//! | Algorithm | Module | Best suited for |
//! |---|---|---|
//! | Progressive Quicksort | [`quicksort`] | general-purpose, lowest memory overhead |
//! | Progressive Radixsort (MSD) | [`radix_msd`] | range queries over roughly uniform data |
//! | Progressive Bucketsort (Equi-Height) | [`bucketsort`] | range queries over skewed data |
//! | Progressive Radixsort (LSD) | [`radix_lsd`] | point-query dominated workloads |
//!
//! [`decision::recommend`] encodes the paper's decision tree (Figure 11)
//! for choosing among them.
//!
//! ## Lifecycle
//!
//! Every algorithm moves through the same three phases — **creation**
//! (absorb the base column), **refinement** (reorganise towards a sorted
//! array) and **consolidation** (build a B+-tree on top) — before reaching
//! the **converged** state. See [`result::Phase`].
//!
//! ## Budgets
//!
//! How much indexing work a query performs is governed by a
//! [`budget::BudgetPolicy`]: a raw fixed δ, a fixed time budget translated
//! into δ once, or an adaptive time budget re-translated before every
//! query using the algorithm's [`cost_model`].
//!
//! ## Mutations
//!
//! The paper assumes an append-only column; [`mutation::MutableIndex`]
//! removes that limitation for all four algorithms at once. Inserts,
//! deletes and updates accumulate in a pending-delta sidecar
//! ([`pi_storage::delta::DeltaSidecar`]) while the inner index keeps
//! refining its immutable snapshot; queries compose the two and stay exact
//! at every refinement stage, and the sidecar is folded back in by an
//! incremental, budget-driven merge that restarts the lifecycle on a fresh
//! snapshot. See the [`mutation`] module docs.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use pi_core::prelude::*;
//! use pi_storage::Column;
//!
//! // A column of one hundred thousand pseudo-random values.
//! let column = Arc::new(pi_core::testing::random_column(100_000, 1_000_000, 42));
//!
//! // Spend 25% of the total indexing work per query.
//! let mut index = ProgressiveQuicksort::new(Arc::clone(&column), BudgetPolicy::FixedDelta(0.25));
//!
//! let first = index.query(10_000, 20_000);
//! assert!(!index.is_converged());
//!
//! // Keep querying: the index converges and the answers never change.
//! let mut last = first.scan_result();
//! while !index.is_converged() {
//!     last = index.query(10_000, 20_000).scan_result();
//! }
//! assert_eq!(last, first.scan_result());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buckets;
pub mod bucketsort;
pub mod budget;
pub mod cost_model;
pub mod decision;
pub mod index;
pub mod kernels;
pub mod metrics;
pub mod mutation;
pub mod quicksort;
pub mod radix_lsd;
pub mod radix_msd;
pub mod result;
pub mod sorter;
pub mod testing;
pub mod tuning;

pub use bucketsort::ProgressiveBucketsort;
pub use budget::{BudgetController, BudgetPolicy};
pub use cost_model::{CostConstants, CostModel};
pub use decision::{recommend, Algorithm, DataDistribution, QueryShape, Scenario};
pub use index::RangeIndex;
pub use metrics::IndexMetrics;
pub use mutation::{MergeHook, MutableConfig, MutableIndex, Mutation};
pub use quicksort::ProgressiveQuicksort;
pub use radix_lsd::ProgressiveRadixsortLsd;
pub use radix_msd::ProgressiveRadixsortMsd;
pub use result::{IndexStatus, Phase, QueryResult};
pub use tuning::{KernelMode, TuningParameters};

/// Convenient glob-import of the types needed to use the library:
/// `use pi_core::prelude::*;`.
pub mod prelude {
    pub use crate::bucketsort::ProgressiveBucketsort;
    pub use crate::budget::BudgetPolicy;
    pub use crate::cost_model::{CostConstants, CostModel};
    pub use crate::decision::{recommend, Algorithm, DataDistribution, QueryShape, Scenario};
    pub use crate::index::RangeIndex;
    pub use crate::mutation::{MutableConfig, MutableIndex, Mutation};
    pub use crate::quicksort::ProgressiveQuicksort;
    pub use crate::radix_lsd::ProgressiveRadixsortLsd;
    pub use crate::radix_msd::ProgressiveRadixsortMsd;
    pub use crate::result::{IndexStatus, Phase, QueryResult};
    pub use crate::tuning::{KernelMode, TuningParameters};
}
