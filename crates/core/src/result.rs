//! Query results, index phases and status reporting.
//!
//! Every progressive index moves through the three canonical phases of the
//! paper — **creation**, **refinement**, **consolidation** — and finally
//! reaches the **converged** state in which a finished B+-tree answers all
//! queries. [`Phase`] makes that lifecycle explicit, and [`QueryResult`]
//! reports, for every query, both the answer and the bookkeeping the
//! experiment harness needs (the δ that was used, the cost-model
//! prediction, the amount of indexing work performed).

use pi_storage::scan::ScanResult;

/// Lifecycle phase of a progressive index.
///
/// The phases are strictly ordered; an index never moves backwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The base column is being absorbed into the index; queries combine an
    /// index lookup over the already-indexed ρ fraction with a scan of the
    /// remaining `1 - ρ` fraction of the column.
    Creation,
    /// All data lives in the index; the index is being reorganised towards
    /// a fully sorted array.
    Refinement,
    /// The array is fully sorted; a B+-tree is being built on top of it.
    Consolidation,
    /// The B+-tree is complete; no further indexing work is performed.
    Converged,
}

impl Phase {
    /// Short human-readable label used by the experiment harness output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Creation => "creation",
            Phase::Refinement => "refinement",
            Phase::Consolidation => "consolidation",
            Phase::Converged => "converged",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Result of a single range query executed against a
/// [`RangeIndex`](crate::index::RangeIndex), together with per-query
/// instrumentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryResult {
    /// Sum of the qualifying values (`SELECT SUM(a) WHERE a BETWEEN ...`).
    pub sum: u128,
    /// Number of qualifying rows.
    pub count: u64,
    /// Phase the index was in when the query started.
    pub phase: Phase,
    /// The δ (fraction of indexing work) used for this query.
    pub delta: f64,
    /// Cost-model prediction of the query's total execution time in
    /// seconds, when the algorithm provides one (`None` for baselines).
    pub predicted_cost: Option<f64>,
    /// Number of element-level indexing operations performed as a side
    /// effect of this query (copies, swaps, bucket appends, tree copies).
    pub indexing_ops: u64,
    /// Number of elements read to answer the query (index lookups plus
    /// base-column scanning). Used to derive α in cost-model validation.
    pub elements_scanned: u64,
}

impl QueryResult {
    /// Creates a result carrying only the answer, with all instrumentation
    /// fields zeroed. Used by the non-progressive baselines.
    pub fn answer_only(scan: ScanResult, phase: Phase) -> Self {
        QueryResult {
            sum: scan.sum,
            count: scan.count,
            phase,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: 0,
            elements_scanned: 0,
        }
    }

    /// The aggregate as a [`ScanResult`], convenient for comparisons with
    /// the scan-based reference answer in tests.
    pub fn scan_result(&self) -> ScanResult {
        ScanResult {
            sum: self.sum,
            count: self.count,
        }
    }
}

/// Progress snapshot of an index, as reported by
/// [`crate::index::RangeIndex::status`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexStatus {
    /// Current phase.
    pub phase: Phase,
    /// Fraction ρ of the base column already absorbed by the index
    /// (reaches `1.0` at the end of the creation phase and stays there).
    pub fraction_indexed: f64,
    /// Fraction of the *current phase's* total work already performed,
    /// in `[0, 1]`.
    pub phase_progress: f64,
    /// `true` once the index is fully converged (B+-tree complete).
    pub converged: bool,
}

impl IndexStatus {
    /// Status constant for a fully converged index.
    pub fn converged() -> Self {
        IndexStatus {
            phase: Phase::Converged,
            fraction_indexed: 1.0,
            phase_progress: 1.0,
            converged: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_ordered() {
        assert!(Phase::Creation < Phase::Refinement);
        assert!(Phase::Refinement < Phase::Consolidation);
        assert!(Phase::Consolidation < Phase::Converged);
    }

    #[test]
    fn phase_labels() {
        assert_eq!(Phase::Creation.label(), "creation");
        assert_eq!(Phase::Converged.to_string(), "converged");
    }

    #[test]
    fn answer_only_result_zeroes_instrumentation() {
        let r = QueryResult::answer_only(ScanResult { sum: 10, count: 2 }, Phase::Converged);
        assert_eq!(r.sum, 10);
        assert_eq!(r.count, 2);
        assert_eq!(r.indexing_ops, 0);
        assert_eq!(r.predicted_cost, None);
        assert_eq!(r.scan_result(), ScanResult { sum: 10, count: 2 });
    }

    #[test]
    fn converged_status() {
        let s = IndexStatus::converged();
        assert!(s.converged);
        assert_eq!(s.phase, Phase::Converged);
        assert_eq!(s.fraction_indexed, 1.0);
    }
}
