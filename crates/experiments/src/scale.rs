//! Experiment scale configuration and small shared helpers.
//!
//! The paper's experiments run on 10^8–10^9 element columns and up to
//! 160,000 queries. The reproduction keeps every experiment shape intact
//! but makes the scale a parameter so the default invocation finishes in
//! seconds on a laptop; passing `--n` / `--queries` scales any experiment
//! binary up towards the paper's setting.

use std::sync::Arc;
use std::time::Instant;

use pi_storage::{scan, Column};

/// Column size and query count of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of elements in the data column.
    pub column_size: usize,
    /// Number of queries in the workload.
    pub query_count: usize,
}

impl Scale {
    /// A laptop-friendly default used when the caller does not override
    /// anything: 10^6 elements, 10^3 queries.
    pub const DEFAULT: Scale = Scale {
        column_size: 1_000_000,
        query_count: 1_000,
    };

    /// A tiny scale for unit tests and doc examples.
    pub const TINY: Scale = Scale {
        column_size: 20_000,
        query_count: 100,
    };

    /// Parses `--n <elements>` and `--queries <count>` from an argument
    /// iterator (unknown arguments are ignored so binaries can add their
    /// own flags). Falls back to `default` for anything not specified.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I, default: Scale) -> Scale {
        let args: Vec<String> = args.into_iter().collect();
        let mut scale = default;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--n" | "--elements" => {
                    if let Some(v) = args
                        .get(i + 1)
                        .and_then(|s| s.replace('_', "").parse().ok())
                    {
                        scale.column_size = v;
                        i += 1;
                    }
                }
                "--queries" | "--q" => {
                    if let Some(v) = args
                        .get(i + 1)
                        .and_then(|s| s.replace('_', "").parse().ok())
                    {
                        scale.query_count = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }

    /// Parses the current process arguments (skipping the program name).
    pub fn from_env(default: Scale) -> Scale {
        Self::from_args(std::env::args().skip(1), default)
    }
}

/// Measures the wall-clock cost of one predicated full scan of `column`,
/// averaged over `repeats` runs. This anchors the pay-off metric and the
/// "1.2× scan" budget used throughout the evaluation.
pub fn measure_scan_seconds(column: &Arc<Column>, repeats: usize) -> f64 {
    let repeats = repeats.max(1);
    let (min, max) = column.domain().unwrap_or((0, 1));
    let mut total = 0.0;
    for _ in 0..repeats {
        let start = Instant::now();
        let result = scan::scan_range_sum(column.data(), min, max / 2 + min / 2);
        total += start.elapsed().as_secs_f64();
        std::hint::black_box(result);
    }
    total / repeats as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::random_column;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_overrides_and_ignores_unknown_flags() {
        let s = Scale::from_args(
            args(&["--verbose", "--n", "5000", "--queries", "42", "--x"]),
            Scale::DEFAULT,
        );
        assert_eq!(s.column_size, 5_000);
        assert_eq!(s.query_count, 42);
    }

    #[test]
    fn keeps_defaults_when_not_overridden() {
        let s = Scale::from_args(args(&[]), Scale::TINY);
        assert_eq!(s, Scale::TINY);
    }

    #[test]
    fn accepts_underscore_separators() {
        let s = Scale::from_args(args(&["--n", "1_000_000"]), Scale::TINY);
        assert_eq!(s.column_size, 1_000_000);
    }

    #[test]
    fn malformed_values_are_ignored() {
        let s = Scale::from_args(args(&["--n", "soon"]), Scale::TINY);
        assert_eq!(s.column_size, Scale::TINY.column_size);
    }

    #[test]
    fn scan_measurement_is_positive() {
        let column = Arc::new(random_column(100_000, 100_000, 1));
        let t = measure_scan_seconds(&column, 3);
        assert!(t > 0.0);
        assert!(t < 1.0, "scanning 100k elements should be far below 1s");
    }
}
