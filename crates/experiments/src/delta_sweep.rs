//! Figure 7: impact of the δ parameter on the four progressive indexing
//! algorithms.
//!
//! The experiment runs the SkyServer workload for a range of fixed δ
//! values and reports, per algorithm and δ: the first-query time (Fig 7a),
//! the pay-off query (Fig 7b), the convergence query (Fig 7c) and the
//! cumulative workload time (Fig 7d).

use pi_core::budget::BudgetPolicy;
use pi_core::cost_model::CostConstants;

use crate::metrics::Metrics;
use crate::registry::AlgorithmId;
use crate::report::{fmt_seconds, Table};
use crate::runner::run_workload;
use crate::scale::{measure_scan_seconds, Scale};
use crate::setup::Workload;

/// The δ values swept by default. The paper sweeps `[0.005, 1]` on a log
/// scale; this grid keeps the same span with fewer points so the default
/// run stays fast.
pub const DEFAULT_DELTAS: [f64; 7] = [0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0];

/// One point of the δ sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaSweepRow {
    /// Progressive algorithm being measured.
    pub algorithm: AlgorithmId,
    /// The fixed δ used for every query of the workload.
    pub delta: f64,
    /// Summary metrics of the run.
    pub metrics: Metrics,
}

/// Runs the δ sweep for all four progressive algorithms over the SkyServer
/// workload at `scale`.
pub fn run(scale: Scale, deltas: &[f64]) -> Vec<DeltaSweepRow> {
    let workload = Workload::skyserver(scale);
    let constants = CostConstants::calibrate();
    let scan_seconds = measure_scan_seconds(&workload.column, 3);
    let mut rows = Vec::new();
    for &delta in deltas {
        for algorithm in AlgorithmId::PROGRESSIVE {
            let mut index = algorithm.build(
                workload.column.clone(),
                BudgetPolicy::FixedDelta(delta),
                constants,
            );
            let run = run_workload(index.as_mut(), &workload.queries);
            rows.push(DeltaSweepRow {
                algorithm,
                delta,
                metrics: Metrics::from_run(&run, scan_seconds),
            });
        }
    }
    rows
}

/// Renders the sweep as one table with a row per (algorithm, δ) pair.
pub fn to_table(rows: &[DeltaSweepRow]) -> Table {
    let mut table = Table::new([
        "algorithm",
        "delta",
        "first_query_s",
        "payoff_query",
        "convergence_query",
        "cumulative_s",
    ]);
    for row in rows {
        table.push_row([
            row.algorithm.label().to_string(),
            format!("{}", row.delta),
            fmt_seconds(row.metrics.first_query_seconds),
            row.metrics.payoff_label(),
            row.metrics.convergence_label(),
            fmt_seconds(row.metrics.cumulative_seconds),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_algorithm_and_delta() {
        let rows = run(Scale::TINY, &[0.25, 1.0]);
        assert_eq!(rows.len(), 2 * AlgorithmId::PROGRESSIVE.len());
        let table = to_table(&rows);
        assert_eq!(table.row_count(), rows.len());
    }

    #[test]
    fn higher_delta_converges_no_later() {
        let rows = run(Scale::TINY, &[0.05, 1.0]);
        for algorithm in AlgorithmId::PROGRESSIVE {
            let small: Vec<_> = rows
                .iter()
                .filter(|r| r.algorithm == algorithm && r.delta == 0.05)
                .collect();
            let large: Vec<_> = rows
                .iter()
                .filter(|r| r.algorithm == algorithm && r.delta == 1.0)
                .collect();
            let small_conv = small[0].metrics.convergence_query.unwrap_or(usize::MAX);
            let large_conv = large[0].metrics.convergence_query.unwrap_or(usize::MAX);
            assert!(
                large_conv <= small_conv,
                "{algorithm}: δ=1.0 converged at {large_conv}, δ=0.05 at {small_conv}"
            );
        }
    }
}
