//! Table 2 and Figure 10: the full SkyServer comparison of baselines,
//! adaptive indexing and progressive indexing.
//!
//! Table 2 reports, per technique: first-query time, convergence query,
//! robustness (variance of the first 100 query times) and cumulative
//! workload time. Figure 10 plots the per-query time series of
//! Progressive Quicksort against the best adaptive techniques (Adaptive
//! Adaptive Indexing and Progressive Stochastic Cracking 10%).

use pi_core::cost_model::CostConstants;

use crate::metrics::Metrics;
use crate::registry::AlgorithmId;
use crate::report::{fmt_seconds, fmt_variance, Table};
use crate::runner::{run_workload, WorkloadRun};
use crate::scale::{measure_scan_seconds, Scale};
use crate::setup::Workload;

/// Result of the comparison: per-algorithm metrics plus the raw runs
/// needed for the Figure 10 time series.
#[derive(Debug, Clone)]
pub struct SkyServerComparison {
    /// Measured cost of one full column scan (anchors pay-off and the
    /// "1.2× scan" line of Figure 10).
    pub scan_seconds: f64,
    /// Metrics per algorithm, in [`AlgorithmId::ALL`] order (restricted to
    /// the algorithms that were run).
    pub results: Vec<(AlgorithmId, Metrics)>,
    /// Full per-query runs, for time-series output.
    pub runs: Vec<(AlgorithmId, WorkloadRun)>,
}

/// Runs the SkyServer workload over `algorithms` at `scale`.
pub fn run(scale: Scale, algorithms: &[AlgorithmId]) -> SkyServerComparison {
    let workload = Workload::skyserver(scale);
    let constants = CostConstants::calibrate();
    let scan_seconds = measure_scan_seconds(&workload.column, 3);
    let mut results = Vec::new();
    let mut runs = Vec::new();
    for &algorithm in algorithms {
        let mut index = algorithm.build_with_default_budget(workload.column.clone(), constants);
        let run = run_workload(index.as_mut(), &workload.queries);
        results.push((algorithm, Metrics::from_run(&run, scan_seconds)));
        runs.push((algorithm, run));
    }
    SkyServerComparison {
        scan_seconds,
        results,
        runs,
    }
}

/// Runs the full Table 2 algorithm set.
pub fn run_all(scale: Scale) -> SkyServerComparison {
    run(scale, &AlgorithmId::ALL)
}

/// Renders Table 2.
pub fn table2(comparison: &SkyServerComparison) -> Table {
    let mut table = Table::new([
        "index",
        "first_query_s",
        "convergence_query",
        "robustness_var",
        "cumulative_s",
    ]);
    for (algorithm, metrics) in &comparison.results {
        table.push_row([
            algorithm.label().to_string(),
            fmt_seconds(metrics.first_query_seconds),
            metrics.convergence_label(),
            fmt_variance(metrics.robustness_variance),
            fmt_seconds(metrics.cumulative_seconds),
        ]);
    }
    table
}

/// Renders the Figure 10 per-query time series
/// (`algorithm,query,seconds`) for the selected algorithms.
pub fn figure10_series(comparison: &SkyServerComparison, algorithms: &[AlgorithmId]) -> Table {
    let mut table = Table::new(["algorithm", "query", "seconds"]);
    for (algorithm, run) in &comparison.runs {
        if !algorithms.contains(algorithm) {
            continue;
        }
        for record in &run.records {
            table.push_row([
                algorithm.label().to_string(),
                (record.query_number + 1).to_string(),
                format!("{:.3e}", record.seconds),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_comparison() -> SkyServerComparison {
        run(
            Scale::TINY,
            &[
                AlgorithmId::FullScan,
                AlgorithmId::FullIndex,
                AlgorithmId::StandardCracking,
                AlgorithmId::AdaptiveAdaptive,
                AlgorithmId::ProgressiveQuicksort,
                AlgorithmId::ProgressiveRadixsortMsd,
            ],
        )
    }

    #[test]
    fn comparison_produces_metrics_for_every_algorithm() {
        let c = quick_comparison();
        assert_eq!(c.results.len(), 6);
        assert!(c.scan_seconds > 0.0);
        let t = table2(&c);
        assert_eq!(t.row_count(), 6);
    }

    #[test]
    fn full_index_converges_first_and_full_scan_never() {
        let c = quick_comparison();
        let find = |id: AlgorithmId| c.results.iter().find(|(a, _)| *a == id).unwrap().1;
        assert_eq!(find(AlgorithmId::FullIndex).convergence_query, Some(1));
        assert_eq!(find(AlgorithmId::FullScan).convergence_query, None);
        // The progressive techniques converge on this small workload.
        assert!(find(AlgorithmId::ProgressiveQuicksort)
            .convergence_query
            .is_some());
    }

    #[test]
    fn figure10_series_contains_only_requested_algorithms() {
        let c = quick_comparison();
        let series = figure10_series(
            &c,
            &[
                AlgorithmId::ProgressiveQuicksort,
                AlgorithmId::AdaptiveAdaptive,
            ],
        );
        assert_eq!(series.row_count(), 2 * Scale::TINY.query_count);
    }
}
