//! The workload runner: executes a query sequence against an index and
//! records per-query measurements.

use std::time::Instant;

use pi_core::result::Phase;
use pi_core::RangeIndex;
use pi_workloads::RangeQuery;

/// Measurement of a single query execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// 0-based query number within the workload.
    pub query_number: usize,
    /// Wall-clock execution time in seconds (query answering plus the
    /// indexing work performed as a side effect).
    pub seconds: f64,
    /// Aggregate returned by the query (for correctness cross-checks).
    pub sum: u128,
    /// Number of qualifying rows.
    pub count: u64,
    /// Phase the index was in when the query started.
    pub phase: Phase,
    /// δ used by this query (0 for baselines).
    pub delta: f64,
    /// Cost-model prediction for this query, when the algorithm has one.
    pub predicted_seconds: Option<f64>,
    /// Indexing operations (copies/swaps/appends) done by this query.
    pub indexing_ops: u64,
    /// Elements read to answer this query.
    pub elements_scanned: u64,
}

/// A complete workload execution over one index.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// The `RangeIndex::name()` of the index that was measured.
    pub index_name: String,
    /// Per-query measurements, in execution order.
    pub records: Vec<QueryRecord>,
    /// Query number (0-based) at which the index first reported
    /// convergence, if it ever did.
    pub converged_at: Option<usize>,
}

impl WorkloadRun {
    /// Total wall-clock time of the workload in seconds.
    pub fn cumulative_seconds(&self) -> f64 {
        self.records.iter().map(|r| r.seconds).sum()
    }

    /// Wall-clock time of the first query in seconds (0 for an empty
    /// workload).
    pub fn first_query_seconds(&self) -> f64 {
        self.records.first().map(|r| r.seconds).unwrap_or(0.0)
    }

    /// Per-query times in seconds.
    pub fn times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.seconds).collect()
    }

    /// Number of queries executed.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no queries were executed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Runs `queries` against `index`, measuring each query.
pub fn run_workload(index: &mut dyn RangeIndex, queries: &[RangeQuery]) -> WorkloadRun {
    let mut records = Vec::with_capacity(queries.len());
    let mut converged_at = None;
    for (query_number, q) in queries.iter().enumerate() {
        let start = Instant::now();
        let result = index.query(q.low, q.high);
        let seconds = start.elapsed().as_secs_f64();
        records.push(QueryRecord {
            query_number,
            seconds,
            sum: result.sum,
            count: result.count,
            phase: result.phase,
            delta: result.delta,
            predicted_seconds: result.predicted_cost,
            indexing_ops: result.indexing_ops,
            elements_scanned: result.elements_scanned,
        });
        if converged_at.is_none() && index.is_converged() {
            converged_at = Some(query_number);
        }
    }
    WorkloadRun {
        index_name: index.name().to_string(),
        records,
        converged_at,
    }
}

/// Runs `queries` against `index` while verifying every answer against a
/// reference oracle; panics on the first mismatch. Used by integration
/// tests and by experiments run with verification enabled.
pub fn run_workload_verified(
    index: &mut dyn RangeIndex,
    queries: &[RangeQuery],
    reference: &pi_core::testing::ReferenceIndex,
) -> WorkloadRun {
    let run = run_workload(index, queries);
    for (record, query) in run.records.iter().zip(queries) {
        let expected = reference.query(query.low, query.high);
        assert_eq!(
            (record.sum, record.count),
            (expected.sum, expected.count),
            "{}: wrong answer for query #{} [{}, {}]",
            run.index_name,
            record.query_number,
            query.low,
            query.high
        );
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::budget::BudgetPolicy;
    use pi_core::testing::{random_column, ReferenceIndex};
    use pi_core::ProgressiveQuicksort;
    use std::sync::Arc;

    fn small_workload() -> Vec<RangeQuery> {
        (0..50)
            .map(|i| RangeQuery::new(i * 100, i * 100 + 500))
            .collect()
    }

    #[test]
    fn runner_records_every_query() {
        let column = Arc::new(random_column(10_000, 10_000, 5));
        let mut index =
            ProgressiveQuicksort::new(Arc::clone(&column), BudgetPolicy::FixedDelta(0.25));
        let queries = small_workload();
        let run = run_workload(&mut index, &queries);
        assert_eq!(run.len(), queries.len());
        assert_eq!(run.index_name, "progressive-quicksort");
        assert!(run.records.iter().all(|r| r.seconds >= 0.0));
        assert!(run.cumulative_seconds() >= run.first_query_seconds());
        // δ = 0.25 converges in a handful of queries on a small column.
        assert!(run.converged_at.is_some());
    }

    #[test]
    fn verified_runner_accepts_correct_index() {
        let column = Arc::new(random_column(5_000, 5_000, 6));
        let reference = ReferenceIndex::new(&column);
        let mut index =
            ProgressiveQuicksort::new(Arc::clone(&column), BudgetPolicy::FixedDelta(0.5));
        let queries = small_workload();
        let run = run_workload_verified(&mut index, &queries, &reference);
        assert_eq!(run.len(), queries.len());
    }

    #[test]
    fn empty_workload_produces_empty_run() {
        let column = Arc::new(random_column(100, 100, 7));
        let mut index = ProgressiveQuicksort::new(column, BudgetPolicy::FixedDelta(0.5));
        let run = run_workload(&mut index, &[]);
        assert!(run.is_empty());
        assert_eq!(run.cumulative_seconds(), 0.0);
        assert_eq!(run.first_query_seconds(), 0.0);
        assert_eq!(run.converged_at, None);
    }
}
