//! Shared experiment setup: building the columns and query logs each
//! experiment runs over, at a configurable scale.

use std::sync::Arc;

use pi_storage::Column;
use pi_workloads::skyserver::{self, SkyServerConfig};
use pi_workloads::{data, patterns, Distribution, Pattern, RangeQuery, WorkloadSpec};

use crate::scale::Scale;

/// A column plus the query log to run over it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name (used in experiment output).
    pub name: String,
    /// The data column.
    pub column: Arc<Column>,
    /// The query sequence.
    pub queries: Vec<RangeQuery>,
}

impl Workload {
    /// The SkyServer-substitute workload (Figure 5) at the given scale.
    pub fn skyserver(scale: Scale) -> Self {
        let generated = skyserver::generate(SkyServerConfig::scaled(
            scale.column_size,
            scale.query_count,
        ));
        Workload {
            name: "skyserver".to_string(),
            column: Arc::new(Column::from_vec(generated.data)),
            queries: generated.queries,
        }
    }

    /// A synthetic workload: `distribution` data, `pattern` queries, 10%
    /// selectivity range queries (or point queries).
    pub fn synthetic(
        distribution: Distribution,
        pattern: Pattern,
        scale: Scale,
        point_queries: bool,
    ) -> Self {
        let values = data::generate(distribution, scale.column_size, 0xDA7A);
        let domain = scale.column_size as u64;
        let spec = if point_queries {
            WorkloadSpec::point(domain, scale.query_count)
        } else {
            WorkloadSpec::range(domain, scale.query_count)
        };
        let queries = patterns::generate(pattern, &spec);
        Workload {
            name: format!(
                "{}-{}{}",
                distribution.label(),
                pattern.label(),
                if point_queries { "-point" } else { "" }
            ),
            column: Arc::new(Column::from_vec(values)),
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skyserver_workload_has_requested_scale() {
        let w = Workload::skyserver(Scale::TINY);
        assert_eq!(w.column.len(), Scale::TINY.column_size);
        assert_eq!(w.queries.len(), Scale::TINY.query_count);
        assert_eq!(w.name, "skyserver");
    }

    #[test]
    fn synthetic_workload_covers_all_pattern_distribution_combinations() {
        for distribution in [Distribution::UniformRandom, Distribution::Skewed] {
            for pattern in Pattern::ALL {
                let w = Workload::synthetic(distribution, pattern, Scale::TINY, false);
                assert_eq!(w.column.len(), Scale::TINY.column_size);
                assert_eq!(w.queries.len(), Scale::TINY.query_count);
                let domain = Scale::TINY.column_size as u64;
                assert!(w.queries.iter().all(|q| q.high < domain));
            }
        }
    }

    #[test]
    fn point_workloads_generate_point_queries() {
        let w = Workload::synthetic(
            Distribution::UniformRandom,
            Pattern::Random,
            Scale::TINY,
            true,
        );
        assert!(w.queries.iter().all(RangeQuery::is_point));
        assert!(w.name.ends_with("-point"));
    }
}
