//! Table 5: robustness (variance of the first 100 query times) over the
//! synthetic workload grid (uniform / skewed / point-query / large blocks
//! × workload patterns × {PQ, PB, PLSD, PMSD, AA}).

use pi_experiments::synthetic_grid::{self, Block, GridMetric};
use pi_experiments::Scale;

fn main() {
    let scale = Scale::from_env(Scale {
        column_size: 1_000_000,
        query_count: 200,
    });
    eprintln!("# running synthetic grid (this runs 4 blocks × patterns × 5 algorithms) ...");
    let cells = synthetic_grid::run(scale, &Block::ALL);
    let table = synthetic_grid::to_table(&cells, GridMetric::Robustness);
    println!("# Table 5 — robustness (variance of the first 100 query times)");
    print!("{}", table.to_aligned_string());
    println!();
    println!("# CSV");
    print!("{}", table.to_csv());
}
