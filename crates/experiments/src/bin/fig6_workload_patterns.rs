//! Figure 6: the eight synthetic workload patterns.
//!
//! Emits, for every pattern, the query ranges over the workload as CSV so
//! the pattern shapes can be plotted and visually compared with the
//! paper's figure.

use pi_experiments::report::Table;
use pi_experiments::Scale;
use pi_workloads::patterns::{self, Pattern, WorkloadSpec};

fn main() {
    let scale = Scale::from_env(Scale {
        column_size: 1_000_000,
        query_count: 200,
    });
    let spec = WorkloadSpec::range(scale.column_size as u64, scale.query_count);

    let mut table = Table::new(["pattern", "query", "low", "high"]);
    for pattern in Pattern::ALL {
        for (i, q) in patterns::generate(pattern, &spec).iter().enumerate() {
            table.push_row([
                pattern.label().to_string(),
                (i + 1).to_string(),
                q.low.to_string(),
                q.high.to_string(),
            ]);
        }
    }
    println!(
        "# Figure 6 — synthetic workload patterns (domain [0, {}), {} queries each, 10% selectivity)",
        scale.column_size, scale.query_count
    );
    print!("{}", table.to_csv());
}
