//! Figure 5: the SkyServer-substitute data distribution (5a) and query
//! pattern over time (5b).
//!
//! Prints a histogram of the generated column (20 equal-width bins over
//! the domain) and the per-query range positions, both as CSV.

use pi_experiments::report::Table;
use pi_experiments::{Scale, Workload};

fn main() {
    let scale = Scale::from_env(Scale::DEFAULT);
    let workload = Workload::skyserver(scale);

    // Figure 5a: value histogram.
    let bins = 20usize;
    let domain = workload.column.max().max(1) + 1;
    let mut histogram = vec![0u64; bins];
    for v in workload.column.iter() {
        let b = (v as u128 * bins as u128 / domain as u128) as usize;
        histogram[b.min(bins - 1)] += 1;
    }
    let mut hist_table = Table::new(["bin", "bin_low", "bin_high", "count"]);
    for (i, &count) in histogram.iter().enumerate() {
        let low = domain as u128 * i as u128 / bins as u128;
        let high = domain as u128 * (i + 1) as u128 / bins as u128;
        hist_table.push_row([
            i.to_string(),
            low.to_string(),
            high.to_string(),
            count.to_string(),
        ]);
    }

    // Figure 5b: query ranges over the workload.
    let mut query_table = Table::new(["query", "low", "high"]);
    for (i, q) in workload.queries.iter().enumerate() {
        query_table.push_row([(i + 1).to_string(), q.low.to_string(), q.high.to_string()]);
    }

    println!("# Figure 5a — SkyServer-substitute data distribution");
    println!(
        "# column size: {}, domain: [0, {domain})",
        workload.column.len()
    );
    print!("{}", hist_table.to_aligned_string());
    println!();
    println!("# Figure 5a CSV");
    print!("{}", hist_table.to_csv());
    println!();
    println!(
        "# Figure 5b CSV — query ranges over time ({} queries)",
        workload.queries.len()
    );
    print!("{}", query_table.to_csv());
}
