//! Figure 9: measured vs cost-model-predicted per-query time with the
//! adaptive indexing budget (t_budget = 0.2 · t_scan) over the SkyServer
//! workload.

use pi_experiments::cost_model_validation::{self, BudgetMode};
use pi_experiments::Scale;

fn main() {
    let scale = Scale::from_env(Scale::DEFAULT);
    let series = cost_model_validation::run(scale, BudgetMode::Adaptive);
    println!(
        "# Figure 9 — cost-model validation, adaptive budget = 0.2 · t_scan (SkyServer workload)"
    );
    print!(
        "{}",
        cost_model_validation::summary_table(&series).to_aligned_string()
    );
    println!();
    println!("# per-query CSV (measured vs predicted)");
    print!("{}", cost_model_validation::series_table(&series).to_csv());
}
