//! Figure 7: impact of δ on first-query time (7a), pay-off (7b),
//! convergence (7c) and cumulative time (7d) for the four progressive
//! indexing algorithms, over the SkyServer workload.

use pi_experiments::delta_sweep::{self, DEFAULT_DELTAS};
use pi_experiments::Scale;

fn main() {
    let scale = Scale::from_env(Scale::DEFAULT);
    eprintln!(
        "# running δ sweep over {} deltas, n = {}, {} queries ...",
        DEFAULT_DELTAS.len(),
        scale.column_size,
        scale.query_count
    );
    let rows = delta_sweep::run(scale, &DEFAULT_DELTAS);
    let table = delta_sweep::to_table(&rows);
    println!("# Figure 7 — impact of δ (SkyServer workload)");
    print!("{}", table.to_aligned_string());
    println!();
    println!("# CSV");
    print!("{}", table.to_csv());
}
