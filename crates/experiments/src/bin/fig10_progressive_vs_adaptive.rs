//! Figure 10: per-query execution time of Progressive Quicksort vs the
//! best adaptive indexing techniques (Adaptive Adaptive Indexing and
//! Progressive Stochastic Cracking 10%) over the SkyServer workload.

use pi_experiments::registry::AlgorithmId;
use pi_experiments::report::fmt_seconds;
use pi_experiments::{skyserver_comparison, Scale};

fn main() {
    let scale = Scale::from_env(Scale::DEFAULT);
    let algorithms = [
        AlgorithmId::ProgressiveQuicksort,
        AlgorithmId::AdaptiveAdaptive,
        AlgorithmId::ProgressiveStochasticCracking,
    ];
    let comparison = skyserver_comparison::run(scale, &algorithms);
    println!("# Figure 10 — per-query time: PQ vs AA vs PSTC 10% (SkyServer workload)");
    println!(
        "# 1.2x scan reference: {} s",
        fmt_seconds(1.2 * comparison.scan_seconds)
    );
    print!(
        "{}",
        skyserver_comparison::table2(&comparison).to_aligned_string()
    );
    println!();
    println!("# per-query CSV");
    print!(
        "{}",
        skyserver_comparison::figure10_series(&comparison, &algorithms).to_csv()
    );
}
