//! Figure 11: the decision tree recommending a progressive indexing
//! technique per scenario (query shape × data distribution × memory
//! constraint).

use pi_core::decision::{full_decision_table, DataDistribution, QueryShape};
use pi_experiments::report::Table;

fn main() {
    let mut table = Table::new([
        "query_shape",
        "distribution",
        "extra_memory",
        "recommendation",
    ]);
    for (scenario, algorithm) in full_decision_table() {
        let shape = match scenario.query_shape {
            QueryShape::Point => "point",
            QueryShape::Range => "range",
            QueryShape::Unknown => "unknown",
        };
        let distribution = match scenario.distribution {
            DataDistribution::Uniform => "uniform",
            DataDistribution::Skewed => "skewed",
            DataDistribution::Unknown => "unknown",
        };
        table.push_row([
            shape.to_string(),
            distribution.to_string(),
            scenario.extra_memory_allowed.to_string(),
            algorithm.name().to_string(),
        ]);
    }
    println!("# Figure 11 — progressive indexing decision tree");
    print!("{}", table.to_aligned_string());
    println!();
    println!("# CSV");
    print!("{}", table.to_csv());
}
