//! Table 2: the full SkyServer comparison — first-query time,
//! convergence, robustness and cumulative time for every baseline,
//! adaptive indexing technique and progressive indexing technique.

use pi_experiments::report::fmt_seconds;
use pi_experiments::{skyserver_comparison, Scale};

fn main() {
    let scale = Scale::from_env(Scale::DEFAULT);
    eprintln!(
        "# running Table 2 over n = {}, {} queries (11 algorithms) ...",
        scale.column_size, scale.query_count
    );
    let comparison = skyserver_comparison::run_all(scale);
    let table = skyserver_comparison::table2(&comparison);
    println!("# Table 2 — SkyServer results");
    println!(
        "# measured full-scan cost: {} s per query",
        fmt_seconds(comparison.scan_seconds)
    );
    print!("{}", table.to_aligned_string());
    println!();
    println!("# CSV");
    print!("{}", table.to_csv());
}
