//! Figure 8: measured vs cost-model-predicted per-query time with a fixed
//! indexing budget (δ = 0.25) over the SkyServer workload.

use pi_experiments::cost_model_validation::{self, BudgetMode};
use pi_experiments::Scale;

fn main() {
    let scale = Scale::from_env(Scale::DEFAULT);
    let series = cost_model_validation::run(scale, BudgetMode::FixedDelta);
    println!("# Figure 8 — cost-model validation, fixed δ = 0.25 (SkyServer workload)");
    print!(
        "{}",
        cost_model_validation::summary_table(&series).to_aligned_string()
    );
    println!();
    println!("# per-query CSV (measured vs predicted)");
    print!("{}", cost_model_validation::series_table(&series).to_csv());
}
