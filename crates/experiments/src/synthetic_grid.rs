//! Tables 3, 4 and 5: the synthetic workload grid.
//!
//! The paper evaluates the four progressive algorithms plus adaptive
//! adaptive indexing (the strongest adaptive baseline) over four
//! experiment blocks — uniform random data, skewed data, point queries on
//! uniform data, and a larger uniform column — crossed with the synthetic
//! workload patterns of Figure 6. Three metrics are reported per cell:
//! the first-query cost (Table 3), the cumulative workload time (Table 4)
//! and the robustness variance (Table 5). One grid run produces all
//! three tables.

use pi_core::cost_model::CostConstants;
use pi_workloads::{Distribution, Pattern};

use crate::metrics::Metrics;
use crate::registry::AlgorithmId;
use crate::report::{fmt_seconds, fmt_variance, Table};
use crate::runner::run_workload;
use crate::scale::{measure_scan_seconds, Scale};
use crate::setup::Workload;

/// The four experiment blocks of the synthetic evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Block {
    /// 10% selectivity range queries over uniformly random data.
    UniformRandom,
    /// 10% selectivity range queries over skewed data.
    Skewed,
    /// Point queries over uniformly random data.
    PointQuery,
    /// Range queries over a larger uniformly random column (the paper's
    /// 10^9 block; the reproduction scales it relative to the base size).
    Large,
}

impl Block {
    /// All four blocks in the paper's table order.
    pub const ALL: [Block; 4] = [
        Block::UniformRandom,
        Block::Skewed,
        Block::PointQuery,
        Block::Large,
    ];

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Block::UniformRandom => "uniform-random",
            Block::Skewed => "skewed",
            Block::PointQuery => "point-query",
            Block::Large => "large",
        }
    }

    /// The workload patterns this block runs (the point-query block skips
    /// the zooming patterns, the large block uses the paper's reduced
    /// pattern set).
    pub fn patterns(self) -> &'static [Pattern] {
        match self {
            Block::PointQuery => &Pattern::POINT_QUERY_PATTERNS,
            Block::Large => &[Pattern::SeqOver, Pattern::Skew, Pattern::Random],
            _ => &Pattern::ALL,
        }
    }

    fn distribution(self) -> Distribution {
        match self {
            Block::Skewed => Distribution::Skewed,
            _ => Distribution::UniformRandom,
        }
    }

    fn point_queries(self) -> bool {
        matches!(self, Block::PointQuery)
    }

    fn scale(self, base: Scale) -> Scale {
        match self {
            // The paper's fourth block is 10× the base data size; keep the
            // same ratio at reproduction scale.
            Block::Large => Scale {
                column_size: base.column_size * 10,
                query_count: base.query_count,
            },
            _ => base,
        }
    }
}

impl std::fmt::Display for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The algorithms compared in Tables 3–5.
pub const GRID_ALGORITHMS: [AlgorithmId; 5] = [
    AlgorithmId::ProgressiveQuicksort,
    AlgorithmId::ProgressiveBucketsort,
    AlgorithmId::ProgressiveRadixsortLsd,
    AlgorithmId::ProgressiveRadixsortMsd,
    AlgorithmId::AdaptiveAdaptive,
];

/// One cell of the synthetic grid: a (block, pattern, algorithm) triple
/// and its metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCell {
    /// Experiment block.
    pub block: Block,
    /// Workload pattern.
    pub pattern: Pattern,
    /// Algorithm measured.
    pub algorithm: AlgorithmId,
    /// Metrics of the run.
    pub metrics: Metrics,
}

/// Runs the full grid (all blocks × patterns × algorithms) at `base`
/// scale.
pub fn run(base: Scale, blocks: &[Block]) -> Vec<GridCell> {
    let constants = CostConstants::calibrate();
    let mut cells = Vec::new();
    for &block in blocks {
        let scale = block.scale(base);
        for &pattern in block.patterns() {
            let workload =
                Workload::synthetic(block.distribution(), pattern, scale, block.point_queries());
            let scan_seconds = measure_scan_seconds(&workload.column, 2);
            for algorithm in GRID_ALGORITHMS {
                let mut index =
                    algorithm.build_with_default_budget(workload.column.clone(), constants);
                let run = run_workload(index.as_mut(), &workload.queries);
                cells.push(GridCell {
                    block,
                    pattern,
                    algorithm,
                    metrics: Metrics::from_run(&run, scan_seconds),
                });
            }
        }
    }
    cells
}

/// Which of the three paper tables to render from the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridMetric {
    /// Table 3 — first-query cost in seconds.
    FirstQuery,
    /// Table 4 — cumulative workload time in seconds.
    Cumulative,
    /// Table 5 — robustness (variance of the first 100 query times).
    Robustness,
}

impl GridMetric {
    fn extract(self, metrics: &Metrics) -> String {
        match self {
            GridMetric::FirstQuery => fmt_seconds(metrics.first_query_seconds),
            GridMetric::Cumulative => fmt_seconds(metrics.cumulative_seconds),
            GridMetric::Robustness => fmt_variance(metrics.robustness_variance),
        }
    }
}

/// Renders one of the paper's tables: a row per (block, pattern), a column
/// per algorithm.
pub fn to_table(cells: &[GridCell], metric: GridMetric) -> Table {
    let mut headers = vec!["block".to_string(), "workload".to_string()];
    headers.extend(GRID_ALGORITHMS.iter().map(|a| a.label().to_string()));
    let mut table = Table::new(headers);
    for &block in Block::ALL.iter() {
        for &pattern in block.patterns() {
            let mut row = vec![block.label().to_string(), pattern.label().to_string()];
            let mut any = false;
            for algorithm in GRID_ALGORITHMS {
                let cell = cells
                    .iter()
                    .find(|c| c.block == block && c.pattern == pattern && c.algorithm == algorithm);
                match cell {
                    Some(c) => {
                        row.push(metric.extract(&c.metrics));
                        any = true;
                    }
                    None => row.push(String::new()),
                }
            }
            if any {
                table.push_row(row);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_one_block_end_to_end() {
        let tiny = Scale {
            column_size: 10_000,
            query_count: 30,
        };
        let cells = run(tiny, &[Block::PointQuery]);
        assert_eq!(
            cells.len(),
            Block::PointQuery.patterns().len() * GRID_ALGORITHMS.len()
        );
        for metric in [
            GridMetric::FirstQuery,
            GridMetric::Cumulative,
            GridMetric::Robustness,
        ] {
            let table = to_table(&cells, metric);
            assert_eq!(table.row_count(), Block::PointQuery.patterns().len());
        }
    }

    #[test]
    fn blocks_expose_expected_pattern_sets() {
        assert_eq!(Block::UniformRandom.patterns().len(), 8);
        assert_eq!(Block::PointQuery.patterns().len(), 6);
        assert_eq!(Block::Large.patterns().len(), 3);
        assert!(Block::PointQuery.point_queries());
        assert!(!Block::Skewed.point_queries());
        assert_eq!(Block::Skewed.distribution(), Distribution::Skewed);
        let scaled = Block::Large.scale(Scale::TINY);
        assert_eq!(scaled.column_size, Scale::TINY.column_size * 10);
    }
}
