//! Plain-text and CSV rendering of experiment results.
//!
//! Every experiment binary prints two artefacts: a human-readable aligned
//! table (mirroring the corresponding table or figure of the paper) and a
//! machine-readable CSV block that downstream plotting scripts can consume
//! directly.

/// A simple table: a header row plus data rows of equal width.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics when the row width does not match the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders an aligned, human-readable table.
    pub fn to_aligned_string(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the same content as CSV (comma-separated, no quoting — the
    /// experiment output never contains commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds with a precision appropriate for the
/// value (the paper mixes seconds and sub-millisecond values in one
/// table).
pub fn fmt_seconds(seconds: f64) -> String {
    if seconds == 0.0 {
        "0".to_string()
    } else if seconds >= 0.1 {
        format!("{seconds:.2}")
    } else if seconds >= 1e-4 {
        format!("{seconds:.4}")
    } else {
        format!("{seconds:.2e}")
    }
}

/// Formats a variance the way the paper's robustness tables do
/// (scientific notation below 0.01).
pub fn fmt_variance(variance: f64) -> String {
    if variance == 0.0 {
        "0".to_string()
    } else if variance >= 0.01 {
        format!("{variance:.2}")
    } else {
        format!("{variance:.1e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_table_lines_have_consistent_columns() {
        let mut t = Table::new(["algo", "first", "total"]);
        t.push_row(["PQ", "0.15", "19.0"]);
        t.push_row(["AA", "1.4", "20.7"]);
        let s = t.to_aligned_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("algo"));
        assert!(lines[2].starts_with("PQ"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn csv_round_trips_cells() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_is_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn second_formatting_adapts_precision() {
        assert_eq!(fmt_seconds(0.0), "0");
        assert_eq!(fmt_seconds(1.5), "1.50");
        assert_eq!(fmt_seconds(0.01234), "0.0123");
        assert_eq!(fmt_seconds(3.0e-6), "3.00e-6");
    }

    #[test]
    fn variance_formatting_matches_paper_style() {
        assert_eq!(fmt_variance(0.0), "0");
        assert_eq!(fmt_variance(0.02), "0.02");
        assert_eq!(fmt_variance(2.4e-4), "2.4e-4");
    }
}
