//! Figures 8 and 9: validation of the per-phase cost models.
//!
//! Figure 8 runs the SkyServer workload with a *fixed* δ of 0.25 and plots
//! the measured per-query time against the cost model's prediction for
//! each of the four progressive algorithms. Figure 9 repeats the
//! experiment with the *adaptive* indexing budget (`t_budget = 0.2 ·
//! t_scan`). The reproduction emits the same per-query series plus a
//! summary of the prediction error.

use pi_core::budget::BudgetPolicy;
use pi_core::cost_model::{CostConstants, CostModel};

use crate::metrics::mean;
use crate::registry::AlgorithmId;
use crate::report::{fmt_seconds, Table};
use crate::runner::{run_workload, QueryRecord};
use crate::scale::Scale;
use crate::setup::Workload;

/// Which budget mode the validation runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetMode {
    /// Figure 8: fixed δ = 0.25 for every query.
    FixedDelta,
    /// Figure 9: adaptive budget of `0.2 · t_scan` per query.
    Adaptive,
}

impl BudgetMode {
    /// Label used in output file names and table captions.
    pub fn label(self) -> &'static str {
        match self {
            BudgetMode::FixedDelta => "fixed-delta-0.25",
            BudgetMode::Adaptive => "adaptive-0.2-tscan",
        }
    }
}

/// Per-query measured-vs-predicted series for one algorithm.
#[derive(Debug, Clone)]
pub struct ValidationSeries {
    /// Algorithm being validated.
    pub algorithm: AlgorithmId,
    /// Budget mode of the run.
    pub mode: BudgetMode,
    /// Per-query records (measured time, prediction, phase, δ).
    pub records: Vec<QueryRecord>,
}

impl ValidationSeries {
    /// Mean absolute relative error of the cost-model prediction over the
    /// queries that carried a prediction.
    pub fn mean_relative_error(&self) -> f64 {
        let errors: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| {
                r.predicted_seconds.and_then(|p| {
                    if r.seconds > 0.0 && p > 0.0 {
                        Some(((p - r.seconds) / r.seconds).abs())
                    } else {
                        None
                    }
                })
            })
            .collect();
        mean(&errors)
    }

    /// Fraction of queries that carried a cost-model prediction.
    pub fn prediction_coverage(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .filter(|r| r.predicted_seconds.is_some())
            .count() as f64
            / self.records.len() as f64
    }
}

/// Runs the validation for all four progressive algorithms.
pub fn run(scale: Scale, mode: BudgetMode) -> Vec<ValidationSeries> {
    let workload = Workload::skyserver(scale);
    let constants = CostConstants::calibrate();
    let model = CostModel::new(constants, workload.column.len());
    let policy = match mode {
        BudgetMode::FixedDelta => BudgetPolicy::FixedDelta(0.25),
        BudgetMode::Adaptive => BudgetPolicy::adaptive_scan_fraction(&model, 0.2),
    };
    AlgorithmId::PROGRESSIVE
        .into_iter()
        .map(|algorithm| {
            let mut index = algorithm.build(workload.column.clone(), policy, constants);
            let run = run_workload(index.as_mut(), &workload.queries);
            ValidationSeries {
                algorithm,
                mode,
                records: run.records,
            }
        })
        .collect()
}

/// The per-query series as a CSV-ready table
/// (`algorithm,query,measured_s,predicted_s,phase,delta`).
pub fn series_table(series: &[ValidationSeries]) -> Table {
    let mut table = Table::new([
        "algorithm",
        "query",
        "measured_s",
        "predicted_s",
        "phase",
        "delta",
    ]);
    for s in series {
        for r in &s.records {
            table.push_row([
                s.algorithm.label().to_string(),
                (r.query_number + 1).to_string(),
                format!("{:.3e}", r.seconds),
                r.predicted_seconds
                    .map(|p| format!("{p:.3e}"))
                    .unwrap_or_else(|| "".to_string()),
                r.phase.label().to_string(),
                format!("{:.6}", r.delta),
            ]);
        }
    }
    table
}

/// Summary table: prediction error and coverage per algorithm.
pub fn summary_table(series: &[ValidationSeries]) -> Table {
    let mut table = Table::new([
        "algorithm",
        "mode",
        "mean_rel_error",
        "prediction_coverage",
        "cumulative_s",
    ]);
    for s in series {
        let cumulative: f64 = s.records.iter().map(|r| r.seconds).sum();
        table.push_row([
            s.algorithm.label().to_string(),
            s.mode.label().to_string(),
            format!("{:.3}", s.mean_relative_error()),
            format!("{:.2}", s.prediction_coverage()),
            fmt_seconds(cumulative),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_progressive_algorithm_produces_predictions() {
        let series = run(Scale::TINY, BudgetMode::FixedDelta);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.records.len(), Scale::TINY.query_count);
            // Predictions are only made while indexing work remains; on
            // this tiny workload the indexes converge quickly, so require
            // a prediction for the first query and some overall coverage.
            assert!(
                s.records[0].predicted_seconds.is_some(),
                "{}: first query carried no prediction",
                s.algorithm
            );
            assert!(
                s.prediction_coverage() > 0.0,
                "{}: coverage {}",
                s.algorithm,
                s.prediction_coverage()
            );
        }
        let table = summary_table(&series);
        assert_eq!(table.row_count(), 4);
    }

    #[test]
    fn adaptive_mode_also_runs() {
        let series = run(Scale::TINY, BudgetMode::Adaptive);
        assert_eq!(series.len(), 4);
        let per_query = series_table(&series);
        assert_eq!(per_query.row_count(), 4 * Scale::TINY.query_count);
        assert_eq!(BudgetMode::Adaptive.label(), "adaptive-0.2-tscan");
    }
}
