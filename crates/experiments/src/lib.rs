//! # pi-experiments — the evaluation harness
//!
//! Reproduces every table and figure of Section 4 of the Progressive
//! Indexes paper. The crate has two layers:
//!
//! * **Library** — reusable pieces: the [`registry`] of all eleven
//!   indexing techniques, the workload [`runner`], the evaluation
//!   [`metrics`], experiment [`setup`] helpers, result [`report`]ing, and
//!   one module per experiment family ([`delta_sweep`],
//!   [`cost_model_validation`], [`skyserver_comparison`],
//!   [`synthetic_grid`]).
//! * **Binaries** (`src/bin/`) — one executable per paper artefact
//!   (`fig5_*` … `fig11_*`, `table2_*` … `table5_*`). Each prints an
//!   aligned table plus CSV, and accepts `--n <elements>` /
//!   `--queries <count>` to scale from the laptop-friendly defaults
//!   towards the paper's sizes.
//!
//! | Paper artefact | Binary | Library entry point |
//! |---|---|---|
//! | Figure 5 | `fig5_skyserver_workload` | [`setup::Workload::skyserver`] |
//! | Figure 6 | `fig6_workload_patterns` | [`pi_workloads::patterns`] |
//! | Figure 7 | `fig7_delta_impact` | [`delta_sweep::run`] |
//! | Figure 8 | `fig8_cost_model_fixed` | [`cost_model_validation::run`] |
//! | Figure 9 | `fig9_cost_model_adaptive` | [`cost_model_validation::run`] |
//! | Table 2  | `table2_skyserver` | [`skyserver_comparison::run_all`] |
//! | Figure 10 | `fig10_progressive_vs_adaptive` | [`skyserver_comparison::figure10_series`] |
//! | Tables 3–5 | `table3_first_query`, `table4_cumulative`, `table5_robustness` | [`synthetic_grid::run`] |
//! | Figure 11 | `fig11_decision_tree` | [`pi_core::decision::full_decision_table`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost_model_validation;
pub mod delta_sweep;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scale;
pub mod setup;
pub mod skyserver_comparison;
pub mod synthetic_grid;

pub use metrics::Metrics;
pub use registry::AlgorithmId;
pub use report::Table;
pub use runner::{run_workload, QueryRecord, WorkloadRun};
pub use scale::Scale;
pub use setup::Workload;
