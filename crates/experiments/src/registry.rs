//! The algorithm registry: every indexing technique the paper evaluates,
//! addressable by the label used in its tables, and constructible through
//! one uniform factory.

use std::sync::Arc;

use pi_core::budget::BudgetPolicy;
use pi_core::cost_model::{CostConstants, CostModel};
use pi_core::{Algorithm, RangeIndex};
use pi_cracking::{
    AdaptiveAdaptiveIndexing, CoarseGranularIndex, FullIndex, FullScan,
    ProgressiveStochasticCracking, StandardCracking, StochasticCracking,
};
use pi_storage::Column;

/// Every indexing technique of the paper's evaluation (Tables 2–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmId {
    /// `FS` — predicated full scan, no index.
    FullScan,
    /// `FI` — full sort + B+-tree on the first query.
    FullIndex,
    /// `STD` — standard database cracking.
    StandardCracking,
    /// `STC` — stochastic cracking.
    StochasticCracking,
    /// `PSTC` — progressive stochastic cracking (10% swaps).
    ProgressiveStochasticCracking,
    /// `CGI` — coarse granular index.
    CoarseGranularIndex,
    /// `AA` — adaptive adaptive indexing.
    AdaptiveAdaptive,
    /// `PQ` — progressive quicksort.
    ProgressiveQuicksort,
    /// `PMSD` — progressive radixsort (most significant digits).
    ProgressiveRadixsortMsd,
    /// `PLSD` — progressive radixsort (least significant digits).
    ProgressiveRadixsortLsd,
    /// `PB` — progressive bucketsort (equi-height).
    ProgressiveBucketsort,
}

impl AlgorithmId {
    /// Every algorithm, in the row order of Table 2.
    pub const ALL: [AlgorithmId; 11] = [
        AlgorithmId::FullScan,
        AlgorithmId::FullIndex,
        AlgorithmId::StandardCracking,
        AlgorithmId::StochasticCracking,
        AlgorithmId::ProgressiveStochasticCracking,
        AlgorithmId::CoarseGranularIndex,
        AlgorithmId::AdaptiveAdaptive,
        AlgorithmId::ProgressiveQuicksort,
        AlgorithmId::ProgressiveRadixsortMsd,
        AlgorithmId::ProgressiveRadixsortLsd,
        AlgorithmId::ProgressiveBucketsort,
    ];

    /// The four progressive indexing techniques introduced by the paper.
    pub const PROGRESSIVE: [AlgorithmId; 4] = [
        AlgorithmId::ProgressiveQuicksort,
        AlgorithmId::ProgressiveBucketsort,
        AlgorithmId::ProgressiveRadixsortLsd,
        AlgorithmId::ProgressiveRadixsortMsd,
    ];

    /// The adaptive indexing baselines (the cracking family).
    pub const ADAPTIVE: [AlgorithmId; 5] = [
        AlgorithmId::StandardCracking,
        AlgorithmId::StochasticCracking,
        AlgorithmId::ProgressiveStochasticCracking,
        AlgorithmId::CoarseGranularIndex,
        AlgorithmId::AdaptiveAdaptive,
    ];

    /// The short label used in the paper's tables (`FS`, `FI`, `STD`, …).
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmId::FullScan => "FS",
            AlgorithmId::FullIndex => "FI",
            AlgorithmId::StandardCracking => "STD",
            AlgorithmId::StochasticCracking => "STC",
            AlgorithmId::ProgressiveStochasticCracking => "PSTC",
            AlgorithmId::CoarseGranularIndex => "CGI",
            AlgorithmId::AdaptiveAdaptive => "AA",
            AlgorithmId::ProgressiveQuicksort => "PQ",
            AlgorithmId::ProgressiveRadixsortMsd => "PMSD",
            AlgorithmId::ProgressiveRadixsortLsd => "PLSD",
            AlgorithmId::ProgressiveBucketsort => "PB",
        }
    }

    /// Parses a paper label (case-insensitive) back into an id.
    pub fn from_label(label: &str) -> Option<Self> {
        let upper = label.to_ascii_uppercase();
        Self::ALL.into_iter().find(|a| a.label() == upper)
    }

    /// `true` for the paper's own progressive indexing techniques.
    pub fn is_progressive(self) -> bool {
        Self::PROGRESSIVE.contains(&self)
    }

    /// `true` for the adaptive indexing (cracking) baselines.
    pub fn is_adaptive(self) -> bool {
        Self::ADAPTIVE.contains(&self)
    }

    /// Builds an index instance over `column`.
    ///
    /// `policy` and `constants` only affect the progressive techniques;
    /// the baselines have no indexing budget.
    pub fn build(
        self,
        column: Arc<Column>,
        policy: BudgetPolicy,
        constants: CostConstants,
    ) -> Box<dyn RangeIndex> {
        match self {
            AlgorithmId::FullScan => Box::new(FullScan::new(column)),
            AlgorithmId::FullIndex => Box::new(FullIndex::new(column)),
            AlgorithmId::StandardCracking => Box::new(StandardCracking::new(column)),
            AlgorithmId::StochasticCracking => Box::new(StochasticCracking::new(column)),
            AlgorithmId::ProgressiveStochasticCracking => {
                Box::new(ProgressiveStochasticCracking::new(column))
            }
            AlgorithmId::CoarseGranularIndex => Box::new(CoarseGranularIndex::new(column)),
            AlgorithmId::AdaptiveAdaptive => Box::new(AdaptiveAdaptiveIndexing::new(column)),
            // The four progressive techniques share pi-core's uniform
            // factory (`Algorithm::build_with_constants`).
            AlgorithmId::ProgressiveQuicksort
            | AlgorithmId::ProgressiveRadixsortMsd
            | AlgorithmId::ProgressiveRadixsortLsd
            | AlgorithmId::ProgressiveBucketsort => self
                .algorithm()
                .expect("progressive ids map to a pi-core Algorithm")
                .build_with_constants(column, policy, constants),
        }
    }

    /// The pi-core [`Algorithm`] this id corresponds to, when it names one
    /// of the four progressive techniques.
    pub fn algorithm(self) -> Option<Algorithm> {
        match self {
            AlgorithmId::ProgressiveQuicksort => Some(Algorithm::Quicksort),
            AlgorithmId::ProgressiveRadixsortMsd => Some(Algorithm::RadixsortMsd),
            AlgorithmId::ProgressiveRadixsortLsd => Some(Algorithm::RadixsortLsd),
            AlgorithmId::ProgressiveBucketsort => Some(Algorithm::Bucketsort),
            _ => None,
        }
    }

    /// Convenience: builds the index with the paper's default experiment
    /// budget — an adaptive indexing budget of `0.2 · t_scan` — computed
    /// for this column under `constants`.
    pub fn build_with_default_budget(
        self,
        column: Arc<Column>,
        constants: CostConstants,
    ) -> Box<dyn RangeIndex> {
        let model = CostModel::new(constants, column.len());
        let policy = BudgetPolicy::adaptive_scan_fraction(&model, 0.2);
        self.build(column, policy, constants)
    }
}

impl std::fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::{random_column, ReferenceIndex};

    #[test]
    fn labels_round_trip() {
        for algo in AlgorithmId::ALL {
            assert_eq!(AlgorithmId::from_label(algo.label()), Some(algo));
        }
        assert_eq!(
            AlgorithmId::from_label("pq"),
            Some(AlgorithmId::ProgressiveQuicksort)
        );
        assert_eq!(AlgorithmId::from_label("nope"), None);
    }

    #[test]
    fn classification_is_consistent() {
        let progressive = AlgorithmId::ALL
            .iter()
            .filter(|a| a.is_progressive())
            .count();
        let adaptive = AlgorithmId::ALL.iter().filter(|a| a.is_adaptive()).count();
        assert_eq!(progressive, 4);
        assert_eq!(adaptive, 5);
        assert!(!AlgorithmId::FullScan.is_progressive());
        assert!(!AlgorithmId::FullIndex.is_adaptive());
    }

    #[test]
    fn every_algorithm_builds_and_answers_correctly() {
        let column = Arc::new(random_column(5_000, 10_000, 77));
        let reference = ReferenceIndex::new(&column);
        let constants = CostConstants::synthetic();
        for algo in AlgorithmId::ALL {
            let mut index = algo.build(
                Arc::clone(&column),
                BudgetPolicy::FixedDelta(0.25),
                constants,
            );
            for (low, high) in [(0, 500), (2_000, 4_000), (9_999, 9_999), (7_000, 7_500)] {
                let got = index.query(low, high);
                assert_eq!(
                    got.scan_result(),
                    reference.query(low, high),
                    "{algo} [{low},{high}]"
                );
            }
        }
    }

    #[test]
    fn default_budget_builder_produces_working_indexes() {
        let column = Arc::new(random_column(2_000, 2_000, 78));
        let reference = ReferenceIndex::new(&column);
        for algo in AlgorithmId::PROGRESSIVE {
            let mut index =
                algo.build_with_default_budget(Arc::clone(&column), CostConstants::synthetic());
            let got = index.query(100, 900);
            assert_eq!(got.scan_result(), reference.query(100, 900), "{algo}");
        }
    }
}
