//! The evaluation metrics of Section 4.4: first-query cost, pay-off,
//! convergence, robustness and cumulative time.

use crate::runner::WorkloadRun;

/// Summary metrics of one workload run, matching the columns of the
/// paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Wall-clock time of the first query, in seconds.
    pub first_query_seconds: f64,
    /// 1-based query number at which the cumulative time of this run drops
    /// to (or below) the cumulative time of repeatedly full-scanning —
    /// the paper's "pay-off" metric. `None` when the run never pays off
    /// within the measured workload.
    pub payoff_query: Option<usize>,
    /// 1-based query number at which the index reported convergence,
    /// `None` when it never converged (the paper prints `x`).
    pub convergence_query: Option<usize>,
    /// Variance of the first 100 query times (the paper's robustness
    /// metric; lower is better).
    pub robustness_variance: f64,
    /// Total time of the whole workload, in seconds.
    pub cumulative_seconds: f64,
}

impl Metrics {
    /// Computes the metrics for `run`, given the measured cost of one full
    /// scan of the column (`scan_seconds`), which anchors the pay-off
    /// comparison.
    pub fn from_run(run: &WorkloadRun, scan_seconds: f64) -> Self {
        let times = run.times();
        Metrics {
            first_query_seconds: run.first_query_seconds(),
            payoff_query: payoff_query(&times, scan_seconds),
            convergence_query: run.converged_at.map(|q| q + 1),
            robustness_variance: robustness(&times, 100),
            cumulative_seconds: run.cumulative_seconds(),
        }
    }

    /// Formats the convergence column the way the paper does (`x` when the
    /// technique never converges).
    pub fn convergence_label(&self) -> String {
        match self.convergence_query {
            Some(q) => q.to_string(),
            None => "x".to_string(),
        }
    }

    /// Formats the pay-off column (`x` when the workload never pays off).
    pub fn payoff_label(&self) -> String {
        match self.payoff_query {
            Some(q) => q.to_string(),
            None => "x".to_string(),
        }
    }
}

/// The pay-off query: the smallest `q` (1-based) such that the cumulative
/// time of the first `q` queries is at most `q * scan_seconds`
/// (i.e. `Σ_q t_prog ≤ Σ_q t_scan`, Section 4.2).
pub fn payoff_query(times: &[f64], scan_seconds: f64) -> Option<usize> {
    let mut cumulative = 0.0;
    for (i, &t) in times.iter().enumerate() {
        cumulative += t;
        if cumulative <= scan_seconds * (i + 1) as f64 {
            return Some(i + 1);
        }
    }
    None
}

/// Population variance of the first `window` query times — the paper's
/// robustness metric ("variance of the first 100 query times").
pub fn robustness(times: &[f64], window: usize) -> f64 {
    let slice = &times[..times.len().min(window)];
    variance(slice)
}

/// Population variance of a sample (0 for fewer than two observations).
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n
}

/// Arithmetic mean (0 for an empty sample).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::QueryRecord;
    use pi_core::result::Phase;

    fn run_with_times(times: &[f64], converged_at: Option<usize>) -> WorkloadRun {
        WorkloadRun {
            index_name: "test".to_string(),
            records: times
                .iter()
                .enumerate()
                .map(|(i, &t)| QueryRecord {
                    query_number: i,
                    seconds: t,
                    sum: 0,
                    count: 0,
                    phase: Phase::Creation,
                    delta: 0.0,
                    predicted_seconds: None,
                    indexing_ops: 0,
                    elements_scanned: 0,
                })
                .collect(),
            converged_at,
        }
    }

    #[test]
    fn variance_of_constant_series_is_zero() {
        assert_eq!(variance(&[0.5; 10]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        let v = variance(&[1.0, 2.0, 3.0, 4.0]);
        assert!((v - 1.25).abs() < 1e-12);
        assert!((mean(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn payoff_is_immediate_when_queries_are_cheaper_than_scans() {
        assert_eq!(payoff_query(&[0.5, 0.5], 1.0), Some(1));
    }

    #[test]
    fn payoff_happens_once_cumulative_cost_amortises() {
        // First query is 3x a scan; subsequent queries are free, so the
        // investment amortises at query 3 (3 * 1.0 >= 3.0).
        let times = [3.0, 0.0, 0.0, 0.0];
        assert_eq!(payoff_query(&times, 1.0), Some(3));
    }

    #[test]
    fn payoff_never_happens_for_consistently_slower_queries() {
        assert_eq!(payoff_query(&[2.0; 10], 1.0), None);
    }

    #[test]
    fn metrics_from_run_wires_everything_together() {
        let run = run_with_times(&[2.0, 0.1, 0.1, 0.1], Some(2));
        let m = Metrics::from_run(&run, 1.0);
        assert_eq!(m.first_query_seconds, 2.0);
        // Cumulative cost catches up with 3 scans' worth at query 3
        // (2.0 + 0.1 + 0.1 = 2.2 <= 3 * 1.0).
        assert_eq!(m.payoff_query, Some(3));
        assert_eq!(m.convergence_query, Some(3));
        assert_eq!(m.convergence_label(), "3");
        assert_eq!(m.payoff_label(), "3");
        assert!((m.cumulative_seconds - 2.3).abs() < 1e-12);
        assert!(m.robustness_variance > 0.0);
    }

    #[test]
    fn unconverged_run_prints_x() {
        let run = run_with_times(&[1.0, 1.0], None);
        let m = Metrics::from_run(&run, 0.1);
        assert_eq!(m.convergence_label(), "x");
        assert_eq!(m.payoff_label(), "x");
    }

    #[test]
    fn robustness_uses_only_the_first_window() {
        let mut times = vec![1.0; 100];
        times.extend_from_slice(&[100.0; 10]);
        assert_eq!(robustness(&times, 100), 0.0);
        assert!(robustness(&times, 110) > 0.0);
    }
}
