//! The cracker index: the boundary bookkeeping shared by all cracking
//! baselines.
//!
//! A cracker index maps pivot values to positions in the cracker column.
//! An entry `(v, p)` records the invariant *"all elements at positions
//! `< p` are `< v`, all elements at positions `>= p` are `>= v`"*. Pieces
//! are the gaps between consecutive entries; a query bound that falls into
//! a piece triggers a crack of exactly that piece.
//!
//! The original work uses an AVL tree; a [`BTreeMap`] provides the same
//! ordered-map operations with better cache behaviour in Rust.

use std::collections::BTreeMap;

use pi_storage::Value;

/// Ordered map of crack boundaries over a cracker column of `n` elements.
#[derive(Debug, Clone, Default)]
pub struct CrackerIndex {
    /// pivot value → first position of the `>= pivot` region.
    map: BTreeMap<Value, usize>,
}

/// A contiguous, not-yet-cracked region of the cracker column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Piece {
    /// First position of the piece.
    pub begin: usize,
    /// One past the last position of the piece.
    pub end: usize,
}

impl Piece {
    /// Number of elements in the piece.
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// `true` when the piece contains no elements.
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }
}

impl CrackerIndex {
    /// Creates an empty cracker index (a single piece spanning the whole
    /// column).
    pub fn new() -> Self {
        CrackerIndex {
            map: BTreeMap::new(),
        }
    }

    /// Number of crack boundaries recorded so far.
    pub fn boundary_count(&self) -> usize {
        self.map.len()
    }

    /// Number of pieces the column is currently divided into.
    pub fn piece_count(&self) -> usize {
        self.map.len() + 1
    }

    /// Records that position `pos` is the first element `>= pivot`.
    pub fn insert(&mut self, pivot: Value, pos: usize) {
        self.map.insert(pivot, pos);
    }

    /// The exact position for `pivot` when that boundary has already been
    /// cracked.
    pub fn position_of(&self, pivot: Value) -> Option<usize> {
        self.map.get(&pivot).copied()
    }

    /// The piece of the column that must be cracked to install a boundary
    /// at `pivot`: it starts at the position of the greatest existing
    /// boundary `<= pivot` (or 0) and ends at the position of the smallest
    /// existing boundary `> pivot` (or `n`).
    pub fn piece_for(&self, pivot: Value, n: usize) -> Piece {
        let begin = self
            .map
            .range(..=pivot)
            .next_back()
            .map(|(_, &p)| p)
            .unwrap_or(0);
        let end = self
            .map
            .range((std::ops::Bound::Excluded(pivot), std::ops::Bound::Unbounded))
            .next()
            .map(|(_, &p)| p)
            .unwrap_or(n);
        Piece { begin, end }
    }

    /// Position of the first element `>= key`, using only the boundaries
    /// recorded so far; the caller must still scan or crack the returned
    /// piece when the boundary is not exact.
    ///
    /// Returns `(piece, exact)` where `exact` is `true` when a boundary for
    /// `key` itself exists (in which case `piece.begin` is that position).
    pub fn lookup(&self, key: Value, n: usize) -> (Piece, bool) {
        if let Some(pos) = self.position_of(key) {
            (
                Piece {
                    begin: pos,
                    end: pos,
                },
                true,
            )
        } else {
            (self.piece_for(key, n), false)
        }
    }

    /// Iterates over `(pivot, position)` boundaries in value order.
    pub fn boundaries(&self) -> impl Iterator<Item = (Value, usize)> + '_ {
        self.map.iter().map(|(&v, &p)| (v, p))
    }

    /// Iterates over all pieces in position order, including the implicit
    /// first and last pieces.
    pub fn pieces(&self, n: usize) -> Vec<Piece> {
        let mut pieces = Vec::with_capacity(self.map.len() + 1);
        let mut begin = 0usize;
        for (_, &pos) in self.map.iter() {
            pieces.push(Piece { begin, end: pos });
            begin = pos;
        }
        pieces.push(Piece { begin, end: n });
        pieces
    }

    /// Size of the largest remaining piece — a convergence proxy: once all
    /// pieces are below a sorting threshold the cracked column behaves like
    /// a (coarsely) sorted array.
    pub fn largest_piece(&self, n: usize) -> usize {
        self.pieces(n).iter().map(Piece::len).max().unwrap_or(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index_has_one_piece() {
        let idx = CrackerIndex::new();
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.piece_for(42, 100), Piece { begin: 0, end: 100 });
        assert_eq!(idx.largest_piece(100), 100);
    }

    #[test]
    fn piece_for_respects_existing_boundaries() {
        let mut idx = CrackerIndex::new();
        idx.insert(10, 25);
        idx.insert(50, 70);
        let n = 100;

        // Below the first boundary.
        assert_eq!(idx.piece_for(5, n), Piece { begin: 0, end: 25 });
        // Between the two boundaries.
        assert_eq!(idx.piece_for(30, n), Piece { begin: 25, end: 70 });
        // Exactly on a boundary: the piece starts at that boundary.
        assert_eq!(idx.piece_for(10, n), Piece { begin: 25, end: 70 });
        // Above the last boundary.
        assert_eq!(
            idx.piece_for(60, n),
            Piece {
                begin: 70,
                end: 100
            }
        );
    }

    #[test]
    fn lookup_reports_exact_hits() {
        let mut idx = CrackerIndex::new();
        idx.insert(10, 25);
        let (piece, exact) = idx.lookup(10, 100);
        assert!(exact);
        assert_eq!(piece.begin, 25);
        let (_, exact) = idx.lookup(11, 100);
        assert!(!exact);
    }

    #[test]
    fn pieces_cover_the_whole_column() {
        let mut idx = CrackerIndex::new();
        idx.insert(10, 25);
        idx.insert(50, 70);
        let pieces = idx.pieces(100);
        assert_eq!(
            pieces,
            vec![
                Piece { begin: 0, end: 25 },
                Piece { begin: 25, end: 70 },
                Piece {
                    begin: 70,
                    end: 100
                },
            ]
        );
        assert_eq!(pieces.iter().map(Piece::len).sum::<usize>(), 100);
        assert_eq!(idx.largest_piece(100), 45);
    }

    #[test]
    fn piece_len_and_empty() {
        let p = Piece { begin: 5, end: 5 };
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        let q = Piece { begin: 5, end: 9 };
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
    }
}
