//! The two non-adaptive reference points of the paper's evaluation:
//!
//! * [`FullScan`] (`FS`) — never builds any index; every query is a
//!   predicated full-column scan. Cheapest possible first query, perfectly
//!   robust, worst possible cumulative time.
//! * [`FullIndex`] (`FI`) — the first query sorts a copy of the column and
//!   bulk-loads a B+-tree; every later query is answered from the tree.
//!   Most expensive possible first query, best possible cumulative time.

use std::sync::Arc;

use pi_core::result::{IndexStatus, Phase, QueryResult};
use pi_core::RangeIndex;
use pi_storage::{scan, Column, StaticBTree, Value, DEFAULT_FANOUT};

/// Full-scan baseline (`FS` in the paper's tables).
pub struct FullScan {
    column: Arc<Column>,
    queries_executed: u64,
}

impl FullScan {
    /// Creates the baseline over `column`.
    pub fn new(column: Arc<Column>) -> Self {
        FullScan {
            column,
            queries_executed: 0,
        }
    }

    /// Number of queries executed so far.
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed
    }
}

impl RangeIndex for FullScan {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        let result = if low > high {
            scan::ScanResult::EMPTY
        } else {
            scan::scan_range_sum(self.column.data(), low, high)
        };
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Creation,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: 0,
            elements_scanned: self.column.len() as u64,
        }
    }

    fn status(&self) -> IndexStatus {
        IndexStatus {
            phase: Phase::Creation,
            fraction_indexed: 0.0,
            phase_progress: 0.0,
            converged: false,
        }
    }

    fn name(&self) -> &'static str {
        "full-scan"
    }
}

/// Full-index baseline (`FI` in the paper's tables): sort + bulk-loaded
/// B+-tree built entirely by the first query.
pub struct FullIndex {
    column: Arc<Column>,
    index: Option<(Vec<Value>, StaticBTree)>,
    fanout: usize,
    queries_executed: u64,
}

impl FullIndex {
    /// Creates the baseline with the default B+-tree fan-out.
    pub fn new(column: Arc<Column>) -> Self {
        Self::with_fanout(column, DEFAULT_FANOUT)
    }

    /// Creates the baseline with an explicit B+-tree fan-out.
    pub fn with_fanout(column: Arc<Column>, fanout: usize) -> Self {
        FullIndex {
            column,
            index: None,
            fanout,
            queries_executed: 0,
        }
    }

    fn build(&mut self) -> u64 {
        let mut sorted = self.column.data().to_vec();
        sorted.sort_unstable();
        let tree = StaticBTree::build(&sorted, self.fanout);
        let ops = sorted.len() as u64 + tree.internal_key_count() as u64;
        self.index = Some((sorted, tree));
        ops
    }
}

impl RangeIndex for FullIndex {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        if low > high {
            return QueryResult::answer_only(scan::ScanResult::EMPTY, self.status().phase);
        }
        let mut ops = 0u64;
        if self.index.is_none() {
            ops = self.build();
        }
        let (sorted, tree) = self.index.as_ref().expect("built above");
        let result = tree.range_sum(sorted, low, high);
        QueryResult {
            sum: result.sum,
            count: result.count,
            phase: Phase::Converged,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: ops,
            elements_scanned: result.count,
        }
    }

    fn status(&self) -> IndexStatus {
        if self.index.is_some() {
            IndexStatus::converged()
        } else {
            IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: 0.0,
                phase_progress: 0.0,
                converged: false,
            }
        }
    }

    fn name(&self) -> &'static str {
        "full-index"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::{check_correctness_under_workload, random_column, ReferenceIndex};

    #[test]
    fn full_scan_matches_reference() {
        let converged = check_correctness_under_workload(
            |col| Box::new(FullScan::new(col)),
            10_000,
            10_000,
            100,
        );
        assert!(!converged, "full scan never converges");
    }

    #[test]
    fn full_index_matches_reference_and_converges_after_first_query() {
        let col = Arc::new(random_column(10_000, 100_000, 61));
        let reference = ReferenceIndex::new(&col);
        let mut idx = FullIndex::new(Arc::clone(&col));
        assert!(!idx.is_converged());
        let first = idx.query(10_000, 30_000);
        assert_eq!(first.scan_result(), reference.query(10_000, 30_000));
        assert!(first.indexing_ops >= 10_000);
        assert!(idx.is_converged());
        let second = idx.query(10_000, 30_000);
        assert_eq!(second.indexing_ops, 0);
        assert_eq!(second.scan_result(), first.scan_result());
    }

    #[test]
    fn full_index_point_and_empty_queries() {
        let col = Arc::new(Column::from_vec(vec![5, 3, 8, 3, 1]));
        let mut idx = FullIndex::new(col);
        assert_eq!(idx.point_query(3).count, 2);
        assert_eq!(idx.point_query(3).sum, 6);
        assert_eq!(idx.query(100, 200).count, 0);
        assert_eq!(idx.query(7, 2).count, 0);
    }

    #[test]
    fn full_scan_is_perfectly_robust_in_elements_scanned() {
        let col = Arc::new(random_column(5_000, 5_000, 62));
        let mut idx = FullScan::new(col);
        let a = idx.query(0, 10).elements_scanned;
        let b = idx.query(2_000, 4_999).elements_scanned;
        assert_eq!(a, b);
        assert_eq!(idx.queries_executed(), 2);
    }
}
