//! Adaptive Adaptive Indexing (Schuhknecht, Dittrich, Linden — ICDE 2018)
//! — the `AA` baseline.
//!
//! Adaptive adaptive indexing generalises the cracking family: the first
//! query performs an out-of-place radix-style range partitioning of the
//! whole column into a configurable number of partitions (like a coarse
//! granular index, but built with a partition fan-out chosen for cache
//! efficiency), and subsequent queries *adaptively* refine only the pieces
//! the workload touches — large pieces are split again with the same
//! fan-out, small pieces are cracked exactly at the query bounds.
//!
//! This reproduction follows the "manual configuration" used in the
//! Progressive Indexes paper's evaluation: a 64-way first partitioning
//! pass, a 64-way refinement fan-out and exact cracking below an
//! L2-cache-sized threshold. The characteristic behaviour — the most
//! expensive first query of the adaptive family, the best cumulative time
//! on skewed workloads — is preserved.

use std::sync::Arc;

use pi_core::result::{IndexStatus, Phase, QueryResult};
use pi_core::RangeIndex;
use pi_storage::{Column, Value};

use crate::cracked_column::CrackedColumn;
use crate::cracker_index::Piece;

/// Fan-out of the first partitioning pass and of every refinement split.
pub const DEFAULT_FANOUT: usize = 64;

/// Pieces at or below this many elements are cracked exactly at the query
/// bounds instead of being split again (≈ 256 KiB of 8-byte values).
pub const DEFAULT_EXACT_THRESHOLD: usize = (256 * 1024) / 8;

/// Adaptive adaptive indexing baseline (`AA` in the paper's tables).
pub struct AdaptiveAdaptiveIndexing {
    column: Arc<Column>,
    cracked: Option<CrackedColumn>,
    fanout: usize,
    exact_threshold: usize,
    queries_executed: u64,
}

impl AdaptiveAdaptiveIndexing {
    /// Creates the baseline with the default (paper) configuration.
    pub fn new(column: Arc<Column>) -> Self {
        Self::with_config(column, DEFAULT_FANOUT, DEFAULT_EXACT_THRESHOLD)
    }

    /// Creates the baseline with an explicit fan-out and exact-crack
    /// threshold.
    ///
    /// # Panics
    /// Panics when `fanout < 2`.
    pub fn with_config(column: Arc<Column>, fanout: usize, exact_threshold: usize) -> Self {
        assert!(fanout >= 2, "fan-out must be at least 2, got {fanout}");
        AdaptiveAdaptiveIndexing {
            column,
            cracked: None,
            fanout,
            exact_threshold: exact_threshold.max(1),
            queries_executed: 0,
        }
    }

    /// Number of crack boundaries installed so far.
    pub fn boundary_count(&self) -> usize {
        self.cracked
            .as_ref()
            .map(|c| c.index().boundary_count())
            .unwrap_or(0)
    }

    /// Equal-width range partitioning of `piece` (whose values all lie in
    /// `[lo_value, hi_value]`) into `fanout` sub-pieces, installing the new
    /// boundaries. Out of place over the piece, mirroring AA's software-
    /// managed-buffer partitioning. Returns the number of element moves.
    fn partition_piece(
        cracked: &mut CrackedColumn,
        piece: Piece,
        lo_value: Value,
        hi_value: Value,
        fanout: usize,
    ) -> u64 {
        if piece.len() <= 1 || lo_value >= hi_value {
            return 0;
        }
        let span = hi_value - lo_value;
        let mut bounds: Vec<Value> = (1..fanout)
            .map(|i| lo_value + ((span as u128 * i as u128) / fanout as u128) as Value)
            .filter(|&b| b > lo_value && b <= hi_value)
            .collect();
        bounds.dedup();
        if bounds.is_empty() {
            return 0;
        }
        let bucket_of = |v: Value| -> usize {
            match bounds.binary_search(&v) {
                Ok(i) => i + 1,
                Err(i) => i,
            }
        };
        let slice = &cracked.data()[piece.begin..piece.end];
        let mut counts = vec![0usize; bounds.len() + 1];
        for &v in slice {
            counts[bucket_of(v)] += 1;
        }
        let mut starts = vec![0usize; counts.len()];
        let mut acc = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            starts[i] = acc;
            acc += c;
        }
        let mut out = vec![0 as Value; piece.len()];
        let mut cursors = starts.clone();
        for &v in slice {
            let b = bucket_of(v);
            out[cursors[b]] = v;
            cursors[b] += 1;
        }
        cracked.data_mut()[piece.begin..piece.end].copy_from_slice(&out);
        for (i, &bound) in bounds.iter().enumerate() {
            cracked
                .index_mut()
                .insert(bound, piece.begin + starts[i + 1]);
        }
        piece.len() as u64
    }

    /// First-query work: partition the entire column.
    fn initialize(&mut self) -> u64 {
        let mut cracked = CrackedColumn::new(&self.column);
        let moves = match self.column.domain() {
            Some((min, max)) => Self::partition_piece(
                &mut cracked,
                Piece {
                    begin: 0,
                    end: self.column.len(),
                },
                min,
                max,
                self.fanout,
            ),
            None => 0,
        };
        self.cracked = Some(cracked);
        moves
    }

    /// Refinement work for one query bound: split the containing piece
    /// again while it is large, crack it exactly once it is small.
    fn refine_for_bound(&mut self, bound: Value) -> u64 {
        let fanout = self.fanout;
        let exact_threshold = self.exact_threshold;
        let cracked = self.cracked.as_mut().expect("initialised before use");
        if cracked.index().position_of(bound).is_some() {
            return 0;
        }
        let piece = cracked.piece_for(bound);
        if piece.is_empty() {
            cracked.index_mut().insert(bound, piece.begin);
            return 0;
        }
        if piece.len() <= exact_threshold {
            return cracked.crack_exact(bound).1;
        }
        // The value range of a piece is bounded by its neighbouring crack
        // boundaries; use the observed min/max of the piece itself, which
        // is tighter and always available.
        let slice = &cracked.data()[piece.begin..piece.end];
        let lo_value = slice.iter().copied().min().expect("non-empty piece");
        let hi_value = slice.iter().copied().max().expect("non-empty piece");
        let scan_cost = piece.len() as u64;
        scan_cost + Self::partition_piece(cracked, piece, lo_value, hi_value, fanout)
    }
}

impl RangeIndex for AdaptiveAdaptiveIndexing {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        if low > high || self.column.is_empty() {
            return QueryResult::answer_only(pi_storage::ScanResult::EMPTY, self.status().phase);
        }
        let mut ops = 0u64;
        if self.cracked.is_none() {
            ops += self.initialize();
        }
        ops += self.refine_for_bound(low);
        if high < Value::MAX {
            ops += self.refine_for_bound(high + 1);
        }
        let cracked = self.cracked.as_mut().expect("initialised above");
        let answer = cracked.answer(low, high);
        QueryResult {
            sum: answer.result.sum,
            count: answer.result.count,
            phase: Phase::Refinement,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: ops,
            elements_scanned: answer.elements_scanned,
        }
    }

    fn status(&self) -> IndexStatus {
        match &self.cracked {
            None => IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: 0.0,
                phase_progress: 0.0,
                converged: false,
            },
            Some(c) => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: c.refinement_progress(),
                converged: false,
            },
        }
    }

    fn name(&self) -> &'static str {
        "adaptive-adaptive-indexing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::{check_correctness_under_workload, random_column, ReferenceIndex};

    #[test]
    fn answers_match_reference_under_random_workload() {
        check_correctness_under_workload(
            |col| Box::new(AdaptiveAdaptiveIndexing::new(col)),
            20_000,
            50_000,
            200,
        );
    }

    #[test]
    fn first_query_is_the_most_expensive() {
        let col = Arc::new(random_column(100_000, 1_000_000, 51));
        let mut idx = AdaptiveAdaptiveIndexing::new(Arc::clone(&col));
        let first = idx.query(100_000, 150_000);
        let later: Vec<u64> = (0..10)
            .map(|q| idx.query(q * 90_000, q * 90_000 + 50_000).indexing_ops)
            .collect();
        assert!(
            first.indexing_ops >= 100_000,
            "first query partitions everything"
        );
        assert!(later.iter().all(|&ops| ops < first.indexing_ops));
    }

    #[test]
    fn skewed_data_produces_correct_answers() {
        // 90% of values concentrated in a narrow band.
        let mut values = Vec::with_capacity(50_000);
        for i in 0..50_000u64 {
            if i % 10 == 0 {
                values.push(i * 20);
            } else {
                values.push(500_000 + (i % 1_000));
            }
        }
        let col = Arc::new(Column::from_vec(values));
        let reference = ReferenceIndex::new(&col);
        let mut idx = AdaptiveAdaptiveIndexing::new(Arc::clone(&col));
        for (low, high) in [
            (499_000, 501_000),
            (0, 10_000),
            (500_500, 500_600),
            (42, 42),
        ] {
            assert_eq!(
                idx.query(low, high).scan_result(),
                reference.query(low, high)
            );
        }
    }

    #[test]
    fn hot_region_gets_refined() {
        let col = Arc::new(random_column(200_000, 1_000_000, 52));
        let mut idx = AdaptiveAdaptiveIndexing::with_config(Arc::clone(&col), 8, 1_024);
        let after_first = {
            idx.query(400_000, 600_000);
            idx.boundary_count()
        };
        // Repeatedly querying the same hot region keeps adding boundaries
        // until the touched pieces are small enough to crack exactly.
        for _ in 0..20 {
            idx.query(400_000, 600_000);
        }
        assert!(idx.boundary_count() > after_first);
        let reference = ReferenceIndex::new(&col);
        assert_eq!(
            idx.query(400_000, 600_000).scan_result(),
            reference.query(400_000, 600_000)
        );
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn rejects_degenerate_fanout() {
        let col = Arc::new(random_column(10, 10, 53));
        let _ = AdaptiveAdaptiveIndexing::with_config(col, 1, 10);
    }
}
