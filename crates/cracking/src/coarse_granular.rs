//! Coarse Granular Index (Schuhknecht et al., PVLDB 2013) — the `CGI`
//! baseline.
//!
//! Coarse granular indexing trades a more expensive first query for a more
//! robust index: when the column is first queried it is immediately range-
//! partitioned into a configurable number of equal-width partitions
//! (installing all partition boundaries in the cracker index), and from
//! the second query on it behaves like standard cracking *within* those
//! partitions. Because no piece can ever be larger than one initial
//! partition, the performance spikes of plain cracking are capped.

use std::sync::Arc;

use pi_core::result::{IndexStatus, Phase, QueryResult};
use pi_core::RangeIndex;
use pi_storage::{Column, Value};

use crate::cracked_column::CrackedColumn;

/// Default number of equal-width partitions created by the first query.
pub const DEFAULT_PARTITIONS: usize = 64;

/// Coarse granular index baseline (`CGI` in the paper's tables).
pub struct CoarseGranularIndex {
    column: Arc<Column>,
    cracked: Option<CrackedColumn>,
    partitions: usize,
    queries_executed: u64,
}

impl CoarseGranularIndex {
    /// Creates the baseline with [`DEFAULT_PARTITIONS`] initial partitions.
    pub fn new(column: Arc<Column>) -> Self {
        Self::with_partitions(column, DEFAULT_PARTITIONS)
    }

    /// Creates the baseline with an explicit initial partition count.
    ///
    /// # Panics
    /// Panics when `partitions < 2`.
    pub fn with_partitions(column: Arc<Column>, partitions: usize) -> Self {
        assert!(
            partitions >= 2,
            "need at least 2 partitions, got {partitions}"
        );
        CoarseGranularIndex {
            column,
            cracked: None,
            partitions,
            queries_executed: 0,
        }
    }

    /// Number of crack boundaries installed so far.
    pub fn boundary_count(&self) -> usize {
        self.cracked
            .as_ref()
            .map(|c| c.index().boundary_count())
            .unwrap_or(0)
    }

    /// First-query work: out-of-place range partition of the whole column
    /// into `partitions` equal-width value ranges, installing every
    /// partition boundary. Returns the number of element moves.
    fn initialize(&mut self) -> u64 {
        let n = self.column.len();
        let mut cracked = CrackedColumn::new(&self.column);
        let (min, max) = match self.column.domain() {
            Some(d) => d,
            None => {
                self.cracked = Some(cracked);
                return 0;
            }
        };
        let span = (max - min).max(1);
        let k = self.partitions.min(n.max(1));
        // Partition boundaries: min + i * span / k for i in 1..k. Narrow
        // domains can produce duplicate boundaries; dedup keeps the
        // boundary → position mapping unambiguous.
        let mut bounds: Vec<Value> = (1..k)
            .map(|i| min + ((span as u128 * i as u128) / k as u128) as Value)
            .filter(|&b| b > min && b <= max)
            .collect();
        bounds.dedup();

        // Counting sort by partition: count, prefix-sum, scatter.
        let bucket_of = |v: Value| -> usize {
            match bounds.binary_search(&v) {
                // `bounds[i] == v` means v belongs to the partition that
                // starts at bounds[i] (boundary semantics are `< bound`).
                Ok(i) => i + 1,
                Err(i) => i,
            }
        };
        let mut counts = vec![0usize; bounds.len() + 1];
        for &v in cracked.data() {
            counts[bucket_of(v)] += 1;
        }
        let mut starts = vec![0usize; counts.len()];
        let mut acc = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            starts[i] = acc;
            acc += c;
        }
        let mut out = vec![0 as Value; n];
        let mut cursors = starts.clone();
        for &v in cracked.data() {
            let b = bucket_of(v);
            out[cursors[b]] = v;
            cursors[b] += 1;
        }
        *cracked.data_mut() = out;
        for (i, &bound) in bounds.iter().enumerate() {
            cracked.index_mut().insert(bound, starts[i + 1]);
        }
        self.cracked = Some(cracked);
        n as u64
    }

    fn cracked_mut(&mut self) -> &mut CrackedColumn {
        self.cracked.as_mut().expect("initialised before use")
    }
}

impl RangeIndex for CoarseGranularIndex {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        if low > high || self.column.is_empty() {
            return QueryResult::answer_only(pi_storage::ScanResult::EMPTY, self.status().phase);
        }
        let mut ops = 0u64;
        if self.cracked.is_none() {
            ops += self.initialize();
        }
        let cracked = self.cracked_mut();
        ops += cracked.crack_exact(low).1;
        if high < Value::MAX {
            ops += cracked.crack_exact(high + 1).1;
        }
        let answer = cracked.answer(low, high);
        QueryResult {
            sum: answer.result.sum,
            count: answer.result.count,
            phase: Phase::Refinement,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: ops,
            elements_scanned: answer.elements_scanned,
        }
    }

    fn status(&self) -> IndexStatus {
        match &self.cracked {
            None => IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: 0.0,
                phase_progress: 0.0,
                converged: false,
            },
            Some(c) => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: c.refinement_progress(),
                converged: false,
            },
        }
    }

    fn name(&self) -> &'static str {
        "coarse-granular-index"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::{check_correctness_under_workload, random_column, ReferenceIndex};

    #[test]
    fn answers_match_reference_under_random_workload() {
        check_correctness_under_workload(
            |col| Box::new(CoarseGranularIndex::new(col)),
            20_000,
            50_000,
            200,
        );
    }

    #[test]
    fn first_query_installs_partition_boundaries() {
        let col = Arc::new(random_column(50_000, 1_000_000, 41));
        let mut idx = CoarseGranularIndex::with_partitions(Arc::clone(&col), 16);
        assert_eq!(idx.boundary_count(), 0);
        let reference = ReferenceIndex::new(&col);
        let r = idx.query(100_000, 200_000);
        assert_eq!(r.scan_result(), reference.query(100_000, 200_000));
        // 15 partition boundaries plus (up to) 2 query-bound boundaries.
        assert!(idx.boundary_count() >= 15);
        // The first query pays for the full partition pass.
        assert!(r.indexing_ops >= 50_000);
    }

    #[test]
    fn partitioning_bounds_largest_piece() {
        let col = Arc::new(random_column(64_000, 1_000_000, 42));
        let mut idx = CoarseGranularIndex::with_partitions(Arc::clone(&col), 32);
        idx.query(0, 10);
        let cracked = idx.cracked.as_ref().unwrap();
        // Uniform data: no piece should be much larger than n / partitions.
        let largest = cracked.index().largest_piece(64_000);
        assert!(
            largest < 2 * (64_000 / 32) + 1_000,
            "largest piece {largest}"
        );
    }

    #[test]
    fn skewed_data_is_still_answered_correctly() {
        // All values identical: every element lands in one partition.
        let col = Arc::new(Column::from_vec(vec![7; 10_000]));
        let reference = ReferenceIndex::new(&col);
        let mut idx = CoarseGranularIndex::new(Arc::clone(&col));
        assert_eq!(idx.query(0, 6).scan_result(), reference.query(0, 6));
        assert_eq!(idx.query(7, 7).scan_result(), reference.query(7, 7));
        assert_eq!(idx.query(8, 100).scan_result(), reference.query(8, 100));
    }

    #[test]
    #[should_panic(expected = "at least 2 partitions")]
    fn rejects_single_partition() {
        let col = Arc::new(random_column(10, 10, 43));
        let _ = CoarseGranularIndex::with_partitions(col, 1);
    }
}
