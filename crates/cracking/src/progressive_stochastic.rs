//! Progressive Stochastic Cracking (Halim et al., PVLDB 2012) — the
//! `PSTC` baseline, run with the paper's "10% allowed swaps" setting.
//!
//! Stochastic cracking still pays the full partition cost of a piece the
//! moment a query touches it, which makes the first queries expensive.
//! Progressive stochastic cracking bounds that cost: pieces larger than
//! the L2 cache are cracked *partially* — at most `allowed_swaps` element
//! swaps per query — and the partition is resumed by later queries until
//! it completes. Pieces that fit in the L2 cache are always cracked
//! completely.
//!
//! While a partial crack is in flight the affected piece is in an
//! intermediate state and queries answer it with a predicated scan, which
//! the shared [`CrackedColumn::answer`] routine already does for any piece
//! without an exact boundary.

use std::collections::HashMap;
use std::sync::Arc;

use pi_core::result::{IndexStatus, Phase, QueryResult};
use pi_core::RangeIndex;
use pi_storage::{Column, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::crack::PartialCrack;
use crate::cracked_column::CrackedColumn;

/// Number of 8-byte elements that fit in a typical 256 KiB L2 cache; the
/// threshold below which pieces are always cracked completely.
pub const DEFAULT_L2_ELEMENTS: usize = (256 * 1024) / 8;

/// Default allowed swaps per query as a fraction of the column size
/// (the paper runs PSTC with 10%).
pub const DEFAULT_SWAP_FRACTION: f64 = 0.10;

/// Progressive stochastic cracking baseline (`PSTC` in the paper).
pub struct ProgressiveStochasticCracking {
    column: Arc<Column>,
    cracked: Option<CrackedColumn>,
    /// In-flight partial cracks, keyed by the begin position of the piece
    /// they partition (pieces only change when a crack completes, so the
    /// begin position is a stable key).
    pending: HashMap<usize, PartialCrack>,
    rng: StdRng,
    l2_elements: usize,
    allowed_swaps: u64,
    queries_executed: u64,
}

impl ProgressiveStochasticCracking {
    /// Creates the baseline with the paper's configuration: 10% allowed
    /// swaps and a 256 KiB L2 budget.
    pub fn new(column: Arc<Column>) -> Self {
        Self::with_config(column, 0x5EED, DEFAULT_SWAP_FRACTION, DEFAULT_L2_ELEMENTS)
    }

    /// Creates the baseline with explicit seed, swap fraction and L2 size
    /// (in elements).
    pub fn with_config(
        column: Arc<Column>,
        seed: u64,
        swap_fraction: f64,
        l2_elements: usize,
    ) -> Self {
        assert!(
            swap_fraction > 0.0 && swap_fraction <= 1.0,
            "swap fraction must lie in (0, 1], got {swap_fraction}"
        );
        let allowed_swaps = ((column.len() as f64 * swap_fraction).ceil() as u64).max(1);
        ProgressiveStochasticCracking {
            column,
            cracked: None,
            pending: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            l2_elements: l2_elements.max(1),
            allowed_swaps,
            queries_executed: 0,
        }
    }

    /// The per-query swap allowance.
    pub fn allowed_swaps(&self) -> u64 {
        self.allowed_swaps
    }

    /// Number of partial cracks currently in flight.
    pub fn pending_cracks(&self) -> usize {
        self.pending.len()
    }

    /// Performs this query's reorganisation work for one bound and returns
    /// the number of swaps spent. `budget` is the remaining swap allowance
    /// for the whole query.
    fn crack_for_bound(&mut self, bound: Value, budget: u64) -> u64 {
        if self.cracked.is_none() {
            self.cracked = Some(CrackedColumn::new(&self.column));
        }
        let l2_elements = self.l2_elements;
        let random_draw: u64 = self.rng.gen();
        let cracked = self.cracked.as_mut().expect("initialised above");
        if cracked.index().position_of(bound).is_some() {
            return 0;
        }
        let piece = cracked.piece_for(bound);
        if piece.is_empty() {
            cracked.index_mut().insert(bound, piece.begin);
            return 0;
        }
        if piece.len() <= l2_elements {
            // Small pieces are always cracked completely, exactly at the
            // bound, regardless of the swap budget.
            return cracked.crack_exact(bound).1;
        }
        // Large piece: continue (or start) a swap-capped partial crack
        // around a random pivot.
        let crack = self.pending.entry(piece.begin).or_insert_with(|| {
            let offset = (random_draw % piece.len() as u64) as usize;
            let pivot = cracked.data()[piece.begin + offset];
            PartialCrack::new(piece.begin, piece.end, pivot)
        });
        let swaps = crack.step(cracked.data_mut(), budget);
        if crack.is_complete() {
            let pivot = crack.pivot();
            let split = crack.split();
            self.pending.remove(&piece.begin);
            // A pivot of 0 cannot create a useful boundary (nothing is
            // below it); skip installing it.
            if pivot > 0 {
                cracked.index_mut().insert(pivot, split);
            }
        }
        swaps
    }
}

impl RangeIndex for ProgressiveStochasticCracking {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        if low > high || self.column.is_empty() {
            return QueryResult::answer_only(pi_storage::ScanResult::EMPTY, self.status().phase);
        }
        let budget = self.allowed_swaps;
        let spent_low = self.crack_for_bound(low, budget);
        let spent_high = if high < Value::MAX {
            self.crack_for_bound(high + 1, budget.saturating_sub(spent_low))
        } else {
            0
        };
        let cracked = self.cracked.as_mut().expect("created by crack_for_bound");
        let answer = cracked.answer(low, high);
        QueryResult {
            sum: answer.result.sum,
            count: answer.result.count,
            phase: Phase::Refinement,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: spent_low + spent_high,
            elements_scanned: answer.elements_scanned,
        }
    }

    fn status(&self) -> IndexStatus {
        match &self.cracked {
            None => IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: 0.0,
                phase_progress: 0.0,
                converged: false,
            },
            Some(c) => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: c.refinement_progress(),
                converged: false,
            },
        }
    }

    fn name(&self) -> &'static str {
        "progressive-stochastic-cracking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::{check_correctness_under_workload, random_column, ReferenceIndex};

    #[test]
    fn answers_match_reference_under_random_workload() {
        check_correctness_under_workload(
            |col| Box::new(ProgressiveStochasticCracking::new(col)),
            20_000,
            50_000,
            200,
        );
    }

    #[test]
    fn swap_budget_limits_per_query_reorganisation() {
        // Make the column large relative to a tiny L2 so partial cracks
        // are actually exercised; 1% allowed swaps.
        let col = Arc::new(random_column(100_000, 1_000_000, 31));
        let reference = ReferenceIndex::new(&col);
        let mut idx = ProgressiveStochasticCracking::with_config(Arc::clone(&col), 3, 0.01, 1_024);
        let allowance = idx.allowed_swaps();
        for q in 0..30u64 {
            let low = (q * 31_337) % 900_000;
            let high = low + 50_000;
            let r = idx.query(low, high);
            assert_eq!(r.scan_result(), reference.query(low, high));
            assert!(
                r.indexing_ops <= allowance,
                "query spent {} swaps, allowance {}",
                r.indexing_ops,
                allowance
            );
        }
    }

    #[test]
    fn partial_cracks_eventually_complete() {
        let col = Arc::new(random_column(50_000, 100_000, 32));
        let reference = ReferenceIndex::new(&col);
        let mut idx = ProgressiveStochasticCracking::with_config(Arc::clone(&col), 3, 0.02, 1_024);
        // Hammer the same region; the pending crack on the big initial
        // piece must finish and install a boundary.
        for _ in 0..200 {
            let r = idx.query(10_000, 20_000);
            assert_eq!(r.scan_result(), reference.query(10_000, 20_000));
        }
        assert!(idx.cracked.as_ref().unwrap().index().boundary_count() > 0);
        assert!(idx.status().phase_progress > 0.0);
    }

    #[test]
    fn small_columns_behave_like_standard_cracking() {
        // Every piece fits the (default) L2 budget, so bounds are cracked
        // exactly and repeated queries stop doing work.
        let col = Arc::new(random_column(5_000, 5_000, 33));
        let mut idx = ProgressiveStochasticCracking::new(col);
        idx.query(1_000, 2_000);
        let again = idx.query(1_000, 2_000);
        assert_eq!(again.indexing_ops, 0);
        assert_eq!(idx.pending_cracks(), 0);
    }

    #[test]
    #[should_panic(expected = "swap fraction")]
    fn zero_swap_fraction_rejected() {
        let col = Arc::new(random_column(100, 100, 34));
        let _ = ProgressiveStochasticCracking::with_config(col, 1, 0.0, 1_024);
    }
}
