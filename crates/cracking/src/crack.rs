//! Partitioning kernels ("cracking kernels") shared by the adaptive
//! indexing baselines.
//!
//! Every kernel partitions a slice region around a pivot with the
//! predicate `< pivot`: after the call, all elements smaller than the
//! pivot precede all elements greater than or equal to it, and the
//! returned split position is the first index of the `>= pivot` region.
//!
//! Two kernels are provided:
//!
//! * [`crack_in_two`] — the classical two-cursor Hoare-style partition used
//!   by standard cracking. It runs to completion and reports the number of
//!   element swaps performed (the unit the *progressive stochastic
//!   cracking* baseline budgets).
//! * [`PartialCrack`] — the same partition as a resumable state machine.
//!   A crack can be advanced by at most `max_swaps` swaps per call, which
//!   is exactly how progressive stochastic cracking (Halim et al.) limits
//!   the per-query reorganisation cost on pieces larger than the L2 cache.

use pi_storage::Value;

/// Outcome of a completed crack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrackResult {
    /// First index of the `>= pivot` region.
    pub split: usize,
    /// Number of element swaps that were performed.
    pub swaps: u64,
}

/// Partitions `data[begin..end)` in place around `pivot` (predicate
/// `< pivot`) and returns the split position together with the number of
/// swaps performed.
///
/// The kernel is the textbook two-cursor partition: advance the left
/// cursor over elements already `< pivot`, retreat the right cursor over
/// elements already `>= pivot`, and swap when both cursors stop.
///
/// # Panics
/// Panics when `begin > end` or `end > data.len()`.
pub fn crack_in_two(data: &mut [Value], begin: usize, end: usize, pivot: Value) -> CrackResult {
    assert!(begin <= end && end <= data.len(), "invalid crack range");
    let mut lo = begin;
    let mut hi = end;
    let mut swaps = 0u64;
    while lo < hi {
        if data[lo] < pivot {
            lo += 1;
        } else if data[hi - 1] >= pivot {
            hi -= 1;
        } else {
            data.swap(lo, hi - 1);
            swaps += 1;
            lo += 1;
            hi -= 1;
        }
    }
    CrackResult { split: lo, swaps }
}

/// Partitions `data[begin..end)` in place so that elements land in three
/// regions: `< low`, `in [low, high]`, and `> high`. Returns the two split
/// positions `(first_in_range, first_above_range)` and the number of swaps.
///
/// Standard cracking uses this for a fresh piece hit by both bounds of a
/// range query, saving one pass compared to two successive
/// [`crack_in_two`] calls.
pub fn crack_in_three(
    data: &mut [Value],
    begin: usize,
    end: usize,
    low: Value,
    high: Value,
) -> (usize, usize, u64) {
    debug_assert!(low <= high);
    // First pass: partition around `low` (predicate `< low`).
    let first = crack_in_two(data, begin, end, low);
    // Second pass: partition the upper part around `high + 1`
    // (predicate `<= high`). `high == Value::MAX` means nothing is above.
    if high == Value::MAX {
        return (first.split, end, first.swaps);
    }
    let second = crack_in_two(data, first.split, end, high + 1);
    (first.split, second.split, first.swaps + second.swaps)
}

/// A [`crack_in_two`] partition that can be advanced a bounded number of
/// swaps at a time and resumed on a later query.
///
/// While the crack is incomplete the region `[begin, end)` is in an
/// intermediate state: the prefix `[begin, lo)` is already `< pivot`, the
/// suffix `[hi, end)` is already `>= pivot`, and `[lo, hi)` is still
/// unpartitioned. Queries that touch the region must therefore scan all of
/// `[begin, end)` until [`PartialCrack::step`] reports completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialCrack {
    pivot: Value,
    begin: usize,
    end: usize,
    lo: usize,
    hi: usize,
}

impl PartialCrack {
    /// Starts a resumable crack of `data[begin..end)` around `pivot`.
    pub fn new(begin: usize, end: usize, pivot: Value) -> Self {
        assert!(begin <= end, "invalid crack range");
        PartialCrack {
            pivot,
            begin,
            end,
            lo: begin,
            hi: end,
        }
    }

    /// The pivot this crack partitions around.
    pub fn pivot(&self) -> Value {
        self.pivot
    }

    /// The region `[begin, end)` being cracked.
    pub fn range(&self) -> (usize, usize) {
        (self.begin, self.end)
    }

    /// `true` once the partition is complete and
    /// [`PartialCrack::split`] is valid.
    pub fn is_complete(&self) -> bool {
        self.lo >= self.hi
    }

    /// The final split position. Only meaningful once
    /// [`PartialCrack::is_complete`] returns `true`.
    pub fn split(&self) -> usize {
        debug_assert!(self.is_complete());
        self.lo
    }

    /// Advances the partition by at most `max_swaps` element swaps.
    /// Returns the number of swaps performed. Cursor movement over
    /// elements that are already on the correct side is not counted as a
    /// swap, mirroring the "allowed swaps" budget of progressive
    /// stochastic cracking.
    pub fn step(&mut self, data: &mut [Value], max_swaps: u64) -> u64 {
        let mut swaps = 0u64;
        while self.lo < self.hi {
            if data[self.lo] < self.pivot {
                self.lo += 1;
            } else if data[self.hi - 1] >= self.pivot {
                self.hi -= 1;
            } else {
                if swaps >= max_swaps {
                    return swaps;
                }
                data.swap(self.lo, self.hi - 1);
                swaps += 1;
                self.lo += 1;
                self.hi -= 1;
            }
        }
        swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partitioned(data: &[Value], begin: usize, end: usize, split: usize, pivot: Value) {
        assert!(data[begin..split].iter().all(|&v| v < pivot));
        assert!(data[split..end].iter().all(|&v| v >= pivot));
    }

    #[test]
    fn crack_in_two_partitions_around_pivot() {
        let mut data = vec![6, 3, 14, 13, 2, 1, 8, 19, 7, 12, 11, 4, 16, 9];
        let n = data.len();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let r = crack_in_two(&mut data, 0, n, 10);
        check_partitioned(&data, 0, n, r.split, 10);
        assert_eq!(r.split, sorted.iter().filter(|&&v| v < 10).count());
        let mut after = data.clone();
        after.sort_unstable();
        assert_eq!(after, sorted, "cracking must be a permutation");
    }

    #[test]
    fn crack_in_two_handles_already_partitioned_data() {
        let mut data = vec![1, 2, 3, 10, 11, 12];
        let r = crack_in_two(&mut data, 0, 6, 5);
        assert_eq!(r.split, 3);
        assert_eq!(r.swaps, 0);
    }

    #[test]
    fn crack_in_two_handles_all_below_and_all_above() {
        let mut data = vec![1, 2, 3];
        assert_eq!(crack_in_two(&mut data, 0, 3, 100).split, 3);
        assert_eq!(crack_in_two(&mut data, 0, 3, 0).split, 0);
    }

    #[test]
    fn crack_in_two_on_empty_and_single_ranges() {
        let mut data = vec![5, 4];
        // Empty range: split equals the range start, no swaps.
        assert_eq!(crack_in_two(&mut data, 1, 1, 4).split, 1);
        // Single element 5: below / at / above the pivot.
        assert_eq!(crack_in_two(&mut data, 0, 1, 6).split, 1);
        assert_eq!(crack_in_two(&mut data, 0, 1, 5).split, 0);
        assert_eq!(crack_in_two(&mut data, 0, 1, 4).split, 0);
    }

    #[test]
    fn crack_in_three_produces_three_regions() {
        let mut data = vec![6, 3, 14, 13, 2, 1, 8, 19, 7, 12, 11, 4, 16, 9];
        let n = data.len();
        let (a, b, _) = crack_in_three(&mut data, 0, n, 5, 11);
        assert!(data[..a].iter().all(|&v| v < 5));
        assert!(data[a..b].iter().all(|&v| (5..=11).contains(&v)));
        assert!(data[b..].iter().all(|&v| v > 11));
    }

    #[test]
    fn crack_in_three_with_max_high_bound() {
        let mut data = vec![9, 1, 5, 7];
        let (a, b, _) = crack_in_three(&mut data, 0, 4, 5, Value::MAX);
        assert_eq!(b, 4);
        assert!(data[..a].iter().all(|&v| v < 5));
        assert!(data[a..b].iter().all(|&v| v >= 5));
    }

    #[test]
    fn partial_crack_converges_to_same_split_as_full_crack() {
        let mut full = vec![6, 3, 14, 13, 2, 1, 8, 19, 7, 12, 11, 4, 16, 9];
        let mut partial = full.clone();
        let n = full.len();
        let expected = crack_in_two(&mut full, 0, n, 10);

        let mut crack = PartialCrack::new(0, n, 10);
        let mut total_swaps = 0;
        while !crack.is_complete() {
            total_swaps += crack.step(&mut partial, 1);
        }
        assert_eq!(crack.split(), expected.split);
        assert_eq!(total_swaps, expected.swaps);
        check_partitioned(&partial, 0, n, crack.split(), 10);
    }

    #[test]
    fn partial_crack_respects_swap_budget() {
        let mut data: Vec<Value> = (0..1000).rev().collect();
        let mut crack = PartialCrack::new(0, 1000, 500);
        let swaps = crack.step(&mut data, 10);
        assert_eq!(swaps, 10);
        assert!(!crack.is_complete());
    }

    #[test]
    fn partial_crack_zero_budget_makes_no_swaps() {
        let mut data = vec![9, 1, 8, 2];
        let mut crack = PartialCrack::new(0, 4, 5);
        assert_eq!(crack.step(&mut data, 0), 0);
        assert_eq!(data, vec![9, 1, 8, 2]);
    }

    #[test]
    #[should_panic(expected = "invalid crack range")]
    fn crack_in_two_rejects_reversed_range() {
        let mut data = vec![1, 2, 3];
        let _ = crack_in_two(&mut data, 2, 1, 5);
    }
}
