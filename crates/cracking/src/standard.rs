//! Standard Database Cracking (Idreos et al., CIDR 2007) — the original
//! adaptive indexing technique and the `STD` baseline of the paper.
//!
//! The first query copies the base column into a cracker column. Every
//! query then cracks the column at its two predicate bounds, so the pieces
//! relevant to the observed workload keep getting smaller. Because pivots
//! are exactly the query predicates, performance depends heavily on the
//! workload: sequential patterns leave huge unrefined pieces that cause the
//! performance spikes the paper's robustness metric measures.

use std::sync::Arc;

use pi_core::result::{IndexStatus, Phase, QueryResult};
use pi_core::RangeIndex;
use pi_storage::{Column, Value};

use crate::cracked_column::CrackedColumn;

/// Standard cracking baseline (`STD` in the paper's tables).
pub struct StandardCracking {
    column: Arc<Column>,
    cracked: Option<CrackedColumn>,
    queries_executed: u64,
}

impl StandardCracking {
    /// Creates the baseline over `column`. No work happens until the first
    /// query.
    pub fn new(column: Arc<Column>) -> Self {
        StandardCracking {
            column,
            cracked: None,
            queries_executed: 0,
        }
    }

    /// Number of crack boundaries installed so far.
    pub fn boundary_count(&self) -> usize {
        self.cracked
            .as_ref()
            .map(|c| c.index().boundary_count())
            .unwrap_or(0)
    }

    fn cracked_mut(&mut self) -> &mut CrackedColumn {
        if self.cracked.is_none() {
            self.cracked = Some(CrackedColumn::new(&self.column));
        }
        self.cracked.as_mut().expect("just initialised")
    }
}

impl RangeIndex for StandardCracking {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        if low > high || self.column.is_empty() {
            return QueryResult::answer_only(pi_storage::ScanResult::EMPTY, self.status().phase);
        }
        let cracked = self.cracked_mut();
        let (_, swaps_lo) = cracked.crack_exact(low);
        let swaps_hi = if high == Value::MAX {
            0
        } else {
            cracked.crack_exact(high + 1).1
        };
        let answer = cracked.answer(low, high);
        QueryResult {
            sum: answer.result.sum,
            count: answer.result.count,
            phase: Phase::Refinement,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: swaps_lo + swaps_hi,
            elements_scanned: answer.elements_scanned,
        }
    }

    fn status(&self) -> IndexStatus {
        match &self.cracked {
            None => IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: 0.0,
                phase_progress: 0.0,
                converged: false,
            },
            Some(c) => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: c.refinement_progress(),
                converged: false,
            },
        }
    }

    fn name(&self) -> &'static str {
        "standard-cracking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::{check_correctness_under_workload, random_column, ReferenceIndex};

    #[test]
    fn answers_match_reference_under_random_workload() {
        let converged = check_correctness_under_workload(
            |col| Box::new(StandardCracking::new(col)),
            20_000,
            50_000,
            200,
        );
        // Cracking never declares convergence.
        assert!(!converged);
    }

    #[test]
    fn boundaries_accumulate_with_queries() {
        let col = Arc::new(random_column(10_000, 10_000, 11));
        let mut idx = StandardCracking::new(Arc::clone(&col));
        assert_eq!(idx.boundary_count(), 0);
        idx.query(1_000, 2_000);
        assert_eq!(idx.boundary_count(), 2);
        idx.query(5_000, 6_000);
        assert_eq!(idx.boundary_count(), 4);
        // Repeating a query adds no new boundaries.
        idx.query(1_000, 2_000);
        assert_eq!(idx.boundary_count(), 4);
    }

    #[test]
    fn repeated_query_gets_cheaper() {
        let col = Arc::new(random_column(50_000, 100_000, 12));
        let mut idx = StandardCracking::new(col);
        let first = idx.query(10_000, 20_000);
        let second = idx.query(10_000, 20_000);
        assert_eq!(first.scan_result(), second.scan_result());
        // The first query pays for the cracks; repeating it does no
        // reorganisation work and touches no more data than before.
        assert!(first.indexing_ops > 0);
        assert_eq!(second.indexing_ops, 0);
        assert!(second.elements_scanned <= first.elements_scanned);
    }

    #[test]
    fn point_queries_and_extreme_bounds() {
        let col = Arc::new(random_column(5_000, 1_000, 13));
        let reference = ReferenceIndex::new(&col);
        let mut idx = StandardCracking::new(Arc::clone(&col));
        assert_eq!(
            idx.point_query(500).scan_result(),
            reference.query(500, 500)
        );
        assert_eq!(
            idx.query(0, Value::MAX).scan_result(),
            reference.query(0, Value::MAX)
        );
        assert_eq!(idx.query(10, 5).count, 0);
    }

    #[test]
    fn status_transitions_after_first_query() {
        let col = Arc::new(random_column(1_000, 1_000, 14));
        let mut idx = StandardCracking::new(col);
        assert_eq!(idx.status().phase, Phase::Creation);
        assert_eq!(idx.status().fraction_indexed, 0.0);
        idx.query(100, 200);
        let status = idx.status();
        assert_eq!(status.phase, Phase::Refinement);
        assert_eq!(status.fraction_indexed, 1.0);
        assert!(!status.converged);
    }
}
