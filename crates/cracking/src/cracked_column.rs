//! The cracker column: a mutable copy of the base column plus its
//! [`CrackerIndex`], with a query-answering routine that works for *any*
//! intermediate cracking state.
//!
//! All adaptive indexing baselines share this structure; they differ only
//! in *which* cracks they perform per query (exact query bounds, random
//! pivots, swap-capped partial cracks, up-front partitioning, …).

use pi_storage::scan::{self, ScanResult};
use pi_storage::{Column, Value};

use crate::crack::{crack_in_two, CrackResult};
use crate::cracker_index::{CrackerIndex, Piece};

/// Mutable copy of a column plus the crack boundaries discovered so far.
#[derive(Debug, Clone)]
pub struct CrackedColumn {
    data: Vec<Value>,
    index: CrackerIndex,
}

/// Result of answering one query against a [`CrackedColumn`], including
/// the number of elements that had to be touched (for instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrackedAnswer {
    /// The aggregate.
    pub result: ScanResult,
    /// Number of elements read while answering.
    pub elements_scanned: u64,
}

impl CrackedColumn {
    /// Copies the base column into a fresh cracker column with no cracks.
    pub fn new(column: &Column) -> Self {
        CrackedColumn {
            data: column.data().to_vec(),
            index: CrackerIndex::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the column holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The cracker column contents (reordered by cracks, never mutated in
    /// value).
    pub fn data(&self) -> &[Value] {
        &self.data
    }

    /// Mutable access for algorithms that run their own partitioning
    /// kernels (partial cracks, radix partitioning).
    pub fn data_mut(&mut self) -> &mut Vec<Value> {
        &mut self.data
    }

    /// The crack boundaries discovered so far.
    pub fn index(&self) -> &CrackerIndex {
        &self.index
    }

    /// Mutable access to the crack boundaries.
    pub fn index_mut(&mut self) -> &mut CrackerIndex {
        &mut self.index
    }

    /// Ensures an exact boundary exists for `pivot` (all elements `< pivot`
    /// before it), cracking the containing piece when necessary. Returns
    /// the boundary position and the number of swaps performed (0 when the
    /// boundary already existed).
    pub fn crack_exact(&mut self, pivot: Value) -> (usize, u64) {
        if let Some(pos) = self.index.position_of(pivot) {
            return (pos, 0);
        }
        let piece = self.index.piece_for(pivot, self.data.len());
        let CrackResult { split, swaps } =
            crack_in_two(&mut self.data, piece.begin, piece.end, pivot);
        self.index.insert(pivot, split);
        (split, swaps)
    }

    /// The piece that currently contains the boundary position for `key`.
    pub fn piece_for(&self, key: Value) -> Piece {
        self.index.piece_for(key, self.data.len())
    }

    /// Answers `SELECT SUM(a), COUNT(a) WHERE a BETWEEN low AND high`
    /// using the boundaries discovered so far. Pieces in which a bound
    /// falls without an exact boundary are scanned with a predicate; the
    /// fully-qualified middle region is summed positionally.
    pub fn answer(&self, low: Value, high: Value) -> CrackedAnswer {
        let n = self.data.len();
        if low > high || n == 0 {
            return CrackedAnswer {
                result: ScanResult::EMPTY,
                elements_scanned: 0,
            };
        }

        // Low side: positions >= inner_start are guaranteed >= low.
        let (lo_piece, lo_exact) = self.index.lookup(low, n);
        let inner_start = if lo_exact {
            lo_piece.begin
        } else {
            lo_piece.end
        };

        // High side: positions < inner_end are guaranteed <= high.
        let (hi_piece, hi_exact, inner_end) = if high == Value::MAX {
            (Piece { begin: n, end: n }, true, n)
        } else {
            let (piece, exact) = self.index.lookup(high + 1, n);
            let end = piece.begin;
            (piece, exact, end)
        };

        let mut result = ScanResult::EMPTY;
        let mut scanned = 0u64;

        if !lo_exact && !hi_exact && lo_piece == hi_piece {
            // Both bounds fall into the same unrefined piece: one filtered
            // scan of that piece answers the query.
            result = result.merge(scan::scan_range_sum(
                &self.data[lo_piece.begin..lo_piece.end],
                low,
                high,
            ));
            scanned += lo_piece.len() as u64;
            return CrackedAnswer {
                result,
                elements_scanned: scanned,
            };
        }

        if !lo_exact {
            // Elements in the low boundary piece are all <= high (they sit
            // below the high boundary piece), so only the low predicate
            // matters — but using both keeps the reasoning local and the
            // predicated scan cost identical.
            result = result.merge(scan::scan_range_sum(
                &self.data[lo_piece.begin..lo_piece.end],
                low,
                high,
            ));
            scanned += lo_piece.len() as u64;
        }
        if !hi_exact {
            result = result.merge(scan::scan_range_sum(
                &self.data[hi_piece.begin..hi_piece.end],
                low,
                high,
            ));
            scanned += hi_piece.len() as u64;
        }
        if inner_start < inner_end {
            result = result.merge(scan::sum_positions(&self.data, inner_start, inner_end));
            scanned += (inner_end - inner_start) as u64;
        }
        CrackedAnswer {
            result,
            elements_scanned: scanned,
        }
    }

    /// Fraction of refinement progress, measured as `1 - largest_piece/n`.
    /// Purely informational (used by `IndexStatus::phase_progress`).
    pub fn refinement_progress(&self) -> f64 {
        let n = self.data.len();
        if n == 0 {
            return 1.0;
        }
        1.0 - self.index.largest_piece(n) as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::{random_column, ReferenceIndex, TestRng};

    #[test]
    fn answer_on_uncracked_column_matches_scan() {
        let col = random_column(5_000, 10_000, 1);
        let reference = ReferenceIndex::new(&col);
        let cracked = CrackedColumn::new(&col);
        let ans = cracked.answer(1_000, 4_000);
        assert_eq!(ans.result, reference.query(1_000, 4_000));
        assert_eq!(ans.elements_scanned, 5_000);
    }

    #[test]
    fn answer_after_exact_cracks_uses_positional_sum() {
        let col = random_column(5_000, 10_000, 2);
        let reference = ReferenceIndex::new(&col);
        let mut cracked = CrackedColumn::new(&col);
        cracked.crack_exact(1_000);
        cracked.crack_exact(4_001);
        let ans = cracked.answer(1_000, 4_000);
        assert_eq!(ans.result, reference.query(1_000, 4_000));
        // Only the qualifying middle region is touched.
        assert_eq!(ans.elements_scanned, ans.result.count);
    }

    #[test]
    fn answer_with_partially_cracked_bounds() {
        let col = random_column(5_000, 10_000, 3);
        let reference = ReferenceIndex::new(&col);
        let mut cracked = CrackedColumn::new(&col);
        // Crack somewhere unrelated to the query bounds.
        cracked.crack_exact(2_500);
        for (low, high) in [(0, 9_999), (100, 2_499), (2_500, 7_000), (2_400, 2_600)] {
            let ans = cracked.answer(low, high);
            assert_eq!(ans.result, reference.query(low, high), "[{low}, {high}]");
        }
    }

    #[test]
    fn answer_handles_degenerate_ranges() {
        let col = random_column(100, 1_000, 4);
        let cracked = CrackedColumn::new(&col);
        assert_eq!(cracked.answer(10, 5).result, ScanResult::EMPTY);
        let all = cracked.answer(0, Value::MAX).result;
        assert_eq!(all.count, 100);
        assert_eq!(all.sum, col.total_sum());
    }

    #[test]
    fn crack_exact_is_idempotent() {
        let col = random_column(1_000, 1_000, 5);
        let mut cracked = CrackedColumn::new(&col);
        let (pos1, swaps1) = cracked.crack_exact(500);
        let (pos2, swaps2) = cracked.crack_exact(500);
        assert_eq!(pos1, pos2);
        assert!(swaps1 > 0 || pos1 == 0 || pos1 == 1_000);
        assert_eq!(swaps2, 0);
    }

    #[test]
    fn random_cracks_never_change_answers() {
        let col = random_column(3_000, 5_000, 6);
        let reference = ReferenceIndex::new(&col);
        let mut cracked = CrackedColumn::new(&col);
        let mut rng = TestRng::new(99);
        for _ in 0..50 {
            cracked.crack_exact(rng.below(5_000));
            let low = rng.below(5_000);
            let high = low + rng.below(500);
            assert_eq!(cracked.answer(low, high).result, reference.query(low, high));
        }
    }

    #[test]
    fn refinement_progress_grows_with_cracks() {
        let col = random_column(1_000, 1_000, 7);
        let mut cracked = CrackedColumn::new(&col);
        assert_eq!(cracked.refinement_progress(), 0.0);
        cracked.crack_exact(500);
        let p1 = cracked.refinement_progress();
        cracked.crack_exact(250);
        cracked.crack_exact(750);
        assert!(cracked.refinement_progress() >= p1);
    }
}
