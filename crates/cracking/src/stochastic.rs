//! Stochastic Cracking (Halim et al., PVLDB 2012) — the `STC` baseline.
//!
//! Standard cracking derives its pivots from the query predicates, which
//! makes its performance heavily workload-dependent: a sequential workload
//! keeps hitting one huge unrefined piece. Stochastic cracking instead
//! cracks the piece a query bound falls into around a *randomly chosen
//! pivot* (the MDD1R variant: one random crack per touched piece per
//! query), so reorganisation progress is independent of where the
//! predicates land. Once a piece is small enough, it is cracked exactly at
//! the query bound so the boundary becomes precise.

use std::sync::Arc;

use pi_core::result::{IndexStatus, Phase, QueryResult};
use pi_core::RangeIndex;
use pi_storage::{Column, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cracked_column::CrackedColumn;

/// Pieces at or below this many elements are cracked exactly at the query
/// bound instead of around another random pivot. Mirrors the "crack small
/// pieces precisely" switch of the original implementation (pieces that
/// fit comfortably in cache are cheap to crack exactly).
pub const DEFAULT_EXACT_CRACK_THRESHOLD: usize = 1 << 14;

/// Stochastic cracking baseline (`STC` in the paper's tables).
pub struct StochasticCracking {
    column: Arc<Column>,
    cracked: Option<CrackedColumn>,
    rng: StdRng,
    exact_threshold: usize,
    queries_executed: u64,
}

impl StochasticCracking {
    /// Creates the baseline with the default small-piece threshold and a
    /// fixed RNG seed (runs are reproducible; vary the seed with
    /// [`StochasticCracking::with_seed`] to study variance).
    pub fn new(column: Arc<Column>) -> Self {
        Self::with_seed(column, 0x5EED)
    }

    /// Creates the baseline with an explicit RNG seed.
    pub fn with_seed(column: Arc<Column>, seed: u64) -> Self {
        Self::with_config(column, seed, DEFAULT_EXACT_CRACK_THRESHOLD)
    }

    /// Creates the baseline with an explicit seed and small-piece
    /// threshold.
    pub fn with_config(column: Arc<Column>, seed: u64, exact_threshold: usize) -> Self {
        StochasticCracking {
            column,
            cracked: None,
            rng: StdRng::seed_from_u64(seed),
            exact_threshold: exact_threshold.max(1),
            queries_executed: 0,
        }
    }

    fn cracked_mut(&mut self) -> &mut CrackedColumn {
        if self.cracked.is_none() {
            self.cracked = Some(CrackedColumn::new(&self.column));
        }
        self.cracked.as_mut().expect("just initialised")
    }

    /// Cracks on behalf of one query bound: a random crack of the piece the
    /// bound falls into while the piece is large, an exact crack once it is
    /// small. Returns the number of swaps performed.
    fn crack_for_bound(&mut self, bound: Value) -> u64 {
        let exact_threshold = self.exact_threshold;
        // Pre-draw randomness so the RNG borrow does not overlap the
        // cracker borrow.
        let random_draw: u64 = self.rng.gen();
        let cracked = self
            .cracked
            .get_or_insert_with(|| CrackedColumn::new(&self.column));
        if cracked.index().position_of(bound).is_some() {
            return 0;
        }
        let piece = cracked.piece_for(bound);
        if piece.is_empty() {
            cracked.index_mut().insert(bound, piece.begin);
            return 0;
        }
        if piece.len() <= exact_threshold {
            return cracked.crack_exact(bound).1;
        }
        // Random crack (MDD1R): pivot is a randomly picked element of the
        // piece, so the crack always falls inside the piece's value range.
        let offset = (random_draw % piece.len() as u64) as usize;
        let pivot = cracked.data()[piece.begin + offset];
        if pivot == 0 {
            // Cracking at 0 cannot make progress (every value is >= 0);
            // fall back to an exact crack at the bound.
            return cracked.crack_exact(bound).1;
        }
        cracked.crack_exact(pivot).1
    }
}

impl RangeIndex for StochasticCracking {
    fn query(&mut self, low: Value, high: Value) -> QueryResult {
        self.queries_executed += 1;
        if low > high || self.column.is_empty() {
            return QueryResult::answer_only(pi_storage::ScanResult::EMPTY, self.status().phase);
        }
        let mut swaps = self.crack_for_bound(low);
        if high < Value::MAX {
            swaps += self.crack_for_bound(high + 1);
        }
        let cracked = self.cracked_mut();
        let answer = cracked.answer(low, high);
        QueryResult {
            sum: answer.result.sum,
            count: answer.result.count,
            phase: Phase::Refinement,
            delta: 0.0,
            predicted_cost: None,
            indexing_ops: swaps,
            elements_scanned: answer.elements_scanned,
        }
    }

    fn status(&self) -> IndexStatus {
        match &self.cracked {
            None => IndexStatus {
                phase: Phase::Creation,
                fraction_indexed: 0.0,
                phase_progress: 0.0,
                converged: false,
            },
            Some(c) => IndexStatus {
                phase: Phase::Refinement,
                fraction_indexed: 1.0,
                phase_progress: c.refinement_progress(),
                converged: false,
            },
        }
    }

    fn name(&self) -> &'static str {
        "stochastic-cracking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::testing::{check_correctness_under_workload, random_column, ReferenceIndex};

    #[test]
    fn answers_match_reference_under_random_workload() {
        check_correctness_under_workload(
            |col| Box::new(StochasticCracking::new(col)),
            20_000,
            50_000,
            200,
        );
    }

    #[test]
    fn sequential_workload_still_makes_progress() {
        // A strictly sequential workload is standard cracking's worst case;
        // stochastic cracking must keep shrinking the largest piece anyway.
        let col = Arc::new(random_column(100_000, 1_000_000, 21));
        let reference = ReferenceIndex::new(&col);
        let mut idx = StochasticCracking::new(Arc::clone(&col));
        for q in 0..50u64 {
            let low = q * 10_000;
            let high = low + 9_999;
            assert_eq!(
                idx.query(low, high).scan_result(),
                reference.query(low, high)
            );
        }
        assert!(idx.status().phase_progress > 0.0);
    }

    #[test]
    fn different_seeds_produce_same_answers() {
        let col = Arc::new(random_column(10_000, 10_000, 22));
        let reference = ReferenceIndex::new(&col);
        let mut a = StochasticCracking::with_seed(Arc::clone(&col), 1);
        let mut b = StochasticCracking::with_seed(Arc::clone(&col), 2);
        for (low, high) in [(0, 100), (5_000, 6_000), (9_000, 9_999), (42, 42)] {
            let expected = reference.query(low, high);
            assert_eq!(a.query(low, high).scan_result(), expected);
            assert_eq!(b.query(low, high).scan_result(), expected);
        }
    }

    #[test]
    fn small_pieces_get_exact_boundaries() {
        // With a tiny exact-crack threshold of the full column size, the
        // behaviour degenerates to standard cracking: bounds get exact
        // boundaries immediately.
        let col = Arc::new(random_column(5_000, 5_000, 23));
        let mut idx = StochasticCracking::with_config(Arc::clone(&col), 7, usize::MAX);
        idx.query(1_000, 2_000);
        assert!(idx
            .cracked
            .as_ref()
            .unwrap()
            .index()
            .position_of(1_000)
            .is_some());
    }

    #[test]
    fn never_reports_convergence() {
        let col = Arc::new(random_column(2_000, 2_000, 24));
        let mut idx = StochasticCracking::new(col);
        for q in 0..100 {
            idx.query(q * 17 % 2_000, (q * 17 % 2_000) + 50);
        }
        assert!(!idx.is_converged());
    }
}
