//! # pi-cracking — adaptive indexing baselines
//!
//! Rust re-implementations of the adaptive indexing techniques the
//! Progressive Indexes paper compares against (Section 4.4), plus the two
//! non-adaptive reference points:
//!
//! | Paper label | Technique | Type |
//! |---|---|---|
//! | `FS`   | [`FullScan`] — predicated full scans, no index | baseline |
//! | `FI`   | [`FullIndex`] — sort + B+-tree on the first query | baseline |
//! | `STD`  | [`StandardCracking`] — crack at the query bounds | adaptive |
//! | `STC`  | [`StochasticCracking`] — crack at random pivots | adaptive |
//! | `PSTC` | [`ProgressiveStochasticCracking`] — swap-capped stochastic cracking | adaptive |
//! | `CGI`  | [`CoarseGranularIndex`] — equal-width partitioning up front, then cracking | adaptive |
//! | `AA`   | [`AdaptiveAdaptiveIndexing`] — partition first query, adaptively refine | adaptive |
//!
//! Every baseline implements the same [`pi_core::RangeIndex`] trait as the
//! progressive indexes, so the experiment harness (`pi-experiments`) can
//! run identical workloads over the whole algorithm zoo.
//!
//! The implementations follow the algorithm descriptions in the cited
//! papers rather than the original C++ sources; `DESIGN.md` documents the
//! places where a simplified but behaviour-preserving variant was chosen.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use pi_core::RangeIndex;
//! use pi_cracking::StandardCracking;
//!
//! let column = Arc::new(pi_core::testing::random_column(10_000, 10_000, 1));
//! let mut index = StandardCracking::new(Arc::clone(&column));
//! let result = index.query(2_000, 4_000);
//! assert!(result.count > 0);
//! // Cracking refines as a side effect: the same query touches less data
//! // the second time around.
//! let again = index.query(2_000, 4_000);
//! assert!(again.elements_scanned <= result.elements_scanned);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive_adaptive;
pub mod coarse_granular;
pub mod crack;
pub mod cracked_column;
pub mod cracker_index;
pub mod full;
pub mod progressive_stochastic;
pub mod standard;
pub mod stochastic;

pub use adaptive_adaptive::AdaptiveAdaptiveIndexing;
pub use coarse_granular::CoarseGranularIndex;
pub use cracked_column::CrackedColumn;
pub use cracker_index::CrackerIndex;
pub use full::{FullIndex, FullScan};
pub use progressive_stochastic::ProgressiveStochasticCracking;
pub use standard::StandardCracking;
pub use stochastic::StochasticCracking;
