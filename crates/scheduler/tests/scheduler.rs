//! Integration tests for the scheduler: backpressure, graceful shutdown
//! with in-flight batches, batch coalescing with error isolation, and
//! work-stealing fairness. Deterministic mock executors stand in for the
//! engine so every scenario is forced, not raced.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use pi_sched::{BatchExecutor, Job, Pool, Server, ServerConfig, SubmitError};

/// Doubles every request; can be gated so a batch blocks inside the
/// executor until the test releases it, and fails any batch containing
/// the poison value 13.
struct MockExec {
    /// `Some(state)`: batches block while `state == true`.
    gate: Mutex<bool>,
    gate_change: Condvar,
    /// Signals how many batches have *entered* the executor.
    entered: Mutex<usize>,
    entered_change: Condvar,
    batches: AtomicUsize,
    /// Largest single batch this executor was handed (coalescing proof).
    max_batch: AtomicUsize,
}

impl MockExec {
    fn new(gated: bool) -> Self {
        MockExec {
            gate: Mutex::new(gated),
            gate_change: Condvar::new(),
            entered: Mutex::new(0),
            entered_change: Condvar::new(),
            batches: AtomicUsize::new(0),
            max_batch: AtomicUsize::new(0),
        }
    }

    fn release(&self) {
        *self.gate.lock().unwrap() = false;
        self.gate_change.notify_all();
    }

    fn wait_entered(&self, count: usize) {
        let mut entered = self.entered.lock().unwrap();
        while *entered < count {
            entered = self.entered_change.wait(entered).unwrap();
        }
    }
}

impl BatchExecutor for MockExec {
    type Request = u64;
    type Response = u64;
    type Error = String;

    fn execute_batch(&self, batch: &[u64]) -> Result<Vec<u64>, String> {
        {
            let mut entered = self.entered.lock().unwrap();
            *entered += 1;
            self.entered_change.notify_all();
        }
        let mut gate = self.gate.lock().unwrap();
        while *gate {
            gate = self.gate_change.wait(gate).unwrap();
        }
        drop(gate);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(batch.len(), Ordering::Relaxed);
        if batch.contains(&13) {
            return Err("poison".into());
        }
        Ok(batch.iter().map(|x| x * 2).collect())
    }
}

#[test]
fn try_submit_reports_queue_full_backpressure() {
    let exec = Arc::new(MockExec::new(true));
    let server = Server::new(
        Arc::clone(&exec),
        ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    );
    // First submission is popped by the dispatcher and blocks inside the
    // executor, leaving the queue empty again.
    let inflight = server.try_submit(vec![1]).unwrap();
    exec.wait_entered(1);
    // Fill the queue to capacity behind the blocked dispatcher.
    let queued_a = server.try_submit(vec![2]).unwrap();
    let queued_b = server.try_submit(vec![3]).unwrap();
    // Backpressure: the queue is full, and the refused batch comes back
    // to the caller intact for resubmission.
    match server.try_submit(vec![4]) {
        Err(rejected) => {
            assert_eq!(rejected.error, SubmitError::QueueFull);
            assert_eq!(rejected.requests, vec![4]);
        }
        Ok(_) => panic!("expected QueueFull, got a ticket"),
    }
    assert_eq!(server.stats().rejected, 1);
    assert_eq!(server.queue_depth(), 2);
    // Releasing the gate drains everything; every accepted ticket
    // resolves.
    exec.release();
    assert_eq!(inflight.wait(), Ok(vec![2]));
    assert_eq!(queued_a.wait(), Ok(vec![4]));
    assert_eq!(queued_b.wait(), Ok(vec![6]));
    server.shutdown();
}

#[test]
fn graceful_shutdown_resolves_every_inflight_ticket() {
    let exec = Arc::new(MockExec::new(true));
    let server = Server::new(
        Arc::clone(&exec),
        ServerConfig {
            queue_capacity: 64,
            // Coalescing off: every submission is its own engine batch,
            // so the drain visibly executes each one.
            max_coalesced_queries: 1,
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<_> = (0..10)
        .map(|i| server.try_submit(vec![i, i + 100]).unwrap())
        .collect();
    exec.wait_entered(1);
    // Shut down while one batch is in-flight and nine are queued; the
    // gate opens from a helper thread so `shutdown` can drain.
    let release = {
        let exec = Arc::clone(&exec);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            exec.release();
        })
    };
    server.shutdown();
    release.join().unwrap();
    // Every accepted submission was served before shutdown returned.
    assert_eq!(exec.batches.load(Ordering::Relaxed), 10);
    for (i, ticket) in tickets.into_iter().enumerate() {
        let i = i as u64;
        assert_eq!(
            ticket.try_wait(),
            Some(Ok(vec![i * 2, (i + 100) * 2])),
            "ticket {i} unresolved after graceful shutdown"
        );
    }
}

#[test]
fn submits_after_shutdown_are_refused() {
    let exec = Arc::new(MockExec::new(false));
    let server = Arc::new(Server::with_defaults(Arc::clone(&exec)));
    let ticket = server.submit(vec![5]).unwrap();
    assert_eq!(ticket.wait(), Ok(vec![10]));
    // Shutdown through one Arc handle while another still submits — the
    // production shape (clients keep their handles across shutdown).
    let client = Arc::clone(&server);
    server.shutdown();
    assert!(matches!(
        client.try_submit(vec![1]),
        Err(pi_sched::TrySubmitError {
            error: SubmitError::ShutDown,
            ..
        })
    ));
    assert!(matches!(client.submit(vec![1]), Err(SubmitError::ShutDown)));
    // Idempotent.
    client.shutdown();
}

#[test]
fn coalescing_merges_queued_submissions_and_isolates_errors() {
    let exec = Arc::new(MockExec::new(true));
    let server = Server::new(
        Arc::clone(&exec),
        ServerConfig {
            queue_capacity: 64,
            max_coalesced_queries: 256,
            ..ServerConfig::default()
        },
    );
    // Block the dispatcher, then queue ten submissions — including one
    // poisoned — so the drain coalesces them.
    let blocker = server.try_submit(vec![0]).unwrap();
    exec.wait_entered(1);
    let good: Vec<_> = (1..=9)
        .map(|i| server.try_submit(vec![i, i * 10]).unwrap())
        .collect();
    let poisoned = server.try_submit(vec![13]).unwrap();
    exec.release();
    assert_eq!(blocker.wait(), Ok(vec![0]));
    for (i, ticket) in good.into_iter().enumerate() {
        let i = i as u64 + 1;
        assert_eq!(ticket.wait(), Ok(vec![i * 2, i * 20]), "submission {i}");
    }
    // The poisoned submission fails alone; its neighbours above all
    // succeeded despite sharing a coalesced batch with it.
    assert_eq!(poisoned.wait(), Err("poison".into()));
    // Coalescing actually happened: the executor saw one combined batch
    // holding all ten queued submissions (9 × 2 queries + 1 poison).
    assert_eq!(exec.max_batch.load(Ordering::Relaxed), 19);
    assert_eq!(server.stats().accepted, 11);

    // A clean coalesced round (no poison) needs exactly one engine batch
    // for many submissions.
    let before = exec.batches.load(Ordering::Relaxed);
    *exec.gate.lock().unwrap() = true;
    let blocker = server.try_submit(vec![0]).unwrap();
    // Phase 1 entered the executor 12 times (1 blocker + 1 combined + 10
    // isolation retries); wait for this blocker to be the 13th.
    exec.wait_entered(13);
    let round: Vec<_> = (1..=5)
        .map(|i| server.try_submit(vec![i]).unwrap())
        .collect();
    exec.release();
    assert_eq!(blocker.wait(), Ok(vec![0]));
    for (i, ticket) in round.into_iter().enumerate() {
        assert_eq!(ticket.wait(), Ok(vec![(i as u64 + 1) * 2]));
    }
    assert_eq!(
        exec.batches.load(Ordering::Relaxed) - before,
        2,
        "expected one blocker batch plus one coalesced batch"
    );
    server.shutdown();
}

#[test]
fn workers_steal_from_a_loaded_sibling() {
    let pool = Pool::new(4);
    let done = Arc::new(AtomicUsize::new(0));
    // Pin every job to worker 0. The jobs sleep long enough that worker 0
    // cannot finish the queue alone before its siblings wake and steal.
    for _ in 0..32 {
        let done = Arc::clone(&done);
        let job: Job = Box::new(move || {
            std::thread::sleep(Duration::from_millis(2));
            done.fetch_add(1, Ordering::Relaxed);
        });
        pool.spawn(0, job);
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while done.load(Ordering::Relaxed) < 32 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(done.load(Ordering::Relaxed), 32, "jobs lost");
    let stats = pool.stats();
    assert_eq!(stats.total_executed(), 32);
    let stolen: u64 = stats.stolen.iter().sum();
    assert!(
        stolen > 0,
        "no stealing despite a loaded sibling: {stats:?}"
    );
    // Fairness: the victim did not execute everything itself.
    assert!(
        stats.executed[0] < 32,
        "worker 0 executed every job: {stats:?}"
    );
    pool.shutdown();
}

#[test]
fn server_stats_and_registry_agree() {
    let registry = Arc::new(pi_obs::MetricsRegistry::new());
    let exec = Arc::new(MockExec::new(true));
    let server = Server::with_metrics(
        Arc::clone(&exec),
        ServerConfig {
            queue_capacity: 2,
            max_coalesced_queries: 256,
            ..ServerConfig::default()
        },
        Arc::clone(&registry),
    );
    // One in-flight blocker, two queued behind it (they will coalesce),
    // one rejection once the queue is full.
    let blocker = server.try_submit(vec![1]).unwrap();
    exec.wait_entered(1);
    let queued_a = server.try_submit(vec![2]).unwrap();
    let queued_b = server.try_submit(vec![3, 4]).unwrap();
    assert!(server.try_submit(vec![5]).is_err());
    exec.release();
    assert_eq!(blocker.wait(), Ok(vec![2]));
    assert_eq!(queued_a.wait(), Ok(vec![4]));
    assert_eq!(queued_b.wait(), Ok(vec![6, 8]));
    server.shutdown();

    // ServerStats and the registry are two views of the same handles.
    let stats = server.stats();
    let snap = server.metrics().snapshot();
    assert!(Arc::ptr_eq(server.metrics(), &registry));
    assert_eq!(snap.counter("server.accepted"), Some(stats.accepted));
    assert_eq!(snap.counter("server.rejected"), Some(stats.rejected));
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.served_requests, 4);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(
        snap.counter("server.coalesced_batches"),
        Some(stats.coalesced_batches)
    );
    assert_eq!(
        stats.coalesced_batches, 1,
        "the two queued submissions must coalesce into one run"
    );
    // Every delivered run records its size.
    let sizes = snap.histogram("server.coalesced_size").unwrap();
    assert_eq!(sizes.count, stats.executed_batches);
    assert_eq!(sizes.sum, stats.served_requests);
    // Clock-based histograms only fill when the obs feature is on.
    let waits = snap.histogram("server.queue_wait_ns").unwrap();
    let latencies = snap.histogram("server.ticket_latency_ns").unwrap();
    if pi_obs::ENABLED {
        assert_eq!(waits.count, 3, "each accepted submission waits once");
        assert_eq!(latencies.count, 3, "each resolved ticket has a latency");
    } else {
        assert_eq!(waits.count + latencies.count, 0);
    }
}

/// An executor that panics on request value 99 — the dispatcher must
/// survive, poison only the affected ticket (whose `wait` re-raises
/// instead of hanging), and keep serving later submissions.
struct PanickyExec;

impl BatchExecutor for PanickyExec {
    type Request = u64;
    type Response = u64;
    type Error = String;

    fn execute_batch(&self, batch: &[u64]) -> Result<Vec<u64>, String> {
        if batch.contains(&99) {
            panic!("executor boom");
        }
        Ok(batch.iter().map(|x| x + 1).collect())
    }
}

#[test]
fn executor_panic_poisons_the_ticket_but_not_the_server() {
    let server = Server::new(
        Arc::new(PanickyExec),
        ServerConfig {
            // Coalescing off so the panicking submission is its own batch.
            max_coalesced_queries: 1,
            ..ServerConfig::default()
        },
    );
    let poisoned = server.submit(vec![99]).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || poisoned.wait()));
    assert!(result.is_err(), "wait() must re-raise the executor panic");
    // The dispatcher survived: later submissions are served normally.
    let ok = server.submit(vec![1, 2]).unwrap();
    assert_eq!(ok.wait(), Ok(vec![2, 3]));
    let stats = server.stats();
    assert_eq!(stats.served_requests, 2, "panicked batch must not count");
    server.shutdown();
}
