//! Scoped data-parallel helpers on top of [`Pool`].
//!
//! The pool's [`Job`] type is `'static` — right for
//! fire-and-forget serving work, wrong for data-parallel passes over
//! borrowed slices. [`run_scoped`] closes the gap: because
//! [`Pool::run`](crate::pool::Pool::run) is a completion barrier (its
//! latch counts every batch job down, even a panicking one, before the
//! call returns), jobs borrowing from the caller's stack cannot outlive
//! their borrows, and the `'static` bound can be erased soundly.
//!
//! [`par_chunk_counts`] is the consumer the refinement-kernel work
//! needed: per-chunk histogram counting fanned out across the pool and
//! merged on the caller. `pi-core`'s kernels themselves stay sequential
//! — core has no scheduler dependency (layering: `pi-sched` sits above
//! `pi-core` in the workspace) and its per-block passes are far below
//! the parallel threshold anyway — so the engine layer decides, via
//! `TuningParameters::parallel_count_threshold`, when a column is large
//! enough to count here instead.

use crate::pool::{Job, Pool};

/// Runs a batch of jobs that may borrow from the caller's scope,
/// blocking until every job has finished.
///
/// Affinities follow [`Pool::run`](crate::pool::Pool::run): `affinity %
/// workers` selects the home deque. Panics if any job panicked (after
/// all jobs of the batch have completed).
pub fn run_scoped<'scope>(pool: &Pool, jobs: Vec<(usize, Box<dyn FnOnce() + Send + 'scope>)>) {
    let jobs: Vec<(usize, Job)> = jobs
        .into_iter()
        .map(|(affinity, job)| {
            // SAFETY: `Pool::run` does not return — normally or by
            // unwinding — until every job of this batch has run to
            // completion (each job counts the batch latch down via a
            // drop guard, so even a panicking job completes the batch;
            // the panic is re-raised on this caller only after the
            // latch opens). The borrows captured by `job` therefore
            // strictly outlive every use of the transmuted closure, and
            // widening `'scope` to `'static` cannot be observed. The
            // two trait-object types differ only in lifetime, so their
            // layout is identical.
            let job: Job = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'scope>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(job)
            };
            (affinity, job)
        })
        .collect();
    pool.run(jobs);
}

/// Byte-digit histogram of `values`, counted per-chunk on the pool and
/// merged on the caller. Exact (not sampled): every element is counted
/// once.
///
/// One chunk per worker; each job writes a private `[usize; 256]`, so
/// workers never contend on shared counters. For slices below the
/// machine's parallel-count threshold the sequential pass is faster —
/// callers gate on `TuningParameters::parallel_count_threshold` (the
/// engine's distribution estimator does exactly this).
///
/// # Examples
///
/// ```
/// use pi_sched::pool::Pool;
/// use pi_sched::parallel::par_chunk_counts;
///
/// let pool = Pool::new(2);
/// let values: Vec<u64> = (0..10_000).collect();
/// let counts = par_chunk_counts(&pool, &values, &|v| (v >> 8) as u8);
/// assert_eq!(counts.iter().sum::<usize>(), values.len());
/// ```
pub fn par_chunk_counts<F>(pool: &Pool, values: &[u64], digit_of: &F) -> [usize; 256]
where
    F: Fn(u64) -> u8 + Sync,
{
    let mut total = [0usize; 256];
    if values.is_empty() {
        return total;
    }
    let workers = pool.workers().max(1);
    let chunk = values.len().div_ceil(workers).max(1);
    let mut locals: Vec<[usize; 256]> = vec![[0; 256]; values.len().div_ceil(chunk)];
    let jobs: Vec<(usize, Box<dyn FnOnce() + Send + '_>)> = values
        .chunks(chunk)
        .zip(locals.iter_mut())
        .enumerate()
        .map(|(i, (slice, slot))| {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                for &v in slice {
                    slot[digit_of(v) as usize] += 1;
                }
            });
            (i, job)
        })
        .collect();
    run_scoped(pool, jobs);
    for local in &locals {
        for (t, l) in total.iter_mut().zip(local.iter()) {
            *t += l;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_scoped_jobs_see_borrowed_data() {
        let pool = Pool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let partials: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<(usize, Box<dyn FnOnce() + Send + '_>)> = data
            .chunks(250)
            .zip(partials.iter())
            .enumerate()
            .map(|(i, (slice, slot))| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    slot.store(slice.iter().sum::<u64>() as usize, Ordering::Release);
                });
                (i, job)
            })
            .collect();
        run_scoped(&pool, jobs);
        let total: usize = partials.iter().map(|p| p.load(Ordering::Acquire)).sum();
        assert_eq!(total, (0..1000u64).sum::<u64>() as usize);
    }

    #[test]
    fn par_chunk_counts_matches_sequential() {
        let pool = Pool::new(4);
        let values: Vec<u64> = (0..100_000u64)
            .map(|v| v.wrapping_mul(2654435761))
            .collect();
        let digit = |v: u64| (v >> 24) as u8;
        let mut want = [0usize; 256];
        for &v in &values {
            want[digit(v) as usize] += 1;
        }
        assert_eq!(par_chunk_counts(&pool, &values, &digit), want);
    }

    #[test]
    fn par_chunk_counts_handles_empty_and_tiny_inputs() {
        let pool = Pool::new(2);
        let empty = par_chunk_counts(&pool, &[], &|v| v as u8);
        assert_eq!(empty.iter().sum::<usize>(), 0);
        let one = par_chunk_counts(&pool, &[7], &|v| v as u8);
        assert_eq!(one[7], 1);
        assert_eq!(one.iter().sum::<usize>(), 1);
    }
}
