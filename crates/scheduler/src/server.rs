//! Async-style serving front-end: bounded admission queue, batch
//! coalescing, backpressure and graceful shutdown.
//!
//! Clients do not call the engine directly; they [`Server::submit`] (or
//! [`Server::try_submit`]) a batch of requests and receive a [`Ticket`] —
//! a one-shot future resolved by the dispatcher threads. The server owns
//! admission control:
//!
//! * **Bounded queue.** At most [`ServerConfig::queue_capacity`]
//!   submissions wait at any time. `try_submit` returns
//!   [`SubmitError::QueueFull`] instead of queueing unboundedly —
//!   backpressure the client can act on (shed, retry, slow down);
//!   `submit` blocks until space frees up.
//! * **Batch coalescing.** A dispatcher drains up to
//!   [`ServerConfig::max_coalesced_queries`] queued requests and executes
//!   them as *one* engine batch, so per-batch costs (shard fan-out,
//!   maintenance budget) amortize across clients under load — the
//!   server-level analogue of the paper's per-query budget amortization.
//!   If the coalesced batch fails (e.g. one client addressed an unknown
//!   column), the dispatcher falls back to executing each submission
//!   separately so one bad request cannot fail its neighbours.
//! * **Idle-cycle maintenance.** When the queue is empty the dispatcher
//!   donates its cycles to [`BatchExecutor::idle_maintain`], one budgeted
//!   step at a time, so cold shards keep converging even when no client
//!   ever queries their range.
//! * **Graceful shutdown.** [`Server::shutdown`] stops admissions
//!   (subsequent submits fail with [`SubmitError::ShutDown`]), lets the
//!   dispatchers drain every already-accepted submission, and joins them.
//!   Every accepted ticket is always resolved.
//! * **Observability.** Admission, execution and coalescing land in a
//!   [`pi_obs::MetricsRegistry`] under `server.*` names (see
//!   [`Server::with_metrics`]); [`Server::stats`] is a consistent read of
//!   those metrics plus the queue depth under one lock. Clock-based
//!   metrics (queue wait, ticket latency) vanish when the `obs` feature
//!   is off.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pi_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// A batch-executing backend the server can serve. `pi-engine`'s
/// `Executor` is the canonical implementation; tests use mocks.
pub trait BatchExecutor: Send + Sync + 'static {
    /// One request (for the engine: a range-sum query on a named column).
    type Request: Send + 'static;
    /// One response, positionally matching the request.
    type Response: Send + 'static;
    /// Batch-level error. `Clone` because a coalesced failure may need to
    /// be delivered to several tickets.
    type Error: Send + Clone + std::fmt::Debug + 'static;

    /// Executes a batch; on success returns exactly one response per
    /// request, in request order.
    fn execute_batch(&self, batch: &[Self::Request]) -> Result<Vec<Self::Response>, Self::Error>;

    /// Performs one budgeted background-maintenance step. Returns `true`
    /// when work was performed, `false` when there is none left (the
    /// dispatcher then parks instead of spinning). Default: no
    /// maintenance.
    fn idle_maintain(&self) -> bool {
        false
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity — backpressure; retry later or
    /// shed the request.
    QueueFull,
    /// The server is shutting down and no longer accepts work.
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue is full"),
            SubmitError::ShutDown => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Error of [`Server::try_submit`]. Carries the rejected batch back to
/// the caller (like `std::sync::mpsc::TrySendError`), so retrying under
/// backpressure does not rebuild the requests.
#[derive(Debug)]
pub struct TrySubmitError<R> {
    /// Why the submission was refused.
    pub error: SubmitError,
    /// The refused batch, returned unchanged.
    pub requests: Vec<R>,
}

impl<R> std::fmt::Display for TrySubmitError<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

impl<R: std::fmt::Debug> std::error::Error for TrySubmitError<R> {}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum number of submissions waiting in the admission queue.
    pub queue_capacity: usize,
    /// A dispatcher stops coalescing once the combined batch reaches this
    /// many requests.
    pub max_coalesced_queries: usize,
    /// Number of dispatcher threads draining the queue.
    pub dispatchers: usize,
    /// Dispatcher park timeout when idle (woken eagerly on submission).
    pub idle_park: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 128,
            max_coalesced_queries: 256,
            dispatchers: 1,
            idle_park: Duration::from_millis(20),
        }
    }
}

/// Aggregate serving counters (monotonic since server start, except
/// `queue_depth` which is the instantaneous depth). Produced by
/// [`Server::stats`] as one consistent snapshot: the admission counters
/// and the queue depth are read under the same queue lock that guards
/// admission, so they cannot disagree mid-read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Submissions accepted into the queue.
    pub accepted: u64,
    /// `try_submit` rejections due to a full queue.
    pub rejected: u64,
    /// Engine batches executed (after coalescing).
    pub executed_batches: u64,
    /// Individual requests served successfully (failed batches resolve
    /// their tickets with the error and are not counted here).
    pub served_requests: u64,
    /// Background-maintenance steps performed from idle cycles.
    pub maintenance_steps: u64,
    /// Dispatcher runs that combined two or more submissions into one
    /// engine batch.
    pub coalesced_batches: u64,
    /// Submissions waiting in the admission queue right now (excluding
    /// in-flight batches), read under the same lock as the counters.
    pub queue_depth: u64,
}

/// The server's metric handles, registered under `server.*` in the
/// registry the server was built with. Counters/gauges are always live
/// (they back [`ServerStats`]); the `_ns` histograms only receive
/// samples when [`pi_obs::ENABLED`] is true.
struct ServerObs {
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    executed_batches: Arc<Counter>,
    served_requests: Arc<Counter>,
    maintenance_steps: Arc<Counter>,
    coalesced_batches: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    /// Requests per delivered engine batch (after coalescing).
    coalesced_size: Arc<Histogram>,
    /// Enqueue → dispatcher pop, nanoseconds. Gated on the `obs` feature.
    queue_wait_ns: Arc<Histogram>,
    /// Enqueue → ticket fulfilled, nanoseconds. Gated on the `obs`
    /// feature.
    ticket_latency_ns: Arc<Histogram>,
}

impl ServerObs {
    fn register(registry: &MetricsRegistry) -> ServerObs {
        ServerObs {
            accepted: registry.counter("server.accepted"),
            rejected: registry.counter("server.rejected"),
            executed_batches: registry.counter("server.executed_batches"),
            served_requests: registry.counter("server.served_requests"),
            maintenance_steps: registry.counter("server.maintenance_steps"),
            coalesced_batches: registry.counter("server.coalesced_batches"),
            queue_depth: registry.gauge("server.queue_depth"),
            coalesced_size: registry.histogram("server.coalesced_size"),
            queue_wait_ns: registry.histogram("server.queue_wait_ns"),
            ticket_latency_ns: registry.histogram("server.ticket_latency_ns"),
        }
    }

    /// Records enqueue-to-fulfilment latency for one resolved ticket.
    #[inline]
    fn note_ticket_latency(&self, enqueued_at: Option<Instant>) {
        if pi_obs::ENABLED {
            if let Some(enqueued_at) = enqueued_at {
                self.ticket_latency_ns
                    .record_duration(enqueued_at.elapsed());
            }
        }
    }
}

/// One-shot handle to a submission's eventual result.
pub struct Ticket<E: BatchExecutor> {
    slot: Arc<Slot<E>>,
}

/// A submission's eventual outcome: all responses, or the batch error.
type BatchResult<E> = Result<Vec<<E as BatchExecutor>::Response>, <E as BatchExecutor>::Error>;

struct Slot<E: BatchExecutor> {
    result: Mutex<Option<BatchResult<E>>>,
    ready: Condvar,
    /// Set when the executor panicked while serving this submission; the
    /// waiters re-raise instead of blocking forever (the dispatcher
    /// itself survives and keeps serving other submissions).
    poisoned: AtomicBool,
    /// Set once a waiter has taken the result, so a second `wait` after a
    /// successful `try_wait` fails loudly instead of blocking forever on
    /// a slot that will never be refilled.
    taken: AtomicBool,
}

impl<E: BatchExecutor> Slot<E> {
    fn new() -> Self {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
            poisoned: AtomicBool::new(false),
            taken: AtomicBool::new(false),
        }
    }

    fn fulfil(&self, result: Result<Vec<E::Response>, E::Error>) {
        let mut slot = self.result.lock().expect("ticket slot poisoned");
        debug_assert!(slot.is_none(), "ticket fulfilled twice");
        *slot = Some(result);
        self.ready.notify_all();
    }

    fn poison(&self) {
        let _slot = self.result.lock().expect("ticket slot poisoned");
        self.poisoned.store(true, Ordering::Release);
        self.ready.notify_all();
    }

    fn check_poison(&self) {
        assert!(
            !self.poisoned.load(Ordering::Acquire),
            "the executor panicked while serving this submission"
        );
    }
}

impl<E: BatchExecutor> Ticket<E> {
    /// Blocks until the submission has been served. Accepted submissions
    /// are always served, even across [`Server::shutdown`].
    ///
    /// # Panics
    /// Re-raises (as a panic) an executor panic that occurred while
    /// serving this submission, and panics if the result was already
    /// taken by an earlier [`Ticket::try_wait`].
    pub fn wait(self) -> Result<Vec<E::Response>, E::Error> {
        let mut slot = self.slot.result.lock().expect("ticket slot poisoned");
        loop {
            self.slot.check_poison();
            if let Some(result) = slot.take() {
                self.slot.taken.store(true, Ordering::Relaxed);
                return result;
            }
            assert!(
                !self.slot.taken.load(Ordering::Relaxed),
                "ticket result already taken by an earlier try_wait"
            );
            slot = self.slot.ready.wait(slot).expect("ticket slot poisoned");
        }
    }

    /// Non-blocking poll; `None` while the submission is still queued or
    /// executing.
    ///
    /// # Panics
    /// Re-raises (as a panic) an executor panic that occurred while
    /// serving this submission, and panics if the result was already
    /// taken by an earlier call.
    pub fn try_wait(&self) -> Option<Result<Vec<E::Response>, E::Error>> {
        let mut slot = self.slot.result.lock().expect("ticket slot poisoned");
        self.slot.check_poison();
        let result = slot.take();
        if result.is_some() {
            self.slot.taken.store(true, Ordering::Relaxed);
        } else {
            assert!(
                !self.slot.taken.load(Ordering::Relaxed),
                "ticket result already taken by an earlier try_wait"
            );
        }
        result
    }
}

struct Submission<E: BatchExecutor> {
    requests: Vec<E::Request>,
    slot: Arc<Slot<E>>,
    /// Admission time; `Some` only when [`pi_obs::ENABLED`] (the clock
    /// call is part of the gated cost).
    enqueued_at: Option<Instant>,
}

struct ServerShared<E: BatchExecutor> {
    executor: Arc<E>,
    config: ServerConfig,
    queue: Mutex<VecDeque<Submission<E>>>,
    /// Wakes dispatchers (new submission / shutdown).
    dispatch: Condvar,
    /// Wakes blocked `submit` callers (space freed / shutdown).
    space: Condvar,
    shutdown: AtomicBool,
    registry: Arc<MetricsRegistry>,
    obs: ServerObs,
}

impl<E: BatchExecutor> ServerShared<E> {
    /// Calls the executor, catching a panic so the dispatcher thread
    /// survives: a dead dispatcher would strand every queued and future
    /// ticket. `None` means the executor panicked.
    fn execute_caught(&self, batch: &[E::Request]) -> Option<BatchResult<E>> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.executor.execute_batch(batch)
        }))
        .ok()
    }

    fn deliver(&self, submission: Submission<E>) {
        match self.execute_caught(&submission.requests) {
            Some(result) => {
                self.obs.executed_batches.inc();
                if result.is_ok() {
                    self.obs
                        .served_requests
                        .add(submission.requests.len() as u64);
                }
                submission.slot.fulfil(result);
                self.obs.note_ticket_latency(submission.enqueued_at);
            }
            None => submission.slot.poison(),
        }
    }

    /// Executes a coalesced run of submissions as one engine batch,
    /// splitting the responses back per submission. Falls back to
    /// per-submission execution when the combined batch fails, so one bad
    /// request only fails its own ticket.
    fn deliver_coalesced(&self, submissions: Vec<Submission<E>>) {
        let total: usize = submissions.iter().map(|s| s.requests.len()).sum();
        self.obs.coalesced_size.record(total as u64);
        if submissions.len() > 1 {
            self.obs.coalesced_batches.inc();
        }
        if submissions.len() == 1 {
            let submission = submissions.into_iter().next().expect("len checked");
            self.deliver(submission);
            return;
        }
        let mut sizes = Vec::with_capacity(submissions.len());
        let mut batch = Vec::new();
        let mut slots = Vec::with_capacity(submissions.len());
        let mut stamps = Vec::with_capacity(submissions.len());
        for submission in submissions {
            sizes.push(submission.requests.len());
            batch.extend(submission.requests);
            slots.push(submission.slot);
            stamps.push(submission.enqueued_at);
        }
        match self.execute_caught(&batch) {
            None => {
                // The executor panicked somewhere in the combined batch;
                // retrying the parts would panic again. Poison the run so
                // every waiter re-raises instead of hanging.
                for slot in &slots {
                    slot.poison();
                }
            }
            Some(Ok(mut responses)) => {
                self.obs.executed_batches.inc();
                self.obs.served_requests.add(batch.len() as u64);
                debug_assert_eq!(
                    responses.len(),
                    batch.len(),
                    "executor returned a response count mismatching the batch"
                );
                for (size, slot) in sizes.iter().zip(&slots).rev() {
                    let tail = responses.split_off(responses.len() - size);
                    slot.fulfil(Ok(tail));
                }
                for stamp in stamps {
                    self.obs.note_ticket_latency(stamp);
                }
            }
            Some(Err(_)) => {
                // Re-slice the moved batch back into per-submission
                // request lists and execute them in isolation.
                let mut rest = batch;
                let mut parts = Vec::with_capacity(sizes.len());
                for &size in sizes.iter().rev() {
                    let tail = rest.split_off(rest.len() - size);
                    parts.push(tail);
                }
                parts.reverse();
                for ((requests, slot), enqueued_at) in parts.into_iter().zip(slots).zip(stamps) {
                    self.deliver(Submission {
                        requests,
                        slot,
                        enqueued_at,
                    });
                }
            }
        }
    }

    fn dispatcher_loop(&self) {
        loop {
            let run = {
                let mut queue = self.queue.lock().expect("server queue poisoned");
                let mut run = Vec::new();
                let mut queries = 0;
                while let Some(front) = queue.front() {
                    if !run.is_empty()
                        && queries + front.requests.len() > self.config.max_coalesced_queries
                    {
                        break;
                    }
                    let submission = queue.pop_front().expect("front checked");
                    queries += submission.requests.len();
                    run.push(submission);
                    if queries >= self.config.max_coalesced_queries {
                        break;
                    }
                }
                self.obs.queue_depth.set_u64(queue.len() as u64);
                run
            };
            if run.is_empty() {
                if self.shutdown.load(Ordering::Acquire) {
                    // Final drain check under the lock: `shutdown` is only
                    // set while holding the queue lock, so a submission
                    // that won the admission race is visible here — exit
                    // only when the queue is truly empty, or it would
                    // strand an accepted ticket.
                    if self.queue.lock().expect("server queue poisoned").is_empty() {
                        return;
                    }
                    continue;
                }
                if self.executor.idle_maintain() {
                    self.obs.maintenance_steps.inc();
                    continue;
                }
                let queue = self.queue.lock().expect("server queue poisoned");
                if queue.is_empty() && !self.shutdown.load(Ordering::Acquire) {
                    let _ = self
                        .dispatch
                        .wait_timeout(queue, self.config.idle_park)
                        .expect("server queue poisoned");
                }
                continue;
            }
            // Space freed: wake one blocked submitter per popped entry.
            self.space.notify_all();
            if pi_obs::ENABLED {
                let now = Instant::now();
                for submission in &run {
                    if let Some(enqueued_at) = submission.enqueued_at {
                        self.obs
                            .queue_wait_ns
                            .record_duration(now.saturating_duration_since(enqueued_at));
                    }
                }
            }
            self.deliver_coalesced(run);
        }
    }
}

/// The serving front-end. See the module docs.
pub struct Server<E: BatchExecutor> {
    shared: Arc<ServerShared<E>>,
    dispatchers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<E: BatchExecutor> Server<E> {
    /// Starts a server (and its dispatcher threads) over `executor`.
    ///
    /// Metrics land in a fresh private registry (see
    /// [`Server::metrics`]); use [`Server::with_metrics`] to aggregate
    /// them into a shared registry instead.
    ///
    /// # Panics
    /// Panics when `config.queue_capacity`, `config.max_coalesced_queries`
    /// or `config.dispatchers` is zero.
    pub fn new(executor: Arc<E>, config: ServerConfig) -> Self {
        Self::with_metrics(executor, config, Arc::new(MetricsRegistry::new()))
    }

    /// Starts a server whose `server.*` metrics are registered in
    /// `registry`, so one snapshot can cover the server together with
    /// the pool, executor and index layers below it.
    ///
    /// Two servers sharing one registry share the same `server.*`
    /// handles — their [`Server::stats`] then aggregate across both.
    /// Give each server its own registry (the [`Server::new`] default)
    /// when per-server numbers matter.
    ///
    /// # Panics
    /// Panics when `config.queue_capacity`, `config.max_coalesced_queries`
    /// or `config.dispatchers` is zero.
    pub fn with_metrics(
        executor: Arc<E>,
        config: ServerConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            config.max_coalesced_queries > 0,
            "coalescing limit must be positive"
        );
        assert!(
            config.dispatchers > 0,
            "a server needs at least one dispatcher"
        );
        let obs = ServerObs::register(&registry);
        let shared = Arc::new(ServerShared {
            executor,
            config,
            queue: Mutex::new(VecDeque::new()),
            dispatch: Condvar::new(),
            space: Condvar::new(),
            shutdown: AtomicBool::new(false),
            registry,
            obs,
        });
        let dispatchers = (0..config.dispatchers)
            .map(|d| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pi-serve-{d}"))
                    .spawn(move || shared.dispatcher_loop())
                    .expect("failed to spawn dispatcher")
            })
            .collect();
        Server {
            shared,
            dispatchers: Mutex::new(dispatchers),
        }
    }

    /// Starts a server with the default configuration.
    pub fn with_defaults(executor: Arc<E>) -> Self {
        Self::new(executor, ServerConfig::default())
    }

    /// The executor this server fronts.
    pub fn executor(&self) -> &Arc<E> {
        &self.shared.executor
    }

    /// The registry this server's `server.*` metrics live in — the one
    /// passed to [`Server::with_metrics`], or the private per-server
    /// registry created by [`Server::new`].
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// Non-blocking admission: enqueues `requests` or hands them back
    /// with the backpressure reason.
    pub fn try_submit(
        &self,
        requests: Vec<E::Request>,
    ) -> Result<Ticket<E>, TrySubmitError<E::Request>> {
        let mut queue = self.shared.queue.lock().expect("server queue poisoned");
        // Checked under the queue lock — see `shutdown` for the protocol.
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(TrySubmitError {
                error: SubmitError::ShutDown,
                requests,
            });
        }
        if queue.len() >= self.shared.config.queue_capacity {
            self.shared.obs.rejected.inc();
            return Err(TrySubmitError {
                error: SubmitError::QueueFull,
                requests,
            });
        }
        Ok(self.enqueue(&mut queue, requests))
    }

    /// Blocking admission: waits for queue space. Fails only with
    /// [`SubmitError::ShutDown`].
    pub fn submit(&self, requests: Vec<E::Request>) -> Result<Ticket<E>, SubmitError> {
        let mut queue = self.shared.queue.lock().expect("server queue poisoned");
        while queue.len() >= self.shared.config.queue_capacity {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(SubmitError::ShutDown);
            }
            queue = self
                .shared
                .space
                .wait_timeout(queue, Duration::from_millis(20))
                .expect("server queue poisoned")
                .0;
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShutDown);
        }
        Ok(self.enqueue(&mut queue, requests))
    }

    fn enqueue(&self, queue: &mut VecDeque<Submission<E>>, requests: Vec<E::Request>) -> Ticket<E> {
        let slot = Arc::new(Slot::new());
        queue.push_back(Submission {
            requests,
            slot: Arc::clone(&slot),
            enqueued_at: pi_obs::ENABLED.then(Instant::now),
        });
        self.shared.obs.accepted.inc();
        self.shared.obs.queue_depth.set_u64(queue.len() as u64);
        self.shared.dispatch.notify_one();
        Ticket { slot }
    }

    /// Convenience: submit one batch (blocking admission) and wait for its
    /// results.
    pub fn execute(&self, requests: Vec<E::Request>) -> Result<Vec<E::Response>, ServeError<E>> {
        let ticket = self.submit(requests).map_err(ServeError::Rejected)?;
        ticket.wait().map_err(ServeError::Executor)
    }

    /// Current queue depth (submissions waiting, excluding in-flight).
    /// Equivalent to [`ServerStats::queue_depth`] from [`Server::stats`].
    pub fn queue_depth(&self) -> usize {
        self.stats().queue_depth as usize
    }

    /// One consistent snapshot of the serving counters and the queue
    /// depth: everything is read while holding the queue lock that also
    /// guards admission, so `accepted`, `rejected` and `queue_depth`
    /// cannot disagree mid-read.
    pub fn stats(&self) -> ServerStats {
        let queue = self.shared.queue.lock().expect("server queue poisoned");
        let obs = &self.shared.obs;
        ServerStats {
            accepted: obs.accepted.get(),
            rejected: obs.rejected.get(),
            executed_batches: obs.executed_batches.get(),
            served_requests: obs.served_requests.get(),
            maintenance_steps: obs.maintenance_steps.get(),
            coalesced_batches: obs.coalesced_batches.get(),
            queue_depth: queue.len() as u64,
        }
    }

    /// Graceful shutdown: stops admissions (subsequent submits fail with
    /// [`SubmitError::ShutDown`]), drains every accepted submission (all
    /// tickets resolve), joins the dispatchers. Idempotent, and callable
    /// through a shared reference — clients typically hold the server in
    /// an `Arc` while an owner shuts it down. Dropping the server does
    /// the same.
    pub fn shutdown(&self) {
        {
            // The flag flips under the queue lock: every admission checks
            // it under the same lock, so a submission either lands before
            // the flip (and the dispatchers' final drain serves it) or
            // observes `ShutDown` — no ticket can be stranded.
            let _queue = self.shared.queue.lock().expect("server queue poisoned");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.dispatch.notify_all();
            self.shared.space.notify_all();
        }
        let handles = std::mem::take(
            &mut *self
                .dispatchers
                .lock()
                .expect("dispatcher handles poisoned"),
        );
        for handle in handles {
            handle.join().expect("dispatcher panicked");
        }
    }
}

impl<E: BatchExecutor> Drop for Server<E> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Error of the blocking [`Server::execute`] convenience call.
pub enum ServeError<E: BatchExecutor> {
    /// The submission was not admitted.
    Rejected(SubmitError),
    /// The executor failed the batch.
    Executor(E::Error),
}

impl<E: BatchExecutor> std::fmt::Debug for ServeError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(e) => f.debug_tuple("Rejected").field(e).finish(),
            ServeError::Executor(e) => f.debug_tuple("Executor").field(e).finish(),
        }
    }
}

impl<E: BatchExecutor> std::fmt::Display for ServeError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(e) => write!(f, "submission rejected: {e}"),
            ServeError::Executor(e) => write!(f, "executor error: {e:?}"),
        }
    }
}

impl<E: BatchExecutor> std::error::Error for ServeError<E> {}
