//! # pi-sched — persistent scheduler and serving front-end
//!
//! The runtime under the progressive-indexing engine. The paper bounds
//! the indexing work any single query performs (budget δ); this crate
//! bounds what the *system* around those queries costs, so the budget
//! amortization happens continuously instead of only inside a client's
//! batch:
//!
//! * [`Pool`] — a persistent, shard-affine work-stealing worker pool.
//!   One deque per worker, jobs routed by affinity key (the engine keys
//!   by shard, so a shard's working set stays warm on one worker),
//!   stealing for load balance, caller-helping batch execution
//!   ([`Pool::run`]) and donated idle cycles ([`PoolConfig::idle_task`])
//!   for background maintenance. Replaces the per-batch
//!   `std::thread::scope` fan-out whose spawn cost dwarfed the
//!   microsecond-scale shard tasks.
//! * [`Server`] — an async-style admission layer over any
//!   [`BatchExecutor`]: bounded submission queue with backpressure
//!   ([`Server::try_submit`] returns [`SubmitError::QueueFull`]), batch
//!   coalescing across clients, [`Ticket`] futures, idle-cycle
//!   maintenance and graceful shutdown that always resolves accepted
//!   tickets.
//! * [`plan_affinity`] — longest-processing-time-first pinning of
//!   weighted shards onto workers, used by the engine to balance pinned
//!   row counts.
//! * [`parallel`] — scoped data-parallel helpers over the pool:
//!   [`run_scoped`] erases the `'static` job bound behind
//!   [`Pool::run`]'s completion barrier, and [`par_chunk_counts`] fans
//!   exact histogram counting out per-chunk (the engine's distribution
//!   estimator uses it above the machine's parallel-count threshold).
//!
//! The crate is dependency-free (std only) and knows nothing about
//! indexes: `pi-engine` implements [`BatchExecutor`] for its `Executor`
//! and keys pool jobs by global shard id.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use pi_sched::{BatchExecutor, Server, ServerConfig};
//!
//! struct Doubler;
//! impl BatchExecutor for Doubler {
//!     type Request = u64;
//!     type Response = u64;
//!     type Error = String;
//!     fn execute_batch(&self, batch: &[u64]) -> Result<Vec<u64>, String> {
//!         Ok(batch.iter().map(|x| x * 2).collect())
//!     }
//! }
//!
//! let server = Server::new(Arc::new(Doubler), ServerConfig::default());
//! let ticket = server.try_submit(vec![1, 2, 3]).unwrap();
//! assert_eq!(ticket.wait(), Ok(vec![2, 4, 6]));
//! server.shutdown(); // graceful: drains accepted work first
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod parallel;
pub mod pool;
pub mod server;

pub use parallel::{par_chunk_counts, run_scoped};
pub use pool::{plan_affinity, IdleTask, Job, Pool, PoolConfig, PoolStats};
pub use server::{
    BatchExecutor, ServeError, Server, ServerConfig, ServerStats, SubmitError, Ticket,
    TrySubmitError,
};
