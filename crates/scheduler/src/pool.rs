//! Persistent, shard-affine work-stealing worker pool.
//!
//! The engine's unit of parallel work is a *shard task* (answer a batch's
//! sub-queries against one shard, or advance one shard's index by one
//! budgeted step). Those tasks are short — microseconds to a fraction of a
//! millisecond — so spawning an OS thread per batch, as
//! `std::thread::scope` does, costs more than the work itself. The
//! [`Pool`] keeps a fixed set of workers alive for the lifetime of the
//! engine instead:
//!
//! * **One deque per worker.** [`Pool::spawn`] routes a job to the deque
//!   chosen by its *affinity key* (`key % workers`). The engine keys jobs
//!   by shard id, so the same shard lands on the same worker run after
//!   run and its working set stays warm in that worker's cache.
//! * **Stealing for balance.** A worker whose own deque is empty steals
//!   from the *back* of its siblings' deques, so skewed workloads cannot
//!   idle seven workers while one drowns.
//! * **Caller helping.** [`Pool::run`] enqueues a batch and then lets the
//!   submitting thread drain jobs alongside the workers instead of
//!   blocking. On a single-core host this degrades gracefully to inline
//!   execution plus negligible queueing overhead — the caller simply pops
//!   its own jobs back — while on a many-core host the workers genuinely
//!   parallelize the batch.
//! * **Idle cycles are donated.** An optional [`PoolConfig::idle_task`]
//!   hook runs whenever a worker finds every deque empty. The engine
//!   points this at cold-shard maintenance, so background convergence
//!   consumes exactly the cycles serving leaves free and stops the moment
//!   a query task arrives (each call performs one bounded slice of work —
//!   how much is the hook's choice; the engine batches several budgeted
//!   steps per call to amortise locking).
//!
//! Shutdown is graceful: [`Pool::shutdown`] (or dropping the pool) lets
//! the workers drain every job already enqueued before they exit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use pi_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// A unit of work executed by the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Hook run by a worker when every deque is empty. Receives the worker's
/// id; returns `true` when it performed useful work (the worker will call
/// again after re-checking the deques) and `false` when there is nothing
/// to do (the worker parks).
pub type IdleTask = Arc<dyn Fn(usize) -> bool + Send + Sync>;

/// Pool construction parameters.
#[derive(Clone)]
pub struct PoolConfig {
    /// Number of persistent worker threads (at least 1).
    pub workers: usize,
    /// Background task donated the workers' idle cycles (see
    /// [`IdleTask`]).
    pub idle_task: Option<IdleTask>,
    /// How long a worker parks when there are no jobs and the idle task
    /// reports no work. Parked workers are woken eagerly on every spawn;
    /// the timeout is only a backstop.
    pub idle_park: Duration,
    /// Registry receiving the pool's `sched.pool.*` metrics (queue depth,
    /// steals, donated idle cycles, jobs per run). `None` — the default —
    /// records nothing; the engine passes its registry down so the whole
    /// serving stack lands in one snapshot.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            idle_task: None,
            idle_park: Duration::from_millis(50),
            metrics: None,
        }
    }
}

impl std::fmt::Debug for PoolConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolConfig")
            .field("workers", &self.workers)
            .field("idle_task", &self.idle_task.as_ref().map(|_| "…"))
            .field("idle_park", &self.idle_park)
            .field("metrics", &self.metrics.as_ref().map(|_| "…"))
            .finish()
    }
}

/// Per-worker counters, for observability and the fairness tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs each worker executed (including stolen ones).
    pub executed: Vec<u64>,
    /// Jobs each worker stole from a sibling's deque.
    pub stolen: Vec<u64>,
    /// Jobs executed by helping caller threads inside [`Pool::run`].
    pub helped: u64,
    /// Idle-task invocations that reported useful work.
    pub idle_work: u64,
    /// Fire-and-forget jobs whose panic was caught to keep the executing
    /// thread alive (batch jobs re-raise on their `run` caller instead).
    pub panicked_jobs: u64,
}

impl PoolStats {
    /// Total jobs executed by workers and helpers together.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum::<u64>() + self.helped
    }
}

/// Registry handles for the pool's `sched.pool.*` metric family. The
/// per-worker [`PoolStats`] atomics remain the source of truth for the
/// fairness tests; these aggregate handles are what dashboards and
/// snapshots read. All counter traffic — one relaxed add next to the
/// pre-existing stats add — so they stay live with `obs` off.
struct PoolObs {
    /// `sched.pool.queue_depth` — jobs enqueued and not yet popped.
    queue_depth: Arc<Gauge>,
    /// `sched.pool.jobs` — jobs executed (workers and helpers).
    jobs: Arc<Counter>,
    /// `sched.pool.steals` — jobs taken from a sibling's deque.
    steals: Arc<Counter>,
    /// `sched.pool.helped` — jobs drained by helping `run` callers.
    helped: Arc<Counter>,
    /// `sched.pool.idle_cycles` — idle-task invocations that did work.
    idle_cycles: Arc<Counter>,
    /// `sched.pool.jobs_per_run` — batch size distribution of `run`.
    jobs_per_run: Arc<Histogram>,
}

impl PoolObs {
    fn register(registry: &MetricsRegistry) -> Self {
        PoolObs {
            queue_depth: registry.gauge("sched.pool.queue_depth"),
            jobs: registry.counter("sched.pool.jobs"),
            steals: registry.counter("sched.pool.steals"),
            helped: registry.counter("sched.pool.helped"),
            idle_cycles: registry.counter("sched.pool.idle_cycles"),
            jobs_per_run: registry.histogram("sched.pool.jobs_per_run"),
        }
    }
}

struct Shared {
    /// One deque per worker; `spawn` pushes to `key % workers`.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs currently enqueued across all deques (not yet popped).
    queued: AtomicUsize,
    /// Lock + condvar parking idle workers; `queued` is re-checked under
    /// the lock so a spawn's notification cannot be lost.
    park: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Workers currently blocked in the park wait; lets `push` skip the
    /// park lock entirely when nobody is parked (the common busy case).
    parked: AtomicUsize,
    /// Fire-and-forget jobs whose panic was caught (and swallowed) to
    /// keep the worker alive; exposed through [`PoolStats`]. Batch jobs
    /// surface their panics to the [`Pool::run`] caller instead.
    panicked_jobs: AtomicU64,
    idle_task: Option<IdleTask>,
    idle_park: Duration,
    executed: Vec<AtomicU64>,
    stolen: Vec<AtomicU64>,
    helped: AtomicU64,
    idle_work: AtomicU64,
    obs: Option<PoolObs>,
}

impl Shared {
    /// Pops a job for worker `w`: its own deque first (front — oldest
    /// first, preserving rough submission order per shard), then a steal
    /// sweep over the siblings (back — the job least likely to be warm in
    /// the victim's cache).
    /// Mirrors a pop's accounting into the registry, if one is attached.
    #[inline]
    fn note_popped(&self, depth_before: usize, stolen: bool, helped: bool) {
        if let Some(obs) = &self.obs {
            obs.queue_depth
                .set_u64(depth_before.saturating_sub(1) as u64);
            obs.jobs.inc();
            if stolen {
                obs.steals.inc();
            }
            if helped {
                obs.helped.inc();
            }
        }
    }

    fn pop(&self, w: usize) -> Option<Job> {
        if let Some(job) = self.queues[w]
            .lock()
            .expect("pool queue poisoned")
            .pop_front()
        {
            let before = self.queued.fetch_sub(1, Ordering::Relaxed);
            self.executed[w].fetch_add(1, Ordering::Relaxed);
            self.note_popped(before, false, false);
            return Some(job);
        }
        let n = self.queues.len();
        for step in 1..n {
            let victim = (w + step) % n;
            if let Some(job) = self.queues[victim]
                .lock()
                .expect("pool queue poisoned")
                .pop_back()
            {
                let before = self.queued.fetch_sub(1, Ordering::Relaxed);
                self.executed[w].fetch_add(1, Ordering::Relaxed);
                self.stolen[w].fetch_add(1, Ordering::Relaxed);
                self.note_popped(before, true, false);
                return Some(job);
            }
        }
        None
    }

    /// Steal sweep for a helping caller thread (no home deque).
    fn pop_any(&self) -> Option<Job> {
        for queue in &self.queues {
            if let Some(job) = queue.lock().expect("pool queue poisoned").pop_back() {
                let before = self.queued.fetch_sub(1, Ordering::Relaxed);
                self.helped.fetch_add(1, Ordering::Relaxed);
                self.note_popped(before, false, true);
                return Some(job);
            }
        }
        None
    }

    fn push(&self, affinity: usize, job: Job) {
        let n = self.queues.len();
        self.queues[affinity % n]
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
        let before = self.queued.fetch_add(1, Ordering::SeqCst);
        if let Some(obs) = &self.obs {
            obs.queue_depth.set_u64(before as u64 + 1);
        }
        // Wake a parked worker — one new job needs at most one. When no
        // worker is parked (the common busy case) the park lock is
        // skipped entirely. SeqCst on `queued` above and `parked` here
        // pairs with the worker's store-parked-then-recheck-queued
        // sequence under the park lock: either the worker sees the new
        // job and never waits, or this thread sees `parked > 0` and the
        // lock-ordered notify reaches it. The park timeout backstops any
        // interleaving this misses.
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().expect("pool park lock poisoned");
            self.wake.notify_one();
        }
    }

    /// Runs one fire-and-forget job, catching a panic so the executing
    /// thread survives: an unwound worker would silently shrink the pool
    /// (and an unwound helping caller would abort an unrelated
    /// [`Pool::run`]). The panic is counted in [`PoolStats`]; batch jobs
    /// wrap their own catch and re-raise on the submitting thread
    /// instead (the behaviour of the scoped-thread fan-out this pool
    /// replaced).
    fn execute(&self, job: Job) {
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            self.panicked_jobs.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn worker_loop(&self, w: usize) {
        loop {
            if let Some(job) = self.pop(w) {
                self.execute(job);
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                // Graceful: only exit once every enqueued job has been
                // drained (by us or a sibling).
                if self.queued.load(Ordering::Relaxed) == 0 {
                    return;
                }
                continue;
            }
            if let Some(idle) = &self.idle_task {
                if idle(w) {
                    self.idle_work.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = &self.obs {
                        obs.idle_cycles.inc();
                    }
                    continue;
                }
            }
            let guard = self.park.lock().expect("pool park lock poisoned");
            // Declare parked *before* the queued re-check: a push that
            // this check misses is then guaranteed to observe
            // `parked > 0` (SeqCst pairing in `push`) and notify under
            // the lock we hold, so the wakeup cannot be lost.
            self.parked.fetch_add(1, Ordering::SeqCst);
            if self.queued.load(Ordering::SeqCst) == 0 && !self.shutdown.load(Ordering::Acquire) {
                let _ = self
                    .wake
                    .wait_timeout(guard, self.idle_park)
                    .expect("pool park lock poisoned");
            }
            self.parked.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Synchronisation point for one [`Pool::run`] batch.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    /// Set when a job of *this* batch panicked; re-raised by this batch's
    /// `run` caller (per batch, so a panic can never surface in — or be
    /// swallowed by — a concurrent batch's caller).
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("latch poisoned") == 0
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch poisoned");
        }
    }
}

/// The persistent worker pool. See the module docs for the design.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// A pool of `workers` threads with default parking and no idle task.
    pub fn new(workers: usize) -> Self {
        Self::with_config(PoolConfig {
            workers,
            ..PoolConfig::default()
        })
    }

    /// A pool built from an explicit configuration.
    ///
    /// # Panics
    /// Panics when `config.workers == 0`.
    pub fn with_config(config: PoolConfig) -> Self {
        assert!(config.workers > 0, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            queues: (0..config.workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            queued: AtomicUsize::new(0),
            park: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            parked: AtomicUsize::new(0),
            panicked_jobs: AtomicU64::new(0),
            idle_task: config.idle_task,
            idle_park: config.idle_park,
            executed: (0..config.workers).map(|_| AtomicU64::new(0)).collect(),
            stolen: (0..config.workers).map(|_| AtomicU64::new(0)).collect(),
            helped: AtomicU64::new(0),
            idle_work: AtomicU64::new(0),
            obs: config.metrics.as_deref().map(PoolObs::register),
        });
        let handles = (0..config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pi-sched-{w}"))
                    .spawn(move || shared.worker_loop(w))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Enqueues a fire-and-forget job on the deque selected by
    /// `affinity % workers`.
    ///
    /// Jobs spawned before [`Pool::shutdown`] is *called* are guaranteed
    /// to run; a spawn racing with shutdown may be dropped.
    pub fn spawn(&self, affinity: usize, job: Job) {
        self.shared.push(affinity, job);
    }

    /// Runs a batch of `(affinity, job)` pairs to completion.
    ///
    /// The calling thread does not block idly: after enqueueing it helps
    /// drain the deques (possibly executing jobs of other concurrent
    /// batches — all jobs are independent) until every job of *this*
    /// batch has finished. Any number of threads may call `run`
    /// concurrently.
    pub fn run(&self, jobs: Vec<(usize, Job)>) {
        if jobs.is_empty() {
            return;
        }
        /// Counts the latch down when dropped, so a panicking job (whose
        /// panic a worker catches, or which unwinds a helping caller)
        /// still completes the batch instead of hanging it.
        struct CountDown(Arc<Latch>);
        impl Drop for CountDown {
            fn drop(&mut self) {
                self.0.count_down();
            }
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        if let Some(obs) = &self.shared.obs {
            obs.jobs_per_run.record(jobs.len() as u64);
        }
        for (affinity, job) in jobs {
            // Declared before the catch so the count-down (its Drop) runs
            // after the panic flag is stored — the caller's post-batch
            // check must observe the flag once the latch opens.
            let guard = CountDown(Arc::clone(&latch));
            self.shared.push(
                affinity,
                Box::new(move || {
                    let _guard = guard;
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                        _guard.0.panicked.store(true, Ordering::Release);
                    }
                }),
            );
        }
        while !latch.is_done() {
            match self.shared.pop_any() {
                // The drained job may belong to any batch or be a raw
                // fire-and-forget spawn; execute through the catching
                // path so a foreign panic cannot unwind this caller.
                Some(job) => self.shared.execute(job),
                // Every job of this batch is already claimed by a worker;
                // wait for the stragglers to finish.
                None => latch.wait(),
            }
        }
        assert!(
            !latch.panicked.load(Ordering::Acquire),
            "a pool job of this batch panicked"
        );
    }

    /// Snapshot of the per-worker counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self
                .shared
                .executed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            stolen: self
                .shared
                .stolen
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            helped: self.shared.helped.load(Ordering::Relaxed),
            idle_work: self.shared.idle_work.load(Ordering::Relaxed),
            panicked_jobs: self.shared.panicked_jobs.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: workers drain every job already enqueued, then
    /// exit; returns once all workers have been joined. Dropping the pool
    /// does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.park.lock().expect("pool park lock poisoned");
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("pool worker panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Pins weighted shards to workers: longest-processing-time-first greedy
/// assignment, so each worker's pinned shards carry roughly equal total
/// weight. Returns the worker index for every shard. Shards with equal
/// weight keep a deterministic assignment (stable order).
///
/// The engine weights shards by row count (equi-depth sharding makes the
/// weights near-uniform, but explicit [`RangePartition`] boundaries and
/// duplicate-heavy data can skew them arbitrarily).
///
/// [`RangePartition`]: https://docs.rs/pi-storage
///
/// # Panics
/// Panics when `workers == 0`.
pub fn plan_affinity(weights: &[usize], workers: usize) -> Vec<usize> {
    assert!(workers > 0, "affinity plan needs at least one worker");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut load = vec![0usize; workers];
    let mut assignment = vec![0usize; weights.len()];
    for shard in order {
        let worker = (0..workers)
            .min_by_key(|&w| (load[w], w))
            .expect("workers > 0");
        assignment[shard] = worker;
        load[worker] += weights[shard];
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_executes_every_job_exactly_once() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<(usize, Job)> = (0..100)
            .map(|i| {
                let counter = Arc::clone(&counter);
                (
                    i,
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Job,
                )
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn spawned_jobs_drain_before_shutdown() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..50 {
            let counter = Arc::clone(&counter);
            pool.spawn(
                i,
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn concurrent_runs_from_many_threads() {
        let pool = Arc::new(Pool::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for round in 0..10 {
                        let jobs: Vec<(usize, Job)> = (0..8)
                            .map(|i| {
                                let counter = Arc::clone(&counter);
                                (
                                    t * 100 + round * 8 + i,
                                    Box::new(move || {
                                        counter.fetch_add(1, Ordering::Relaxed);
                                    }) as Job,
                                )
                            })
                            .collect();
                        pool.run(jobs);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 10 * 8);
    }

    #[test]
    fn idle_task_runs_when_pool_is_empty() {
        let hits = Arc::new(AtomicUsize::new(0));
        let idle_hits = Arc::clone(&hits);
        let pool = Pool::with_config(PoolConfig {
            workers: 1,
            idle_task: Some(Arc::new(move |_w| {
                // Report work a bounded number of times, then go idle.
                idle_hits.fetch_add(1, Ordering::Relaxed) < 10
            })),
            idle_park: Duration::from_millis(1),
            metrics: None,
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::Relaxed) <= 10 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(hits.load(Ordering::Relaxed) > 10, "idle task never ran");
        assert!(pool.stats().idle_work >= 10);
        pool.shutdown();
    }

    #[test]
    fn pool_metrics_land_in_the_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let pool = Pool::with_config(PoolConfig {
            workers: 2,
            metrics: Some(Arc::clone(&registry)),
            ..PoolConfig::default()
        });
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<(usize, Job)> = (0..30)
            .map(|i| {
                let counter = Arc::clone(&counter);
                (
                    i,
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Job,
                )
            })
            .collect();
        pool.run(jobs);
        pool.shutdown();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sched.pool.jobs"), Some(30));
        let per_run = snap.histogram("sched.pool.jobs_per_run").unwrap();
        assert_eq!(per_run.count, 1);
        assert_eq!(per_run.sum, 30);
        // The depth gauge is last-write-wins across racing pops, so only
        // its presence and plausibility are asserted here.
        let depth = snap.gauge("sched.pool.queue_depth").expect("depth gauge");
        assert!((0.0..=30.0).contains(&depth), "implausible depth {depth}");
        // Steals + helped are workload-dependent; the counters must at
        // least exist in the snapshot.
        assert!(snap.counter("sched.pool.steals").is_some());
        assert!(snap.counter("sched.pool.helped").is_some());
    }

    #[test]
    fn affinity_plan_balances_weights() {
        // Eight equal shards over four workers: two each.
        let plan = plan_affinity(&[10; 8], 4);
        for w in 0..4 {
            assert_eq!(plan.iter().filter(|&&a| a == w).count(), 2);
        }
        // A dominant shard gets a worker mostly to itself.
        let plan = plan_affinity(&[100, 10, 10, 10], 2);
        let big_worker = plan[0];
        let coloaded: usize = (1..4).filter(|&i| plan[i] == big_worker).count();
        assert!(
            coloaded <= 1,
            "heavy shard co-located with {coloaded} light shards"
        );
        // More workers than shards is fine.
        assert_eq!(plan_affinity(&[5], 8).len(), 1);
        assert!(plan_affinity(&[], 3).is_empty());
    }

    #[test]
    fn panicking_job_fails_the_batch_without_hanging() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(vec![(0, Box::new(|| panic!("job boom")) as Job)]);
        }));
        assert!(result.is_err(), "run() must re-raise the job's panic");
        // The workers survive the panic and the pool keeps serving.
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<(usize, Job)> = (0..4)
            .map(|i| {
                let counter = Arc::clone(&counter);
                (
                    i,
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Job,
                )
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        pool.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Pool::new(0);
    }
}
