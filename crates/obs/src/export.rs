//! Snapshot export: JSON, Prometheus-style text, and a schema checker.
//!
//! The build environment is offline, so there is no `serde`; the JSON
//! emitter assembles strings directly (names are validated dotted
//! identifiers, so escaping is trivial) and [`validate_snapshot_json`]
//! is a small recursive-descent JSON parser + shape check used by CI to
//! guarantee the emitted document stays machine-readable and keeps its
//! schema across refactors.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::registry::MetricsSnapshot;

/// Formats an `f64` as a JSON-safe number (finite shortest-round-trip;
/// non-finite sanitizes to 0, which [`crate::Gauge`] already enforces on
/// the write side).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

/// Escapes a metric name for a JSON string literal. Names are validated
/// to `[a-z0-9_.]` at registration, but escape defensively anyway.
fn json_string(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets()
        .map(|(bound, count)| format!("[{bound},{count}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        json_f64(h.mean()),
        h.p50(),
        h.p95(),
        h.p99(),
        h.p999(),
        buckets.join(",")
    )
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a JSON document:
    ///
    /// ```json
    /// {
    ///   "counters":   { "name": 123, ... },
    ///   "gauges":     { "name": 0.5, ... },
    ///   "histograms": { "name": { "count": n, "sum": s, "mean": m,
    ///                             "p50": .., "p95": .., "p99": .., "p999": ..,
    ///                             "buckets": [[bound, count], ...] }, ... }
    /// }
    /// ```
    ///
    /// Keys are in sorted (BTree) order, so output is deterministic.
    /// [`validate_snapshot_json`] checks this exact shape.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{}", json_string(name), value);
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (name, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{}", json_string(name), json_f64(*value));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{}", json_string(name), histogram_json(hist));
        }
        out.push_str("}}");
        out
    }

    /// Serializes the snapshot in Prometheus exposition text format.
    /// Dots in metric names become underscores (`server.queue_wait_ns` →
    /// `server_queue_wait_ns`); histograms emit cumulative `_bucket{le=..}`
    /// series plus `_sum` and `_count`, the standard histogram layout.
    pub fn to_prometheus(&self) -> String {
        let flat = |name: &str| name.replace('.', "_");
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = flat(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = flat(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}", json_f64(*value));
        }
        for (name, hist) in &self.histograms {
            let n = flat(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in hist.buckets() {
                cumulative += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{n}_sum {}", hist.sum);
            let _ = writeln!(out, "{n}_count {}", hist.count);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Minimal JSON parser + schema check (the CI snapshot-schema guard).
// ---------------------------------------------------------------------

/// A parsed JSON value — only what the checker needs.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (names are ASCII, but stay
                    // correct for arbitrary payloads).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage after document"));
    }
    Ok(value)
}

fn as_object<'a>(value: &'a Json, what: &str) -> Result<&'a BTreeMap<String, Json>, String> {
    match value {
        Json::Object(map) => Ok(map),
        _ => Err(format!("{what} must be an object")),
    }
}

fn as_number(value: &Json, what: &str) -> Result<f64, String> {
    match value {
        Json::Number(n) => Ok(*n),
        _ => Err(format!("{what} must be a number")),
    }
}

fn check_count(value: &Json, what: &str) -> Result<(), String> {
    let n = as_number(value, what)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{what} must be a non-negative integer, got {n}"));
    }
    Ok(())
}

/// Validates that `text` is well-formed JSON in the exact
/// [`MetricsSnapshot::to_json`] schema: top-level `counters` / `gauges` /
/// `histograms` objects, integer counters, numeric gauges, and histogram
/// records carrying `count`, `sum`, `mean`, `p50`, `p95`, `p99`, `p999`
/// and a `buckets` array of `[bound, count]` pairs with non-decreasing
/// bounds and bucket counts summing to `count`.
///
/// ```
/// let registry = pi_obs::MetricsRegistry::new();
/// registry.counter("a.b").add(7);
/// registry.histogram("a.lat_ns").record(1500);
/// let json = registry.snapshot().to_json();
/// pi_obs::validate_snapshot_json(&json).expect("schema holds");
/// assert!(pi_obs::validate_snapshot_json("{\"counters\":3}").is_err());
/// ```
pub fn validate_snapshot_json(text: &str) -> Result<(), String> {
    let root = parse_json(text)?;
    let top = as_object(&root, "snapshot")?;
    for section in ["counters", "gauges", "histograms"] {
        if !top.contains_key(section) {
            return Err(format!("missing top-level section {section:?}"));
        }
    }
    for (key, _) in top.iter() {
        if !matches!(key.as_str(), "counters" | "gauges" | "histograms") {
            return Err(format!("unexpected top-level key {key:?}"));
        }
    }
    for (name, value) in as_object(&top["counters"], "counters")? {
        check_count(value, &format!("counter {name:?}"))?;
    }
    for (name, value) in as_object(&top["gauges"], "gauges")? {
        as_number(value, &format!("gauge {name:?}"))?;
    }
    for (name, value) in as_object(&top["histograms"], "histograms")? {
        let hist = as_object(value, &format!("histogram {name:?}"))?;
        for field in ["count", "sum", "p50", "p95", "p99", "p999"] {
            let value = hist
                .get(field)
                .ok_or_else(|| format!("histogram {name:?} missing {field:?}"))?;
            check_count(value, &format!("histogram {name:?} field {field:?}"))?;
        }
        as_number(
            hist.get("mean")
                .ok_or_else(|| format!("histogram {name:?} missing \"mean\""))?,
            &format!("histogram {name:?} mean"),
        )?;
        let buckets = match hist
            .get("buckets")
            .ok_or_else(|| format!("histogram {name:?} missing \"buckets\""))?
        {
            Json::Array(items) => items,
            _ => return Err(format!("histogram {name:?} buckets must be an array")),
        };
        let mut total = 0.0f64;
        let mut last_bound = -1.0f64;
        for pair in buckets {
            let (bound, count) = match pair {
                Json::Array(xs) if xs.len() == 2 => (
                    as_number(&xs[0], "bucket bound")?,
                    as_number(&xs[1], "bucket count")?,
                ),
                _ => {
                    return Err(format!(
                        "histogram {name:?} buckets must be [bound, count] pairs"
                    ))
                }
            };
            if bound <= last_bound {
                return Err(format!("histogram {name:?} bucket bounds must increase"));
            }
            last_bound = bound;
            total += count;
        }
        let expected = as_number(&hist["count"], "count")?;
        if total != expected {
            return Err(format!(
                "histogram {name:?} bucket counts sum to {total}, count says {expected}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn populated() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry.counter("server.accepted").add(128);
        registry.counter("server.rejected").add(3);
        registry.gauge("engine.rho.ra.0").set(0.625);
        registry.gauge("sched.pool.queue_depth").set_u64(4);
        let h = registry.histogram("server.queue_wait_ns");
        for v in [250u64, 1_000, 1_000, 40_000, 2_000_000] {
            h.record(v);
        }
        registry
    }

    #[test]
    fn json_roundtrips_through_the_validator() {
        let json = populated().snapshot().to_json();
        validate_snapshot_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"server.accepted\":128"));
        assert!(json.contains("\"engine.rho.ra.0\":0.625"));
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let json = MetricsRegistry::new().snapshot().to_json();
        assert_eq!(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
        validate_snapshot_json(&json).expect("empty snapshot validates");
    }

    #[test]
    fn validator_rejects_shape_violations() {
        assert!(validate_snapshot_json("not json").is_err());
        assert!(validate_snapshot_json("{}").is_err(), "missing sections");
        assert!(
            validate_snapshot_json("{\"counters\":{},\"gauges\":{},\"histograms\":{},\"x\":1}")
                .is_err(),
            "unknown section"
        );
        assert!(
            validate_snapshot_json("{\"counters\":{\"a\":-1},\"gauges\":{},\"histograms\":{}}")
                .is_err(),
            "negative counter"
        );
        assert!(
            validate_snapshot_json(
                "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{\"count\":1}}}"
            )
            .is_err(),
            "histogram missing fields"
        );
        let inconsistent = "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{\
             \"count\":5,\"sum\":10,\"mean\":2,\"p50\":2,\"p95\":2,\"p99\":2,\"p999\":2,\
             \"buckets\":[[2,3]]}}}";
        assert!(
            validate_snapshot_json(inconsistent).is_err(),
            "bucket sum must match count"
        );
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let text = populated().snapshot().to_prometheus();
        assert!(text.contains("# TYPE server_accepted counter"));
        assert!(text.contains("server_accepted 128"));
        assert!(text.contains("# TYPE engine_rho_ra_0 gauge"));
        assert!(text.contains("# TYPE server_queue_wait_ns histogram"));
        assert!(text.contains("server_queue_wait_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("server_queue_wait_ns_count 5"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
        {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "cumulative bucket counts must be monotone");
            last = n;
        }
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = r#"{"a\n\"b":[1,2.5,-3e2,true,false,null,{"k":"A"}]}"#;
        let parsed = parse_json(doc).expect("parses");
        match parsed {
            Json::Object(map) => {
                let items = match &map["a\n\"b"] {
                    Json::Array(xs) => xs,
                    other => panic!("expected array, got {other:?}"),
                };
                assert_eq!(items.len(), 7);
                assert_eq!(items[2], Json::Number(-300.0));
                assert_eq!(
                    items[6],
                    Json::Object(BTreeMap::from([(
                        "k".to_string(),
                        Json::String("A".to_string())
                    )]))
                );
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
