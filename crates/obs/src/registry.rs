//! The metrics registry: named handles and structured snapshots.
//!
//! A [`MetricsRegistry`] maps dotted metric names to shared handles.
//! Registration is get-or-create (two components asking for
//! `"server.accepted"` share one counter) and happens once per handle at
//! component construction time; the hot path only touches the returned
//! `Arc`s. [`MetricsRegistry::snapshot`] walks all three maps under read
//! locks and produces an owned [`MetricsSnapshot`] — the unit of export
//! (JSON, Prometheus text) and of programmatic inspection in tests,
//! benches and dashboards.
//!
//! ## Naming scheme
//!
//! `layer.subsystem.metric[.qualifier]`, lowercase, `[a-z0-9_.]`:
//! `sched.pool.steals`, `server.queue_wait_ns`, `executor.phase.scan_ns`,
//! `engine.rho.<column>.<shard>`, `core.<column>.cost_error_pm`.
//! Nanosecond histograms end in `_ns`, per-mille histograms in `_pm`.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};

/// Sanitizes one component of a dotted metric name: ASCII letters are
/// lowercased, digits and `_` pass through, everything else (including
/// `.`, so a component cannot fabricate hierarchy) becomes `_`. Used
/// when embedding user-supplied identifiers — column names, worker ids —
/// into metric names.
///
/// ```
/// assert_eq!(pi_obs::sanitize_component("RA (J2000)"), "ra__j2000_");
/// assert_eq!(pi_obs::sanitize_component("dec"), "dec");
/// ```
pub fn sanitize_component(raw: &str) -> String {
    raw.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

/// A process-local registry of named counters, gauges and histograms.
///
/// Components default to the process-wide [`MetricsRegistry::global`]
/// registry so a whole serving stack lands in one snapshot; tests and
/// benches that need isolation construct their own with
/// [`MetricsRegistry::new`] and pass it down.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Get-or-create `name` in one of the three maps.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    debug_assert!(
        name.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'.'),
        "metric names are lowercase dotted identifiers, got {name:?}"
    );
    if let Some(found) = map.read().expect("metrics map poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut writer = map.write().expect("metrics map poisoned");
    Arc::clone(
        writer
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl MetricsRegistry {
    /// Creates an empty, isolated registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide default registry. Components that are built
    /// without an explicit registry record here, so one snapshot covers
    /// the whole serving stack.
    pub fn global() -> Arc<MetricsRegistry> {
        static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())))
    }

    /// Returns the counter `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// Returns the gauge `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// Returns the histogram `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Takes a point-in-time copy of every registered metric. Counters
    /// and histograms are individually consistent (lane sums / bucket
    /// loads); the snapshot as a whole is a monitoring read, not a
    /// cross-metric barrier.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics map poisoned")
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics map poisoned")
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics map poisoned")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// An owned, structured copy of a registry's state at one point in time.
/// Maps are sorted by metric name (BTree order), so exports are
/// deterministic given the same values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Looks up a gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Looks up a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// All gauges whose name starts with `prefix`, in name order — how
    /// dashboards collect per-shard families like `engine.rho.<column>.*`.
    pub fn gauges_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, f64)> + 'a {
        self.gauges
            .range(prefix.to_string()..)
            .take_while(move |(name, _)| name.starts_with(prefix))
            .map(|(name, &v)| (name.as_str(), v))
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x.hits");
        let b = registry.counter("x.hits");
        a.add(2);
        b.add(3);
        assert_eq!(registry.snapshot().counter("x.hits"), Some(5));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_covers_all_three_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("c").add(1);
        registry.gauge("g").set(0.5);
        registry.histogram("h").record(100);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), Some(1));
        assert_eq!(snap.gauge("g"), Some(0.5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn prefix_queries_walk_families() {
        let registry = MetricsRegistry::new();
        registry.gauge("engine.rho.ra.0").set(0.25);
        registry.gauge("engine.rho.ra.1").set(0.75);
        registry.gauge("engine.rho.dec.0").set(1.0);
        registry.gauge("other").set(9.0);
        let snap = registry.snapshot();
        let ra: Vec<_> = snap.gauges_with_prefix("engine.rho.ra.").collect();
        assert_eq!(
            ra,
            vec![("engine.rho.ra.0", 0.25), ("engine.rho.ra.1", 0.75)]
        );
        assert_eq!(snap.gauges_with_prefix("engine.rho.").count(), 3);

        registry.counter("core.a.steps").add(4);
        registry.counter("core.b.steps").add(6);
        assert_eq!(registry.snapshot().counter_sum("core."), 10);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = MetricsRegistry::global();
        let b = MetricsRegistry::global();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn registry_is_usable_across_threads() {
        let registry = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let c = registry.counter("threads.hits");
                    let h = registry.histogram("threads.lat_ns");
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("threads.hits"), Some(4000));
        assert_eq!(snap.histogram("threads.lat_ns").unwrap().count, 4000);
    }
}
