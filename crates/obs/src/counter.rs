//! Lock-free counters and gauges.
//!
//! [`Counter`] is write-heavy by design — the executor bumps it on every
//! batch, every worker on every steal — so its value is striped across
//! per-thread [`CachePadded`] atomic lanes: concurrent writers land on
//! distinct cache lines and never bounce a shared line between cores.
//! Reads ([`Counter::get`]) sum the lanes; they are monotone but not a
//! linearizable snapshot, which is exactly the contract a monitoring
//! counter needs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Pads and aligns a value to 128 bytes so neighbouring values never
/// share a cache line (128 covers the adjacent-line prefetcher on x86_64
/// as well as aarch64's 128-byte lines, the same choice crossbeam makes).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned cell.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Number of write lanes per counter. A power of two so lane selection
/// is a mask; 16 lanes cover typical worker-pool widths — beyond that,
/// threads share lanes, which is correct (atomic) and still spreads the
/// traffic 16 ways.
const LANES: usize = 16;

/// Process-wide source of thread lane ids: each thread draws one id the
/// first time it touches any counter and keeps it for life, so a given
/// thread always hits the same lane of every counter (good locality) and
/// threads are spread round-robin across lanes.
static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_LANE: usize = NEXT_LANE.fetch_add(1, Ordering::Relaxed) % LANES;
}

#[inline]
fn thread_lane() -> usize {
    THREAD_LANE.with(|lane| *lane)
}

/// A monotone, lock-free, write-striped counter.
///
/// ```
/// let c = pi_obs::Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug)]
pub struct Counter {
    lanes: Box<[CachePadded<AtomicU64>; LANES]>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter {
            lanes: Box::new(std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0)))),
        }
    }

    /// Adds `n` to the calling thread's lane.
    #[inline]
    pub fn add(&self, n: u64) {
        self.lanes[thread_lane()].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sums the lanes. Monotone across calls, but concurrent writers may
    /// or may not be included — a monitoring read, not a barrier.
    pub fn get(&self) -> u64 {
        self.lanes
            .iter()
            .map(|lane| lane.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins gauge holding an `f64` (Prometheus's gauge domain):
/// queue depths, convergence fractions ρ, cache ratios. Stored as bits
/// in one atomic — gauges are set rarely relative to counter traffic, so
/// striping would only slow the read side down.
///
/// ```
/// let g = pi_obs::Gauge::new();
/// g.set(0.75);
/// assert_eq!(g.get(), 0.75);
/// g.set_u64(9);
/// assert_eq!(g.get(), 9.0);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge reading `0.0`.
    pub fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge. Non-finite values are recorded as `0.0` so JSON
    /// export never has to emit `NaN`/`inf`.
    #[inline]
    pub fn set(&self, value: f64) {
        let clean = if value.is_finite() { value } else { 0.0 };
        self.bits.store(clean.to_bits(), Ordering::Relaxed);
    }

    /// Sets the gauge from an integer (queue depths, batch counts).
    #[inline]
    pub fn set_u64(&self, value: u64) {
        self.set(value as f64);
    }

    /// Reads the gauge.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_across_threads() {
        let counter = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), threads * per_thread);
    }

    #[test]
    fn counter_add_sums_lanes() {
        let counter = Counter::new();
        counter.add(3);
        counter.add(4);
        assert_eq!(counter.get(), 7);
    }

    #[test]
    fn gauge_is_last_write_wins_and_sanitizes() {
        let gauge = Gauge::new();
        assert_eq!(gauge.get(), 0.0);
        gauge.set(0.25);
        gauge.set(0.5);
        assert_eq!(gauge.get(), 0.5);
        gauge.set(f64::NAN);
        assert_eq!(gauge.get(), 0.0, "non-finite values sanitize to zero");
        gauge.set(f64::INFINITY);
        assert_eq!(gauge.get(), 0.0);
    }

    #[test]
    fn cache_padded_is_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>(), 128);
    }
}
