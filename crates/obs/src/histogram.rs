//! Log-bucketed, mergeable latency/size histograms.
//!
//! A [`Histogram`] has [`BUCKETS`] buckets whose upper bounds grow by √2
//! per step (two buckets per octave): bucket 0 holds exact zeros, the
//! geometric range covers `1..=`[`MAX_TRACKED`] (about 24 s when values
//! are nanoseconds), and the final bucket absorbs anything larger. The
//! √2 growth bounds the relative error of every quantile read: the
//! reported value is the bucket's upper bound, at most one bucket — a
//! factor of √2, or ×2 at the small-integer end where bounds are
//! consecutive integers — above the true nearest-rank sample, which is
//! "exact enough" for p50/p95/p99/p999 dashboards while keeping record
//! cost at one relaxed atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Number of buckets: one zero bucket, 70 √2-spaced geometric buckets
/// (two per octave), one overflow bucket.
pub const BUCKETS: usize = 72;

/// Largest value the geometric buckets track exactly-enough; larger
/// values clip into the overflow bucket.
pub const MAX_TRACKED: u64 = 1 << 34; // ≈ 1.7e10; last geometric bound is ≈ 2.4e10

/// Bucket upper bounds, strictly increasing: `[0, 1, 2, 3, 4, 5, 6, 8,
/// 11, 16, 23, 32, ...]` — `round(2^(k/2))` with consecutive-integer
/// fill-in at the small end, `u64::MAX` last.
pub fn bucket_bounds() -> &'static [u64; BUCKETS] {
    static BOUNDS: OnceLock<[u64; BUCKETS]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut bounds = [0u64; BUCKETS];
        let mut prev = 0u64;
        for (i, bound) in bounds.iter_mut().enumerate().take(BUCKETS - 1).skip(1) {
            let geometric = 2f64.powf((i - 1) as f64 / 2.0).round() as u64;
            prev = geometric.max(prev + 1);
            *bound = prev;
        }
        bounds[BUCKETS - 1] = u64::MAX;
        bounds
    })
}

/// Index of the bucket that holds `value`: the first bucket whose upper
/// bound is ≥ `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    // The first few buckets hold consecutive integers; answering them
    // without the binary search keeps the common small-value path short.
    if value <= 6 {
        return value as usize;
    }
    bucket_bounds().partition_point(|&bound| bound < value)
}

/// A concurrent log-bucketed histogram. Recording is one relaxed atomic
/// increment; snapshots and quantiles are taken via [`Histogram::snapshot`].
///
/// ```
/// let h = pi_obs::Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 100);
/// let p50 = snap.quantile(0.50);
/// assert!((45..=64).contains(&p50), "√2 bucket containing 50: {p50}");
/// ```
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating far beyond any
    /// realistic latency).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Takes a point-in-time copy of the bucket counts. Concurrent
    /// recordings may or may not be included.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: counts.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            counts,
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state; the quantile /
/// export surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (for means); saturation-free for < 584
    /// years of cumulative nanoseconds.
    pub sum: u64,
    counts: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            counts: vec![0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self` — the merge that lets per-client or
    /// per-worker histograms aggregate without locks on the record path.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`: the upper bound
    /// of the bucket containing the rank-⌈q·n⌉ sample (0 for an empty
    /// histogram). Never below the true sample; at most one √2 bucket
    /// above it. Overflow-bucket reads report twice the last tracked
    /// bound rather than `u64::MAX`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let bounds = bucket_bounds();
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == BUCKETS - 1 {
                    bounds[BUCKETS - 2].saturating_mul(2)
                } else {
                    bounds[i]
                };
            }
        }
        bounds[BUCKETS - 2].saturating_mul(2)
    }

    /// [`Self::quantile`] as a [`Duration`] for nanosecond histograms.
    pub fn quantile_duration(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile(q))
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of the recorded values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, in
    /// increasing bound order — the export format.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let bounds = bucket_bounds();
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(move |(i, &n)| (bounds[i], n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bounds_are_strictly_increasing_and_sqrt2_spaced() {
        let bounds = bucket_bounds();
        for i in 1..BUCKETS {
            assert!(bounds[i] > bounds[i - 1], "bounds must strictly increase");
        }
        // Every geometric step is at most a doubling (the "one bucket"
        // error guarantee), and ≈ √2 once past the integer fill-in.
        for i in 2..BUCKETS - 1 {
            assert!(
                bounds[i] <= bounds[i - 1] * 2,
                "step {i} too wide: {} -> {}",
                bounds[i - 1],
                bounds[i]
            );
        }
        let ratio = bounds[60] as f64 / bounds[59] as f64;
        assert!((ratio - std::f64::consts::SQRT_2).abs() < 0.01);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[BUCKETS - 1], u64::MAX);
        assert!(bounds[BUCKETS - 2] >= MAX_TRACKED);
    }

    #[test]
    fn bucket_index_matches_bounds() {
        let bounds = bucket_bounds();
        for v in [0u64, 1, 2, 5, 6, 7, 8, 9, 100, 12345, 1 << 30, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bounds[i], "value {v} above its bucket bound");
            if i > 0 {
                assert!(v > bounds[i - 1], "value {v} not above previous bound");
            }
        }
    }

    #[test]
    fn quantiles_bracket_exact_nearest_rank() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(1usize..400);
            let mut samples: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..5_000_000)).collect();
            let hist = Histogram::new();
            for &s in &samples {
                hist.record(s);
            }
            samples.sort_unstable();
            let snap = hist.snapshot();
            for q in [0.5, 0.95, 0.99, 0.999] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = samples[rank - 1];
                let approx = snap.quantile(q);
                assert!(approx >= exact, "q{q}: {approx} < exact {exact}");
                assert!(
                    approx <= exact.saturating_mul(2).max(6),
                    "q{q}: {approx} more than one bucket above exact {exact}"
                );
            }
        }
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.buckets().count(), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 { &a } else { &b }.record(v * 17 % 4096);
            both.record(v * 17 % 4096);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn overflow_values_are_counted_not_lost() {
        let hist = Histogram::new();
        hist.record(u64::MAX);
        hist.record(MAX_TRACKED * 4);
        let snap = hist.snapshot();
        assert_eq!(snap.count, 2);
        let p = snap.quantile(0.5);
        assert!(p >= MAX_TRACKED, "overflow quantile stays large: {p}");
        assert!(p < u64::MAX, "overflow quantile avoids u64::MAX sentinel");
    }

    #[test]
    fn duration_recording_uses_nanoseconds() {
        let hist = Histogram::new();
        hist.record_duration(Duration::from_micros(3));
        let snap = hist.snapshot();
        let p50 = snap.p50();
        assert!((2_900..=4_096).contains(&p50), "3µs bucket, got {p50}");
    }
}
