//! # pi-obs — zero-cost metrics, latency histograms and convergence tracing
//!
//! The paper's whole argument (Holanda et al., PVLDB 12(13), 2019) is
//! about controlling *per-query* indexing overhead against a cost model,
//! so the serving stack built on top of it needs to observe exactly that:
//! where batch time goes, how far every shard is from convergence, and
//! how well the cost model's predictions track reality. This crate is the
//! measurement layer the rest of the workspace records into. The build
//! environment is offline, so instead of depending on `tracing` /
//! `prometheus` / `hdrhistogram` it vendors the minimal primitives,
//! shim-style:
//!
//! * [`Counter`] / [`Gauge`] — lock-free. Counters stripe their value
//!   across per-thread [`CachePadded`] atomic lanes so concurrent
//!   writers never share a cache line; reads aggregate the lanes.
//! * [`Histogram`] — log-bucketed latency/size histogram: ~64 buckets
//!   whose bounds grow by √2 per step (two buckets per octave), covering
//!   1 ns … ≈ 24 s plus an overflow bucket. Mergeable; quantile reads
//!   ([`HistogramSnapshot::quantile`]) are exact-enough p50/p95/p99/p999:
//!   the reported value is the bucket upper bound, at most one bucket
//!   (× √2, × 2 at the small-integer end) above the true nearest-rank
//!   sample.
//! * [`MetricsRegistry`] — name → handle map with get-or-register typed
//!   accessors, a process-wide [`MetricsRegistry::global`] default, and
//!   [`MetricsRegistry::snapshot`] producing a [`MetricsSnapshot`] that
//!   exports as JSON ([`MetricsSnapshot::to_json`]) or Prometheus-style
//!   text ([`MetricsSnapshot::to_prometheus`]).
//! * [`timed!`] / [`ScopeTimer`] — timed scopes that are **feature
//!   gated**: with the `obs` cargo feature off, [`ENABLED`] is a `false`
//!   constant, the macro expands to the bare body and the branch folds
//!   away at compile time. No `Instant::now` syscalls, no histogram
//!   traffic, nothing to mispredict — the zero-cost path is guarded by
//!   tests in this crate.
//!
//! ## Gating policy
//!
//! Structural counters and gauges (jobs executed, batches rejected,
//! queue depth, convergence ρ) are always live: they are single relaxed
//! atomic operations, the same cost class as the scheduler's own
//! `PoolStats`, and serving-layer APIs (`ServerStats`) are fed from
//! them. Anything that needs a *clock* — per-phase batch timing, queue
//! wait, ticket latency, cost-model error — goes through [`timed!`] /
//! [`ScopeTimer`] / `if pi_obs::ENABLED { .. }` and vanishes when the
//! feature is off.
//!
//! ```
//! use pi_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let batches = registry.counter("executor.batches");
//! let latency = registry.histogram("executor.batch_ns");
//!
//! batches.add(1);
//! let sum = pi_obs::timed!(latency, (0..1000u64).sum::<u64>());
//! assert_eq!(sum, 499_500);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("executor.batches"), Some(1));
//! assert!(snap.to_json().contains("\"executor.batches\""));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counter;
pub mod export;
pub mod histogram;
pub mod registry;

pub use counter::{CachePadded, Counter, Gauge};
pub use export::validate_snapshot_json;
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{sanitize_component, MetricsRegistry, MetricsSnapshot};

/// Compile-time master switch for time measurement, mirroring the `obs`
/// cargo feature. `if pi_obs::ENABLED { .. }` is the canonical guard for
/// instrumentation that needs a clock: the constant folds, so with the
/// feature off the guarded code is removed entirely by the compiler.
pub const ENABLED: bool = cfg!(feature = "obs");

/// Times an expression into a [`Histogram`] handle — feature-gated.
///
/// Two forms:
/// * `timed!(histogram, expr)` — records `expr`'s wall time (nanoseconds)
///   into an existing histogram handle; evaluates to `expr`'s value.
/// * `timed!(registry, "name", expr)` — resolves (get-or-register) the
///   histogram `name` in `registry` first; prefer the handle form on hot
///   paths.
///
/// With the `obs` feature off both forms expand to the bare expression:
/// no `Instant::now`, no histogram lookup, no recording.
///
/// ```
/// let registry = pi_obs::MetricsRegistry::new();
/// let hist = registry.histogram("work_ns");
/// let out = pi_obs::timed!(hist, { 2 + 2 });
/// assert_eq!(out, 4);
/// let out = pi_obs::timed!(registry, "work_ns", 3 * 3);
/// assert_eq!(out, 9);
/// if pi_obs::ENABLED {
///     assert_eq!(registry.snapshot().histogram("work_ns").unwrap().count, 2);
/// }
/// ```
#[macro_export]
macro_rules! timed {
    ($hist:expr, $body:expr) => {{
        if $crate::ENABLED {
            let __obs_start = ::std::time::Instant::now();
            let __obs_out = $body;
            ($hist).record_duration(__obs_start.elapsed());
            __obs_out
        } else {
            $body
        }
    }};
    ($registry:expr, $name:expr, $body:expr) => {{
        if $crate::ENABLED {
            let __obs_hist = ($registry).histogram($name);
            let __obs_start = ::std::time::Instant::now();
            let __obs_out = $body;
            __obs_hist.record_duration(__obs_start.elapsed());
            __obs_out
        } else {
            $body
        }
    }};
}

/// A drop-guard timed scope for code with early returns or multiple exit
/// paths, where [`timed!`]'s expression form is awkward. Records the
/// elapsed time into the histogram when dropped; feature-gated like the
/// macro (when `obs` is off, construction and drop are no-ops and the
/// struct carries no clock).
///
/// ```
/// let registry = pi_obs::MetricsRegistry::new();
/// let hist = registry.histogram("scope_ns");
/// {
///     let _scope = pi_obs::ScopeTimer::new(&hist);
///     // ... work with early returns ...
/// }
/// if pi_obs::ENABLED {
///     assert_eq!(registry.snapshot().histogram("scope_ns").unwrap().count, 1);
/// }
/// ```
pub struct ScopeTimer<'a> {
    target: Option<(&'a Histogram, std::time::Instant)>,
}

impl<'a> ScopeTimer<'a> {
    /// Starts a timed scope over `histogram`. No-op when [`ENABLED`] is
    /// false.
    #[inline]
    pub fn new(histogram: &'a Histogram) -> Self {
        ScopeTimer {
            target: if ENABLED {
                Some((histogram, std::time::Instant::now()))
            } else {
                None
            },
        }
    }

    /// Abandons the scope without recording (e.g. on an error path that
    /// should not pollute the latency distribution).
    #[inline]
    pub fn cancel(mut self) {
        self.target = None;
    }
}

impl Drop for ScopeTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_mirrors_feature() {
        assert_eq!(ENABLED, cfg!(feature = "obs"));
    }

    #[test]
    fn timed_returns_body_value_and_records_iff_enabled() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("t");
        let mut side = 0u32;
        let out = timed!(hist, {
            side += 1;
            "value"
        });
        assert_eq!(out, "value");
        assert_eq!(side, 1, "body must run exactly once");
        let count = registry.snapshot().histogram("t").unwrap().count;
        assert_eq!(count, u64::from(ENABLED));
    }

    #[test]
    fn timed_registry_form_resolves_by_name() {
        let registry = MetricsRegistry::new();
        let out = timed!(registry, "by_name", 21 * 2);
        assert_eq!(out, 42);
        let snap = registry.snapshot();
        if ENABLED {
            assert_eq!(snap.histogram("by_name").unwrap().count, 1);
        } else {
            assert!(snap.histogram("by_name").is_none(), "no lookup when off");
        }
    }

    #[test]
    fn scope_timer_records_on_drop_and_cancel_suppresses() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("scope");
        {
            let _s = ScopeTimer::new(&hist);
        }
        {
            let s = ScopeTimer::new(&hist);
            s.cancel();
        }
        let count = registry.snapshot().histogram("scope").unwrap().count;
        assert_eq!(count, u64::from(ENABLED), "drop records once, cancel never");
    }

    /// The overhead guard for the zero-cost claim: a million timed scopes
    /// around trivial work must cost nanoseconds each, not microseconds.
    /// With `obs` off the loop is the bare sum (the branch const-folds);
    /// with it on, the bound still holds comfortably on any machine that
    /// can run the test suite (two `Instant::now` calls + one relaxed
    /// atomic add per iteration). The generous ceiling keeps the test
    /// robust under CI noise while still catching accidental locks,
    /// allocation or syscalls on the timed path.
    #[test]
    fn timed_overhead_is_bounded() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("overhead");
        const ITERS: u64 = 1_000_000;
        let start = std::time::Instant::now();
        let mut acc = 0u64;
        for i in 0..ITERS {
            acc = acc.wrapping_add(timed!(hist, std::hint::black_box(i)));
        }
        let elapsed = start.elapsed();
        std::hint::black_box(acc);
        let per_op_ns = elapsed.as_nanos() as f64 / ITERS as f64;
        assert!(
            per_op_ns < 5_000.0,
            "timed! must stay lightweight: {per_op_ns:.0} ns/op"
        );
        if !ENABLED {
            assert_eq!(
                registry.snapshot().histogram("overhead").unwrap().count,
                0,
                "obs off: timed! must not record"
            );
        }
    }
}
