//! Crash-recovery integration tests: a durable table must recover from
//! any crash point to exactly the last durable prefix and answer every
//! range query identically to an in-memory oracle that applied the same
//! prefix.

use std::sync::Arc;

use pi_core::budget::BudgetPolicy;
use pi_core::mutation::Mutation;
use pi_core::testing::TestRng;
use pi_durable::snapshot::MemStore;
use pi_durable::wal::{FsyncPolicy, MemWalHandle};
use pi_engine::{
    ColumnSpec, DurabilityConfig, DurabilityError, DurableTable, Executor, ExecutorConfig, Table,
    TableQuery,
};
use pi_storage::scan::scan_range_sum;
use pi_storage::Value;

fn values(n: usize, domain: u64, seed: u64) -> Vec<Value> {
    pi_core::testing::random_column(n, domain, seed).into_vec()
}

/// Applies `m` to the live-multiset oracle, returning whether it applied
/// (mirrors `MutableIndex` semantics: deletes/updates of absent values
/// are rejected).
fn oracle_apply(oracle: &mut Vec<Value>, m: &Mutation) -> bool {
    match *m {
        Mutation::Insert(v) => {
            oracle.push(v);
            true
        }
        Mutation::Delete(v) => match oracle.iter().position(|&x| x == v) {
            Some(at) => {
                oracle.remove(at);
                true
            }
            None => false,
        },
        Mutation::Update { old, new } => {
            if oracle_apply(oracle, &Mutation::Delete(old)) {
                oracle.push(new);
                true
            } else {
                false
            }
        }
    }
}

fn random_batch(rng: &mut TestRng, domain: u64, len: usize) -> Vec<Mutation> {
    (0..len)
        .map(|_| match rng.next_u64() % 3 {
            0 => Mutation::Insert(rng.next_u64() % domain),
            1 => Mutation::Delete(rng.next_u64() % domain),
            _ => Mutation::Update {
                old: rng.next_u64() % domain,
                new: rng.next_u64() % domain,
            },
        })
        .collect()
}

/// Asserts the recovered table answers a probe set of range queries
/// exactly like a full scan over the oracle multiset.
fn assert_matches_oracle(table: &Table, column: &str, oracle: &[Value], probes: u64) {
    let domain = oracle.iter().max().copied().unwrap_or(0) + 2;
    let step = (domain / probes).max(1);
    let mut low = 0;
    while low < domain {
        let high = (low + step * 3).min(domain);
        let got = table.query(column, low, high).expect("column exists");
        let want = scan_range_sum(oracle, low, high);
        assert_eq!(
            (got.sum, got.count),
            (want.sum, want.count),
            "range [{low}, {high}] diverged from oracle"
        );
        low += step;
    }
}

fn durable_config() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Always,
        // High thresholds: tests drive checkpoints explicitly.
        checkpoint_wal_bytes: u64::MAX,
        checkpoint_after_merges: u64::MAX,
        snapshots_kept: 2,
    }
}

fn build_durable(
    base: Vec<Value>,
    shards: usize,
    wal: &MemWalHandle,
    store: &MemStore,
    config: DurabilityConfig,
) -> DurableTable {
    Table::builder()
        .column(
            ColumnSpec::new("a", base)
                .with_shards(shards)
                .with_policy(BudgetPolicy::FixedDelta(0.25)),
        )
        .durability(config)
        .build_durable(Box::new(wal.storage()), Box::new(store.clone()))
        .expect("durable build")
}

/// Write → checkpoint → more writes → clean drop → recover: the
/// recovered table equals the oracle, and replay touched only the WAL
/// tail logged after the checkpoint.
#[test]
fn recover_replays_only_post_checkpoint_tail() {
    let base = values(4_000, 4_000, 11);
    let mut oracle = base.clone();
    let wal = MemWalHandle::new();
    let store = MemStore::new();
    let durable = build_durable(base, 4, &wal, &store, durable_config());

    let mut rng = TestRng::new(7);
    for _ in 0..6 {
        let batch = random_batch(&mut rng, 4_000, 40);
        let flags = durable.apply_mutations("a", &batch).unwrap();
        for (m, applied) in batch.iter().zip(&flags) {
            let expected = oracle_apply(&mut oracle, m);
            assert_eq!(*applied, expected);
        }
    }
    durable.checkpoint().unwrap();
    // Three more batches land in the WAL tail only.
    let mut tail_batches = 0u64;
    for _ in 0..3 {
        let batch = random_batch(&mut rng, 4_000, 40);
        let flags = durable.apply_mutations("a", &batch).unwrap();
        for (m, applied) in batch.iter().zip(&flags) {
            let expected = oracle_apply(&mut oracle, m);
            assert_eq!(*applied, expected);
        }
        tail_batches += 1;
    }
    drop(durable);

    let (recovered, report) = DurableTable::recover(
        Box::new(wal.storage()),
        Box::new(store.clone()),
        durable_config(),
        None,
    )
    .unwrap();
    assert_eq!(
        report.replayed_records, tail_batches,
        "replay must cover exactly the post-checkpoint batches"
    );
    assert_eq!(report.truncated_bytes, 0);
    assert_matches_oracle(recovered.table(), "a", &oracle, 64);

    // The recovered table keeps serving durable writes.
    let batch = random_batch(&mut rng, 4_000, 40);
    let flags = recovered.apply_mutations("a", &batch).unwrap();
    for (m, applied) in batch.iter().zip(&flags) {
        let expected = oracle_apply(&mut oracle, m);
        assert_eq!(*applied, expected);
    }
    assert_matches_oracle(recovered.table(), "a", &oracle, 64);
}

/// Crash-at-every-offset matrix: for each cut point of the WAL tail,
/// recovery never panics and lands on the oracle of the batches whose
/// frames fully survived the cut.
#[test]
fn crash_matrix_recovers_longest_durable_prefix() {
    let base = values(1_500, 1_500, 23);
    let wal = MemWalHandle::new();
    let store = MemStore::new();
    let durable = build_durable(base.clone(), 3, &wal, &store, durable_config());

    // Record byte watermarks after every durable batch; oracle prefixes
    // per watermark let us check any cut against the right expectation.
    let mut rng = TestRng::new(41);
    let mut oracle = base;
    // Any cut inside the baseline checkpoint record still recovers
    // snapshot 0, so the base state guards everything below the first
    // batch watermark.
    let mut oracle_at = vec![(0usize, oracle.clone())];
    for _ in 0..8 {
        let batch = random_batch(&mut rng, 1_500, 25);
        durable.apply_mutations("a", &batch).unwrap();
        for m in &batch {
            oracle_apply(&mut oracle, m);
        }
        oracle_at.push((wal.len(), oracle.clone()));
    }
    // Keep the engine-side state out of the picture: from here on only
    // the persisted bytes matter.
    drop(durable);
    let full = wal.len();

    // Walk cut points in coarse steps plus every batch boundary.
    let mut cuts: Vec<usize> = (0..=full).step_by(97).collect();
    cuts.extend(oracle_at.iter().map(|(at, _)| *at));
    cuts.push(full);
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        let crashed = wal.fork();
        crashed.truncate_to(cut);
        let (recovered, report) = DurableTable::recover(
            Box::new(crashed.storage()),
            Box::new(store.clone()),
            durable_config(),
            None,
        )
        .unwrap_or_else(|e| panic!("cut at {cut} failed: {e}"));
        // Expected state: the newest batch whose frames fit below `cut`.
        let (_, expect) = oracle_at
            .iter()
            .rev()
            .find(|(at, _)| *at <= cut)
            .expect("watermark 0 always fits");
        assert_matches_oracle(recovered.table(), "a", expect, 32);
        assert!(
            report.truncated_bytes as usize <= full,
            "cut {cut}: nonsense truncation"
        );
    }
}

/// Bit flips anywhere in the tail and duplicated suffixes must never
/// panic recovery; a flip invalidates its record and everything after it
/// (the durable prefix before the flip still recovers).
#[test]
fn fault_injection_never_panics() {
    let base = values(1_000, 1_000, 5);
    let wal = MemWalHandle::new();
    let store = MemStore::new();
    let durable = build_durable(base.clone(), 2, &wal, &store, durable_config());
    let mut rng = TestRng::new(3);
    let mut oracle = base;
    let watermark = wal.len();
    let mut mid = watermark;
    for i in 0..4 {
        let batch = random_batch(&mut rng, 1_000, 20);
        durable.apply_mutations("a", &batch).unwrap();
        for m in &batch {
            oracle_apply(&mut oracle, m);
        }
        if i == 1 {
            // A frame boundary inside the tail, for the duplication case.
            mid = wal.len();
        }
    }
    drop(durable);
    let full = wal.len();

    // Flip one bit at a spread of offsets across the tail. Each probe
    // gets its own copy of log and store so they cannot contaminate
    // each other.
    for byte in (watermark..full).step_by(53) {
        let flipped = wal.fork();
        let store_copy = store.fork();
        flipped.flip_bit(byte, (byte % 8) as u8);
        let result = DurableTable::recover(
            Box::new(flipped.storage()),
            Box::new(store_copy.clone()),
            durable_config(),
            None,
        );
        let (recovered, _) = result.unwrap_or_else(|e| panic!("flip at {byte} failed: {e}"));
        // Whatever prefix survived, it must be internally consistent:
        // re-checkpointing and re-recovering reproduces it exactly.
        let sum_before = recovered.table().query("a", 0, u64::MAX).unwrap();
        recovered.checkpoint().unwrap();
        drop(recovered);
        let (again, _) = DurableTable::recover(
            Box::new(flipped.storage()),
            Box::new(store_copy.clone()),
            durable_config(),
            None,
        )
        .unwrap();
        let sum_after = again.table().query("a", 0, u64::MAX).unwrap();
        assert_eq!(
            (sum_before.sum, sum_before.count),
            (sum_after.sum, sum_after.count)
        );
    }

    // A duplicated suffix re-delivers old sequence numbers: the scan
    // stops at the duplication point and recovery sees the full oracle.
    let duped = wal.fork();
    duped.duplicate_suffix(mid);
    let (recovered, report) = DurableTable::recover(
        Box::new(duped.storage()),
        Box::new(store.fork()),
        durable_config(),
        None,
    )
    .unwrap();
    assert_eq!(report.tail, pi_durable::TailStatus::OutOfOrder);
    assert_matches_oracle(recovered.table(), "a", &oracle, 32);
}

/// Mutate skewed → rebalance → recover: the regression the rebalance WAL
/// record exists for. Recovery must not resurrect stale pre-rebalance
/// shard boundaries, and answers stay exact.
#[test]
fn rebalance_then_recover_keeps_fresh_boundaries() {
    let base = values(6_000, 6_000, 29);
    let wal = MemWalHandle::new();
    let store = MemStore::new();
    let mut durable = build_durable(base.clone(), 4, &wal, &store, durable_config());
    let mut oracle = base;

    // Skew all inserts into the top of the domain to drift the weights.
    let mut rng = TestRng::new(31);
    for _ in 0..12 {
        let batch: Vec<Mutation> = (0..200)
            .map(|_| Mutation::Insert(5_400 + rng.next_u64() % 600))
            .collect();
        durable.apply_mutations("a", &batch).unwrap();
        for m in &batch {
            oracle_apply(&mut oracle, m);
        }
    }
    let stale = durable
        .table()
        .column("a")
        .unwrap()
        .partition()
        .boundaries()
        .to_vec();
    let rebalanced = durable.rebalance_if_drifted(0.05).unwrap();
    assert!(rebalanced > 0, "skewed writes must drift the weights");
    let fresh = durable
        .table()
        .column("a")
        .unwrap()
        .partition()
        .boundaries()
        .to_vec();
    assert_ne!(stale, fresh, "rebalance must redraw the boundaries");
    drop(durable);

    let (recovered, report) = DurableTable::recover(
        Box::new(wal.storage()),
        Box::new(store.clone()),
        durable_config(),
        None,
    )
    .unwrap();
    // The post-rebalance checkpoint is the baseline: nothing to replay,
    // and the recovered boundaries are the fresh ones, not the stale.
    assert_eq!(report.replayed_records, 0);
    let recovered_bounds = recovered
        .table()
        .column("a")
        .unwrap()
        .partition()
        .boundaries()
        .to_vec();
    assert_eq!(recovered_bounds, fresh);
    assert_ne!(recovered_bounds, stale);
    assert_matches_oracle(recovered.table(), "a", &oracle, 64);
}

/// A crash after the rebalance marker committed but before its
/// checkpoint completed leaves a `Rebalance` record in the log; replay
/// must redo the rebalance (fresh boundaries, exact answers) rather
/// than ignore it.
#[test]
fn rebalance_wal_record_replays() {
    let base = values(3_000, 3_000, 43);
    let wal = MemWalHandle::new();
    let store = MemStore::new();
    let durable = build_durable(base.clone(), 4, &wal, &store, durable_config());
    let mut oracle = base;
    let mut rng = TestRng::new(47);
    // Skewed inserts, logged normally.
    for _ in 0..8 {
        let batch: Vec<Mutation> = (0..150)
            .map(|_| Mutation::Insert(2_700 + rng.next_u64() % 300))
            .collect();
        durable.apply_mutations("a", &batch).unwrap();
        for m in &batch {
            oracle_apply(&mut oracle, m);
        }
    }
    let stale = durable
        .table()
        .column("a")
        .unwrap()
        .partition()
        .boundaries()
        .to_vec();
    drop(durable);

    // Hand-append the rebalance marker the crashed process would have
    // committed right before its checkpoint died.
    let mut writer =
        pi_durable::wal::WalWriter::new(Box::new(wal.storage()), FsyncPolicy::Always, 1_000);
    writer
        .append(&pi_durable::WalRecord::Rebalance {
            columns: vec!["a".to_string()],
        })
        .unwrap();
    writer.commit().unwrap();
    drop(writer);

    let (recovered, report) = DurableTable::recover(
        Box::new(wal.storage()),
        Box::new(store.clone()),
        durable_config(),
        None,
    )
    .unwrap();
    // 8 mutation batches + 1 rebalance replayed.
    assert_eq!(report.replayed_records, 9);
    let recovered_bounds = recovered
        .table()
        .column("a")
        .unwrap()
        .partition()
        .boundaries()
        .to_vec();
    assert_ne!(
        recovered_bounds, stale,
        "replayed rebalance must redraw the skewed boundaries"
    );
    assert_matches_oracle(recovered.table(), "a", &oracle, 64);
}

/// Durable writes through the executor: `Executor::with_durability`
/// routes mutation batches through the WAL while queries serve normally,
/// and a crash afterwards recovers everything the log holds.
#[test]
fn executor_durable_writes_survive_crash() {
    let base = values(8_000, 8_000, 13);
    let mut oracle = base.clone();
    let wal = MemWalHandle::new();
    let store = MemStore::new();
    let durable = Arc::new(build_durable(base, 4, &wal, &store, durable_config()));
    let executor =
        Executor::with_durability(Arc::clone(&durable), ExecutorConfig::with_workers(4), None);

    let mut rng = TestRng::new(19);
    for _ in 0..10 {
        let batch = random_batch(&mut rng, 8_000, 50);
        let flags = executor.apply_mutations("a", &batch).unwrap();
        for (m, applied) in batch.iter().zip(&flags) {
            assert_eq!(*applied, oracle_apply(&mut oracle, m));
        }
        // Interleave reads on the serving path.
        let results = executor
            .execute_batch(&[
                TableQuery::new("a", 100, 2_000),
                TableQuery::new("a", 0, 7_999),
            ])
            .unwrap();
        assert_eq!(results[0], scan_range_sum(&oracle, 100, 2_000));
        assert_eq!(results[1], scan_range_sum(&oracle, 0, 7_999));
    }
    drop(executor);
    drop(durable);

    let (recovered, _) = DurableTable::recover(
        Box::new(wal.storage()),
        Box::new(store.clone()),
        durable_config(),
        None,
    )
    .unwrap();
    assert_matches_oracle(recovered.table(), "a", &oracle, 64);
}

/// Group-commit durability boundary: under `EveryN`, a crash (revert to
/// last synced offset) loses at most the unsynced suffix — never a
/// synced record, never consistency.
#[test]
fn group_commit_crash_loses_only_unsynced_suffix() {
    let base = values(1_200, 1_200, 37);
    let wal = MemWalHandle::new();
    let store = MemStore::new();
    let config = DurabilityConfig {
        fsync: FsyncPolicy::EveryN(3),
        ..durable_config()
    };
    let durable = build_durable(base.clone(), 2, &wal, &store, config);
    let mut rng = TestRng::new(53);
    let mut oracle = base;
    let mut synced_oracle = oracle.clone();
    for i in 0..7 {
        let batch = random_batch(&mut rng, 1_200, 15);
        durable.apply_mutations("a", &batch).unwrap();
        for m in &batch {
            oracle_apply(&mut oracle, m);
        }
        // EveryN(3) commits on every third buffered record.
        if (i + 1) % 3 == 0 {
            synced_oracle = oracle.clone();
        }
    }
    // Crash without drop(): revert the log to its last synced length.
    wal.crash();
    std::mem::forget(durable);

    let (recovered, _) = DurableTable::recover(
        Box::new(wal.storage()),
        Box::new(store.clone()),
        config,
        None,
    )
    .unwrap();
    assert_matches_oracle(recovered.table(), "a", &synced_oracle, 32);
}

/// A corrupt newest snapshot falls back to the previous one plus a
/// longer replay; with every snapshot corrupt, recovery reports
/// `NoSnapshot` instead of panicking.
#[test]
fn snapshot_corruption_falls_back_or_errors() {
    let base = values(900, 900, 61);
    let wal = MemWalHandle::new();
    let store = MemStore::new();
    let durable = build_durable(base.clone(), 2, &wal, &store, durable_config());
    let mut rng = TestRng::new(67);
    let mut oracle = base;
    for _ in 0..3 {
        let batch = random_batch(&mut rng, 900, 20);
        durable.apply_mutations("a", &batch).unwrap();
        for m in &batch {
            oracle_apply(&mut oracle, m);
        }
    }
    let newest = durable.checkpoint().unwrap();
    drop(durable);

    // Corrupt the newest snapshot: recovery falls back to snapshot 0 and
    // replays the whole pre-checkpoint WAL... except checkpointing
    // truncated it. The fallback state must still answer from what IS
    // durable: snapshot 0 + the (now empty) log — i.e. the base column.
    // To exercise a *useful* fallback, corrupt before the log truncation
    // is observable: use a copy of the WAL taken before the checkpoint.
    store.corrupt(newest, 40, 2);
    let err_or_ok = DurableTable::recover(
        Box::new(wal.storage()),
        Box::new(store.clone()),
        durable_config(),
        None,
    );
    // Fallback to snapshot 0 must succeed (its WAL tail was truncated by
    // the newest checkpoint, so it recovers snapshot 0's state).
    assert!(err_or_ok.is_ok(), "fallback to older snapshot must work");

    // Corrupt every snapshot (the newest keeps its earlier flip too):
    // recovery must error, not panic.
    for id in 0..=newest {
        store.corrupt(id, 41, 1);
    }
    match DurableTable::recover(
        Box::new(wal.storage()),
        Box::new(store.clone()),
        durable_config(),
        None,
    ) {
        Err(DurabilityError::NoSnapshot) => {}
        other => panic!("expected NoSnapshot, got {:?}", other.map(|_| ())),
    }
}
