//! Property tests for the durability layer: for every algorithm and
//! arbitrary interleavings of mutation batches, refinement work and
//! checkpoints, `recover(snapshot, wal_tail)` must answer exactly like
//! the in-memory oracle — and arbitrary log faults (torn tails, bit
//! flips, duplicated suffixes) must recover a durable prefix without
//! ever panicking.

use proptest::prelude::*;

use pi_core::budget::BudgetPolicy;
use pi_core::decision::Algorithm;
use pi_core::mutation::Mutation;
use pi_core::testing::TestRng as MutRng;
use pi_durable::snapshot::MemStore;
use pi_durable::wal::{FsyncPolicy, MemWalHandle};
use pi_engine::{AlgorithmChoice, ColumnSpec, DurabilityConfig, DurableTable, Table};
use pi_storage::scan::scan_range_sum;
use pi_storage::Value;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Quicksort,
    Algorithm::RadixsortMsd,
    Algorithm::RadixsortLsd,
    Algorithm::Bucketsort,
];

fn oracle_apply(oracle: &mut Vec<Value>, m: &Mutation) -> bool {
    match *m {
        Mutation::Insert(v) => {
            oracle.push(v);
            true
        }
        Mutation::Delete(v) => match oracle.iter().position(|&x| x == v) {
            Some(at) => {
                oracle.remove(at);
                true
            }
            None => false,
        },
        Mutation::Update { old, new } => {
            if oracle_apply(oracle, &Mutation::Delete(old)) {
                oracle.push(new);
                true
            } else {
                false
            }
        }
    }
}

fn random_batch(rng: &mut MutRng, domain: u64, len: usize) -> Vec<Mutation> {
    (0..len)
        .map(|_| match rng.next_u64() % 3 {
            0 => Mutation::Insert(rng.next_u64() % domain),
            1 => Mutation::Delete(rng.next_u64() % domain),
            _ => Mutation::Update {
                old: rng.next_u64() % domain,
                new: rng.next_u64() % domain,
            },
        })
        .collect()
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_wal_bytes: u64::MAX,
        checkpoint_after_merges: u64::MAX,
        snapshots_kept: 2,
    }
}

fn build(
    base: Vec<Value>,
    shards: usize,
    algorithm: Algorithm,
    wal: &MemWalHandle,
    store: &MemStore,
) -> DurableTable {
    Table::builder()
        .column(
            ColumnSpec::new("a", base)
                .with_shards(shards)
                .with_choice(AlgorithmChoice::Fixed(algorithm))
                .with_policy(BudgetPolicy::FixedDelta(0.3)),
        )
        .durability(config())
        .build_durable(Box::new(wal.storage()), Box::new(store.clone()))
        .expect("durable build")
}

/// Probes a spread of ranges against the full-scan oracle; panics on
/// the first divergence (the shim's `prop_assert*` are panic-based).
fn assert_matches_oracle(table: &Table, oracle: &[Value]) {
    let domain = oracle.iter().max().copied().unwrap_or(0) + 2;
    let step = (domain / 24).max(1);
    let mut low = 0;
    while low < domain {
        let high = (low + step * 3).min(domain);
        let got = table.query("a", low, high).expect("column exists");
        let want = scan_range_sum(oracle, low, high);
        assert_eq!(
            (got.sum, got.count),
            (want.sum, want.count),
            "range [{low}, {high}] diverged from oracle"
        );
        low += step;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary interleavings of mutation batches, refinement work and
    /// explicit checkpoints, for every algorithm: a clean shutdown and
    /// recovery reproduces the oracle exactly, no matter where the
    /// checkpoints cut the log or how far refinement got.
    #[test]
    fn recovery_matches_oracle_under_interleavings(
        values in prop::collection::vec(0..3_000u64, 50..400),
        shards in 1..5usize,
        alg_idx in 0..4usize,
        plan in prop::collection::vec(0..4usize, 1..14),
        seed in any::<u64>(),
    ) {
        let algorithm = ALGORITHMS[alg_idx];
        let domain = values.iter().max().copied().unwrap_or(0) + 100;
        let mut oracle = values.clone();
        let wal = MemWalHandle::new();
        let store = MemStore::new();
        let durable = build(values, shards, algorithm, &wal, &store);
        let mut rng = MutRng::new(seed);

        for step in plan {
            match step {
                // Durable mutation batch.
                0 | 3 => {
                    let len = 1 + (rng.next_u64() % 30) as usize;
                    let batch = random_batch(&mut rng, domain, len);
                    let flags = durable.apply_mutations("a", &batch).unwrap();
                    for (m, applied) in batch.iter().zip(&flags) {
                        prop_assert_eq!(*applied, oracle_apply(&mut oracle, m));
                    }
                }
                // Refinement: advance every shard a few δ-slices (this
                // can complete pending-delta merges mid-history).
                1 => {
                    let column = durable.table().column("a").unwrap();
                    for shard in 0..column.shard_count() {
                        column.advance_shard_by(shard, 3);
                    }
                }
                // Checkpoint boundary.
                _ => {
                    durable.checkpoint().unwrap();
                }
            }
        }
        drop(durable);

        let (recovered, _) =
            DurableTable::recover(Box::new(wal.storage()), Box::new(store.clone()), config(), None)
                .unwrap();
        assert_matches_oracle(recovered.table(), &oracle);

        // The recovered index still converges and stays exact.
        let column = recovered.table().column("a").unwrap();
        for _ in 0..100_000 {
            let mut advanced = false;
            for shard in 0..column.shard_count() {
                advanced |= column.advance_shard(shard);
            }
            if !advanced {
                break;
            }
        }
        assert_matches_oracle(recovered.table(), &oracle);
    }

    /// A crash at an arbitrary byte offset of the log, an arbitrary bit
    /// flip, or an arbitrary duplicated suffix: recovery never panics,
    /// and the torn-tail case recovers exactly the newest batch whose
    /// frames fully survived the cut.
    #[test]
    fn arbitrary_faults_recover_durable_prefix(
        values in prop::collection::vec(0..2_000u64, 50..250),
        shards in 1..4usize,
        alg_idx in 0..4usize,
        batches in 1..6usize,
        cut_pct in 0..101usize,
        flip_pct in 0..100usize,
        flip_bit in 0..8usize,
        dup_pct in 0..100usize,
        seed in any::<u64>(),
    ) {
        let algorithm = ALGORITHMS[alg_idx];
        let domain = values.iter().max().copied().unwrap_or(0) + 100;
        let wal = MemWalHandle::new();
        let store = MemStore::new();
        let durable = build(values.clone(), shards, algorithm, &wal, &store);
        let mut rng = MutRng::new(seed);
        let mut oracle = values;
        let mut oracle_at = vec![(0usize, oracle.clone())];
        for _ in 0..batches {
            let len = 1 + (rng.next_u64() % 20) as usize;
            let batch = random_batch(&mut rng, domain, len);
            durable.apply_mutations("a", &batch).unwrap();
            for m in &batch {
                oracle_apply(&mut oracle, m);
            }
            oracle_at.push((wal.len(), oracle.clone()));
        }
        drop(durable);
        let full = wal.len();

        // Torn tail at an arbitrary offset: exact durable-prefix semantics.
        let cut = full * cut_pct / 100;
        let torn = wal.fork();
        torn.truncate_to(cut);
        let (recovered, _) = DurableTable::recover(
            Box::new(torn.storage()),
            Box::new(store.fork()),
            config(),
            None,
        ).unwrap();
        let (_, expect) = oracle_at.iter().rev().find(|(at, _)| *at <= cut).unwrap();
        assert_matches_oracle(recovered.table(), expect);
        drop(recovered);

        // Arbitrary bit flip: some durable prefix recovers, no panic.
        let flipped = wal.fork();
        flipped.flip_bit(full.saturating_sub(1) * flip_pct / 100, flip_bit as u8);
        let result = DurableTable::recover(
            Box::new(flipped.storage()),
            Box::new(store.fork()),
            config(),
            None,
        );
        prop_assert!(result.is_ok(), "bit flip must not break recovery: {:?}", result.err());

        // Arbitrary duplicated suffix (frame-aligned or not): no panic.
        let duped = wal.fork();
        duped.duplicate_suffix(full * dup_pct / 100);
        let result = DurableTable::recover(
            Box::new(duped.storage()),
            Box::new(store.fork()),
            config(),
            None,
        );
        prop_assert!(result.is_ok(), "duplicated suffix must not break recovery: {:?}", result.err());
    }
}
