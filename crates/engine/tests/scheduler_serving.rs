//! Acceptance tests for the scheduler-backed serving stack: a
//! `pi_sched::Server` front-end over the engine's `Executor`, driven by
//! the closed-loop multi-client driver.
//!
//! * answers through the server are bit-identical to the full-scan oracle,
//! * graceful shutdown resolves every in-flight ticket,
//! * background (idle-cycle) maintenance converges shards a skewed
//!   workload never queries, and
//! * the shard-parallel scaling regression: at fixed workload, 8 shards
//!   must not serve slower than 1 shard now that dispatch runs on a
//!   persistent pool.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pi_core::budget::BudgetPolicy;
use pi_engine::{ColumnSpec, Executor, ExecutorConfig, Table, TableQuery, TableServer};
use pi_sched::ServerConfig;
use pi_storage::scan::scan_range_sum;
use pi_workloads::closed_loop::{self, BatchOutcome};
use pi_workloads::data::{self, Distribution};
use pi_workloads::multi_client::{self, MultiClientSpec, PatternAssignment};
use pi_workloads::WorkloadSpec;

fn serving_stack(
    values: Vec<u64>,
    shards: usize,
    config: ExecutorConfig,
) -> (Arc<Table>, Arc<TableServer>) {
    let table = Arc::new(
        Table::builder()
            .column(
                ColumnSpec::new("a", values)
                    .with_shards(shards)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .build(),
    );
    let executor = Arc::new(Executor::with_config(Arc::clone(&table), config));
    let server = Arc::new(TableServer::new(executor, ServerConfig::default()));
    (table, server)
}

#[test]
fn served_answers_match_full_scan_oracle() {
    const ROWS: usize = 40_000;
    let values = data::generate(Distribution::UniformRandom, ROWS, 41);
    let oracle = values.clone();
    let (_table, server) = serving_stack(values, 4, ExecutorConfig::default());

    let streams = multi_client::generate(&MultiClientSpec {
        clients: 4,
        base: WorkloadSpec::range(ROWS as u64, 40),
        assignment: PatternAssignment::AllPatterns,
    });
    let oracle = &oracle;
    let report = closed_loop::drive(&streams, 10, |client, batch| {
        let queries: Vec<TableQuery> = batch
            .iter()
            .map(|q| TableQuery::new("a", q.low, q.high))
            .collect();
        let results = server
            .submit(queries)
            .expect("server accepting")
            .wait()
            .expect("known column");
        for (q, r) in batch.iter().zip(&results) {
            assert_eq!(
                *r,
                scan_range_sum(oracle, q.low, q.high),
                "client {client} [{}, {}]",
                q.low,
                q.high
            );
        }
        BatchOutcome::Served
    });
    assert_eq!(report.served, 4 * 40);
    assert_eq!(report.rejected, 0);
    let stats = server.stats();
    assert_eq!(stats.accepted, 16, "4 clients x 4 batches of 10");
    assert_eq!(stats.served_requests, 160);
    server.shutdown();
}

#[test]
fn graceful_shutdown_resolves_inflight_engine_batches() {
    const ROWS: usize = 30_000;
    let values = data::generate(Distribution::UniformRandom, ROWS, 43);
    let oracle = values.clone();
    let (_table, server) = serving_stack(values, 4, ExecutorConfig::default());

    // Submit a pile of batches, then shut down from another thread while
    // they are queued/executing. Every ticket must resolve exactly.
    let tickets: Vec<_> = (0..20)
        .map(|i| {
            let low = (i * 997) % 20_000;
            server
                .submit(vec![TableQuery::new("a", low, low + 5_000)])
                .expect("accepting")
        })
        .collect();
    let shutter = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.shutdown())
    };
    for (i, ticket) in tickets.into_iter().enumerate() {
        let i = i as u64;
        let low = (i * 997) % 20_000;
        let results = ticket.wait().expect("known column");
        assert_eq!(results, vec![scan_range_sum(&oracle, low, low + 5_000)]);
    }
    shutter.join().unwrap();
    assert!(matches!(
        server.try_submit(vec![TableQuery::new("a", 0, 1)]),
        Err(pi_sched::TrySubmitError {
            error: pi_sched::SubmitError::ShutDown,
            ..
        })
    ));
}

/// The ISSUE acceptance scenario: a skewed workload that only ever
/// queries the bottom slice of the domain. The cold shards are never
/// visited by any query, and the per-batch foreground budget is zero —
/// idle-cycle background maintenance alone must still drive every shard
/// of every column to convergence while serving continues.
#[test]
fn background_maintenance_converges_shards_the_workload_never_queries() {
    const ROWS: usize = 30_000;
    const SHARDS: usize = 8;
    let uniform = data::generate(Distribution::UniformRandom, ROWS, 47);
    let skewed = data::generate(Distribution::Skewed, ROWS, 48);
    let table = Arc::new(
        Table::builder()
            .column(
                ColumnSpec::new("hot", uniform.clone())
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .column(
                ColumnSpec::new("cold", skewed)
                    .with_shards(SHARDS)
                    .with_policy(BudgetPolicy::FixedDelta(0.25)),
            )
            .build(),
    );
    // Queries stay inside the hot column's first shard: strictly below
    // its first boundary.
    let first_boundary = table.column("hot").unwrap().partition().boundaries()[0];
    assert!(first_boundary > 2, "degenerate first shard");
    let executor = Arc::new(Executor::with_config(
        Arc::clone(&table),
        ExecutorConfig {
            worker_threads: 2,
            maintenance_steps: 0,
            background_maintenance: true,
        },
    ));
    let server = Arc::new(TableServer::new(
        Arc::clone(&executor),
        ServerConfig::default(),
    ));

    // Serve skewed traffic for a while: only (hot, shard 0) is touched.
    for round in 0..50u64 {
        let low = round % (first_boundary / 2).max(1);
        let high = low + first_boundary / 4;
        let results = server
            .submit(vec![TableQuery::new(
                "hot",
                low,
                high.min(first_boundary - 1),
            )])
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            results[0],
            scan_range_sum(&uniform, low, high.min(first_boundary - 1))
        );
    }
    let hot_stats = table.column("hot").unwrap().stats();
    assert!(hot_stats.query_count() >= 50);
    assert_eq!(
        table.column("cold").unwrap().stats().query_count(),
        0,
        "the cold column must never be queried"
    );

    // Background maintenance (pool idle cycles + server idle cycles) must
    // converge everything, including the never-queried cold column.
    let deadline = Instant::now() + Duration::from_secs(120);
    while !table.is_converged() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    for (name, status) in table.status() {
        assert!(
            status.converged,
            "column {name} not converged by background maintenance: {status:?}"
        );
    }
    for name in ["hot", "cold"] {
        for (i, status) in table
            .column(name)
            .unwrap()
            .shard_statuses()
            .iter()
            .enumerate()
        {
            assert!(status.converged, "{name} shard {i} not converged");
        }
    }
    // Idle cycles did the work: the pool's idle counter moved even though
    // the foreground budget was zero.
    assert!(executor.pool_stats().idle_work > 0);
    server.shutdown();
}

/// Regression guard for the scaling bug this PR fixes: with per-batch
/// scoped-thread spawning, 1 shard used to *beat* 8 shards at bench scale.
/// On the persistent pool, 8 shards must serve the fixed workload at
/// least as fast as 1 shard (a small tolerance absorbs timer noise on a
/// loaded CI host; best-of-three runs each).
#[test]
fn eight_shards_serve_no_slower_than_one_shard() {
    const ROWS: usize = 100_000;
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 50;

    let run = |shards: usize| -> Duration {
        let values = data::generate(Distribution::UniformRandom, ROWS, 31);
        let (_table, server) = serving_stack(values, shards, ExecutorConfig::default());
        let streams = multi_client::generate(&MultiClientSpec {
            clients: CLIENTS,
            base: WorkloadSpec::range(ROWS as u64, QUERIES_PER_CLIENT),
            assignment: PatternAssignment::AllPatterns,
        });
        let report = closed_loop::drive(&streams, 10, |_client, batch| {
            let queries: Vec<TableQuery> = batch
                .iter()
                .map(|q| TableQuery::new("a", q.low, q.high))
                .collect();
            server
                .submit(queries)
                .expect("accepting")
                .wait()
                .expect("known column");
            BatchOutcome::Served
        });
        assert_eq!(report.served, CLIENTS * QUERIES_PER_CLIENT);
        server.shutdown();
        report.elapsed
    };

    let one = run(1).min(run(1)).min(run(1));
    let eight = run(8).min(run(8)).min(run(8));
    assert!(
        eight <= one.mul_f64(1.25),
        "8 shards ({eight:?}) slower than 1 shard ({one:?}): shard-parallel scaling regressed"
    );
}
