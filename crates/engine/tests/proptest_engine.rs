//! Property tests for the sharded engine: batched, sharded, concurrent
//! query answers must be identical to `pi_storage::scan::scan_range_sum`
//! over the base column for every Figure-6 workload pattern, and every
//! shard must converge.

use std::sync::Arc;

use proptest::prelude::*;

use pi_core::budget::BudgetPolicy;
use pi_core::decision::Algorithm;
use pi_core::mutation::Mutation;
use pi_engine::{AlgorithmChoice, ColumnSpec, Executor, ExecutorConfig, Table, TableQuery};
use pi_storage::scan::scan_range_sum;
use pi_workloads::patterns::{self, Pattern, WorkloadSpec};

fn build_executor(values: Vec<u64>, shards: usize, delta: f64) -> Executor {
    let table = Arc::new(
        Table::builder()
            .column(
                ColumnSpec::new("a", values)
                    .with_shards(shards)
                    .with_policy(BudgetPolicy::FixedDelta(delta)),
            )
            .build(),
    );
    Executor::with_config(
        table,
        ExecutorConfig {
            worker_threads: 4,
            maintenance_steps: 2,
            background_maintenance: true,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary columns, shard counts and all eight Figure-6
    /// patterns, every batched answer equals the full-scan oracle and the
    /// table converges with every shard reaching `Converged`.
    #[test]
    fn sharded_batches_match_full_scan_on_all_patterns(
        values in prop::collection::vec(0..5_000u64, 10..600),
        shards in 1..9usize,
        pattern_idx in 0..8usize,
        seed in any::<u64>(),
    ) {
        let pattern = Pattern::ALL[pattern_idx];
        let domain = values.iter().max().copied().unwrap_or(0) + 1;
        let spec = WorkloadSpec::range(domain, 40).with_seed(seed);
        let queries = patterns::generate(pattern, &spec);

        let executor = build_executor(values.clone(), shards, 0.5);
        let batch: Vec<TableQuery> = queries
            .iter()
            .map(|q| TableQuery::new("a", q.low, q.high))
            .collect();
        let results = executor.execute_batch(&batch).unwrap();
        for (q, r) in queries.iter().zip(&results) {
            let expected = scan_range_sum(&values, q.low, q.high);
            prop_assert_eq!(*r, expected, "{} [{}, {}]", pattern, q.low, q.high);
        }

        // Deterministic convergence of every shard.
        executor.drive_to_convergence(1_000_000);
        let column = executor.table().column("a").unwrap();
        prop_assert!(executor.table().is_converged(), "{}: table not converged", pattern);
        for (i, status) in column.shard_statuses().iter().enumerate() {
            prop_assert!(status.converged, "{}: shard {} not converged", pattern, i);
        }

        // Answers after convergence are still the oracle's.
        let results = executor.execute_batch(&batch).unwrap();
        for (q, r) in queries.iter().zip(&results) {
            let expected = scan_range_sum(&values, q.low, q.high);
            prop_assert_eq!(*r, expected, "{} converged [{}, {}]", pattern, q.low, q.high);
        }
    }

    /// Mutation batches through the executor match a replay oracle for
    /// every progressive algorithm, at every convergence stage —
    /// including a converged table mutated afterwards — and the table
    /// re-converges to exact answers.
    #[test]
    fn executor_mutations_match_oracle_for_all_algorithms(
        values in prop::collection::vec(0..2_000u64, 10..400),
        shards in 1..6usize,
        algorithm_idx in 0..4usize,
        muts in prop::collection::vec((0..3u64, 0..2_000u64, 0..2_000u64), 1..60),
        converge_first in any::<bool>(),
    ) {
        let algorithm = Algorithm::ALL[algorithm_idx];
        let table = Arc::new(
            Table::builder()
                .column(
                    ColumnSpec::new("a", values.clone())
                        .with_shards(shards)
                        .with_choice(AlgorithmChoice::Fixed(algorithm))
                        .with_policy(BudgetPolicy::FixedDelta(0.5)),
                )
                .build(),
        );
        let executor = Executor::with_config(
            Arc::clone(&table),
            ExecutorConfig { worker_threads: 2, maintenance_steps: 2, background_maintenance: false },
        );
        if converge_first {
            executor.drive_to_convergence(1_000_000);
            prop_assert!(table.is_converged(), "{algorithm}");
        }
        let mut oracle = values;
        // Same-value interactions replay exactly in request order when
        // updates insert into a band deletes never target (cross-shard
        // update inserts run in a second wave); see `tests/mutations.rs`.
        let batch: Vec<Mutation> = muts.iter().map(|&(tag, a, b)| match tag {
            0 => Mutation::Insert(a),
            1 => Mutation::Delete(a),
            _ => Mutation::Update { old: a, new: 10_000 + b },
        }).collect();
        let applied = executor.apply_mutations("a", &batch).unwrap();
        for (m, &ok) in batch.iter().zip(&applied) {
            let want = match *m {
                Mutation::Insert(v) => { oracle.push(v); true }
                Mutation::Delete(v) => match oracle.iter().position(|&x| x == v) {
                    Some(at) => { oracle.remove(at); true }
                    None => false,
                },
                Mutation::Update { old, new } => match oracle.iter().position(|&x| x == old) {
                    Some(at) => { oracle.remove(at); oracle.push(new); true }
                    None => false,
                },
            };
            prop_assert_eq!(ok, want, "{} {:?}", algorithm, m);
        }
        // Exact immediately after the writes, and after re-convergence.
        for (low, high) in [(0, u64::MAX), (100, 700), (10_000, 13_000)] {
            prop_assert_eq!(
                executor.execute_one("a", low, high).unwrap(),
                scan_range_sum(&oracle, low, high),
                "{} [{}, {}]", algorithm, low, high
            );
        }
        executor.drive_to_convergence(1_000_000);
        prop_assert!(table.is_converged(), "{algorithm}: did not re-converge");
        prop_assert_eq!(
            executor.execute_one("a", 0, u64::MAX).unwrap(),
            scan_range_sum(&oracle, 0, u64::MAX),
            "{} after re-convergence", algorithm
        );
    }

    /// Concurrent clients see exactly the answers a serial full scan
    /// produces, regardless of interleaving.
    #[test]
    fn concurrent_batches_match_full_scan(
        values in prop::collection::vec(0..3_000u64, 10..400),
        shards in 1..6usize,
        seed in any::<u64>(),
    ) {
        let domain = values.iter().max().copied().unwrap_or(0) + 1;
        let executor = Arc::new(build_executor(values.clone(), shards, 0.25));
        std::thread::scope(|scope| {
            for client in 0..4u64 {
                let executor = Arc::clone(&executor);
                let values = &values;
                let spec = WorkloadSpec::range(domain, 15).with_seed(seed ^ client);
                scope.spawn(move || {
                    let queries = patterns::generate(Pattern::Random, &spec);
                    let batch: Vec<TableQuery> = queries
                        .iter()
                        .map(|q| TableQuery::new("a", q.low, q.high))
                        .collect();
                    let results = executor.execute_batch(&batch).unwrap();
                    for (q, r) in queries.iter().zip(&results) {
                        assert_eq!(*r, scan_range_sum(values, q.low, q.high));
                    }
                });
            }
        });
    }
}
